//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::{CaseError, Rng};
use std::ops::Range;

/// Strategy for vectors with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Mirrors `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Result<Vec<S::Value>, CaseError> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Ok(out)
    }
}
