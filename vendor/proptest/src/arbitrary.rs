//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::{CaseError, Rng};
use std::marker::PhantomData;

/// Produces uniformly distributed values of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut Rng) -> Self;
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Result<T, CaseError> {
        Ok(T::arbitrary_value(rng))
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut Rng) -> f64 {
        // Finite-only, wide dynamic range.
        crate::num::sample_normal_f64(rng)
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut Rng) -> f32 {
        crate::num::sample_normal_f64(rng) as f32
    }
}
