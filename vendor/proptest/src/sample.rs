//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::{CaseError, Rng};

/// Strategy that picks uniformly from a fixed list.
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// Mirrors `proptest::sample::select(choices)`.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Result<T, CaseError> {
        Ok(self.choices[rng.below(self.choices.len() as u64) as usize].clone())
    }
}
