//! In-tree deterministic mini property-testing harness.
//!
//! The build container has no network access, so crates.io proptest is
//! unavailable. This crate reimplements the subset of the proptest API
//! that the workspace's test suites use: the [`proptest!`] macro,
//! `prop_assert*` / `prop_assume!`, `prop_oneof!`, `any::<T>()`, range
//! strategies, tuple/array/vec/select combinators, and the
//! `prop::num::f64::NORMAL` strategy. Differences from the real crate:
//!
//! * Case generation is **fully deterministic** — the RNG stream is
//!   seeded from a hash of the test name, so every run (and every CI
//!   machine) sees identical cases. Persisted regression files are not
//!   replayed; cover important regressions with explicit unit tests.
//! * There is **no shrinking**: a failure reports the case index and the
//!   assertion message.
//! * Case count defaults to 64 and can be raised with the
//!   `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the `prop` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::{array, collection, num, sample};
    }
}

/// Defines deterministic property tests.
///
/// Supports the `#[test] fn name(pat in strategy, ...) { body }` form,
/// optionally prefixed by `#![proptest_config(...)]` to override the
/// case count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_with_config(&($config), stringify!($name), |__pt_rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), __pt_rng) {
                            Ok(v) => v,
                            Err(r) => return Err(r),
                        };
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), __pt_rng) {
                            Ok(v) => v,
                            Err(r) => return Err(r),
                        };
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::CaseError::Reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
