//! Fixed-size array strategies (`prop::array`).

use crate::strategy::{Strategy, UniformArray};
use std::marker::PhantomData;

macro_rules! uniform_fns {
    ($($fn_name:ident => $n:literal),* $(,)?) => {
        $(
            /// Array of
            #[doc = stringify!($n)]
            /// values drawn from one element strategy.
            pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element, _marker: PhantomData }
            }
        )*
    };
}

uniform_fns! {
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform7 => 7,
    uniform8 => 8,
}
