//! The deterministic case runner and its RNG.

/// Why a generated case did not produce a verdict.
#[derive(Debug)]
pub enum CaseError {
    /// The case was discarded (`prop_assume!` / filter miss); retried.
    Reject(&'static str),
    /// The property failed; the runner panics with this message.
    Fail(String),
}

/// Deterministic splitmix64/xorshift RNG local to this harness.
///
/// Self-contained so the harness has no dependency on workspace crates
/// (which use it as a dev-dependency).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; panics on `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is negligible for the span sizes tests use.
        self.next_u64() % n
    }

    /// Uniform value in `[0, n)` for wide spans.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128(0)");
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of the test name; the per-test seed root.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The subset of proptest's runner configuration the workspace uses.
/// Built via [`ProptestConfig::with_cases`] and applied with the
/// `#![proptest_config(...)]` attribute inside a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases must pass for the property to pass.
    pub cases: u64,
}

impl ProptestConfig {
    /// A config that runs exactly `cases` cases, ignoring the
    /// `PROPTEST_CASES` environment variable. Use for expensive
    /// properties (e.g. one live server per case).
    pub fn with_cases(cases: u64) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs one property: draws cases until `PROPTEST_CASES` (default 64)
/// cases pass, panicking on the first failure. Rejections are retried,
/// bounded at 16× the case budget.
pub fn run(name: &str, property: impl Fn(&mut Rng) -> Result<(), CaseError>) {
    run_cases(case_count(), name, property);
}

/// [`run`] with an explicit config instead of the environment default.
pub fn run_with_config(
    config: &ProptestConfig,
    name: &str,
    property: impl Fn(&mut Rng) -> Result<(), CaseError>,
) {
    run_cases(config.cases, name, property);
}

fn run_cases(cases: u64, name: &str, property: impl Fn(&mut Rng) -> Result<(), CaseError>) {
    let root = fnv1a(name);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while passed < cases {
        let mut rng = Rng::new(root ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(CaseError::Reject(reason)) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 16,
                    "proptest stub: too many rejected cases in {name} (last: {reason})"
                );
            }
            Err(CaseError::Fail(msg)) => {
                panic!("property {name} failed on deterministic case {case}: {msg}")
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
