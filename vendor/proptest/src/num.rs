//! Numeric strategies (`prop::num`).

use crate::strategy::Strategy;
use crate::test_runner::{CaseError, Rng};

/// Draws a finite, normal (non-subnormal) double with a wide exponent
/// spread, mimicking `proptest::num::f64::NORMAL`.
pub(crate) fn sample_normal_f64(rng: &mut Rng) -> f64 {
    let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
    let mantissa = 1.0 + rng.unit_f64(); // [1, 2)
    let exp = rng.below(601) as i32 - 300; // [-300, 300]
    sign * mantissa * 2f64.powi(exp)
}

/// `f64` strategies.
pub mod f64 {
    use super::*;

    /// Strategy for finite, normal (non-zero, non-subnormal) doubles.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Mirrors `proptest::num::f64::NORMAL`.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;

        fn generate(&self, rng: &mut Rng) -> Result<f64, CaseError> {
            Ok(sample_normal_f64(rng))
        }
    }
}
