//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{CaseError, Rng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of some type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// just draws a value from the deterministic RNG, or rejects the case
/// (e.g. a filter miss).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Result<Self::Value, CaseError>;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> Result<T, CaseError> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> Result<U, CaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> Result<S::Value, CaseError> {
        // Retry locally a few times before rejecting the whole case; this
        // keeps sparse filters from starving the runner.
        for _ in 0..8 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(CaseError::Reject(self.reason))
    }
}

/// Type-erased, cheaply clonable strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Result<T, CaseError> {
        self.0.generate(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> Result<T, CaseError> {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> Result<$t, CaseError> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = ((self.end as i128) - (self.start as i128)) as u128;
                    let off = rng.below_u128(span) as i128;
                    Ok(((self.start as i128) + off) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> Result<$t, CaseError> {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = ((*self.end() as i128) - (*self.start() as i128) + 1) as u128;
                    let off = rng.below_u128(span) as i128;
                    Ok(((*self.start() as i128) + off) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> Result<f64, CaseError> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut Rng) -> Result<f32, CaseError> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + (self.end - self.start) * rng.unit_f64() as f32)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Result<Self::Value, CaseError> {
                    let ($($name,)+) = self;
                    Ok(($($name.generate(rng)?,)+))
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Minimal string strategy: supports patterns of the shape
/// `[<class>]{<min>,<max>}` where the class lists literal characters and
/// `a-z` style ranges (e.g. `"[ -~]{0,50}"` for printable ASCII).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> Result<String, CaseError> {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern in proptest stub: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
        Ok(out)
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if chars.is_empty() || max < min {
        return None;
    }
    Some((chars, min, max))
}

/// Strategy for fixed-size arrays drawn element-wise from one strategy.
pub struct UniformArray<S, const N: usize> {
    pub(crate) element: S,
    pub(crate) _marker: PhantomData<[(); N]>,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
where
    S::Value: Default + Copy,
{
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut Rng) -> Result<[S::Value; N], CaseError> {
        let mut out = [S::Value::default(); N];
        for slot in &mut out {
            *slot = self.element.generate(rng)?;
        }
        Ok(out)
    }
}
