//! In-tree stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so crates.io serde cannot be resolved. The workspace
//! uses serde exclusively as a *marker* — `#[derive(Serialize,
//! Deserialize)]` on plain data types, never an actual serializer — so
//! this crate provides the two trait names with blanket impls plus no-op
//! derive macros. Swapping back to real serde is a one-line change in
//! the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
