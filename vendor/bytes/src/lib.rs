//! In-tree minimal reimplementation of the `bytes` crate surface used by
//! this workspace (the MAVLink-style codec in `drone-firmware`).
//!
//! The build container has no network access, so crates.io `bytes` is
//! unavailable. This provides `Bytes`/`BytesMut` plus the `Buf`/`BufMut`
//! methods the codec uses, with the same panicking-on-underflow
//! contract as the real crate. It is a plain `Vec<u8>` underneath — no
//! refcounted zero-copy splitting — which is behaviorally equivalent
//! for framing-sized buffers.

use std::ops::Deref;

/// Read-side cursor over an immutable byte buffer.
///
/// Mirrors `bytes::Buf` for the little-endian accessors the telemetry
/// codec needs. Reads advance an internal cursor; all accessors panic if
/// the buffer has fewer remaining bytes than requested, exactly like the
/// real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current unread window.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "advance past end of Bytes");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "advance past end of Bytes");
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "advance past end of Bytes");
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Copies out the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "advance past end of Bytes");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write-side append interface, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Number of bytes written.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(&r.copy_to_bytes(2)[..], b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u16_le();
    }
}
