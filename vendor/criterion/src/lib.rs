//! In-tree minimal stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access, so crates.io criterion is
//! unavailable. This crate keeps the workspace's `harness = false`
//! benches compiling and running: each `bench_function` executes its
//! routine for a short, fixed number of iterations and prints the
//! per-iteration wall-clock time. There is no statistical analysis,
//! warm-up modeling, or HTML report — it is a smoke-run harness that
//! keeps bench code exercised and timed in CI.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so callers can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 8;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), &mut f);
        self
    }

    /// Ends the group (a no-op in this harness).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        total_iters: 0,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if bencher.total_iters == 0 {
        println!("{label:<48} (no iterations)");
    } else {
        let per_iter = bencher.elapsed_ns / bencher.total_iters as u128;
        println!(
            "{label:<48} {per_iter:>12} ns/iter ({} iters)",
            bencher.total_iters
        );
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    total_iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times a routine over a fixed iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std_black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.total_iters += MEASURE_ITERS;
    }

    /// Times a routine with a fresh input per iteration.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            std_black_box(routine(setup()));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.total_iters += MEASURE_ITERS;
    }
}

/// Batch sizing hint; accepted and ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
