//! No-op stand-ins for serde's derive macros.
//!
//! The workspace builds in an offline container, so crates.io serde is
//! unavailable. The codebase only ever *marks* types with
//! `#[derive(Serialize, Deserialize)]` — no serializer is ever invoked —
//! so expanding the derives to nothing preserves every observable
//! behavior while keeping the annotations (and the future upgrade path
//! to real serde) intact.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
