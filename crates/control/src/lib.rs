//! Inner-loop flight control (paper §2.1.3).
//!
//! The paper's central control finding: the inner loop is a **hierarchy of
//! PID controllers separated by time scale** (Table 2b) — a high-level
//! position/trajectory controller at ~40 Hz, a mid-level attitude
//! controller at ~200 Hz and a low-level thrust/rate controller at ~1 kHz
//! — and its achievable update rate is bounded by the *physical response*
//! of the vehicle, not by compute. This crate implements that cascade:
//!
//! * [`pid`] — the PID primitive with integral clamping and derivative
//!   filtering.
//! * [`mixer`] — allocation of collective thrust + body torques onto the
//!   four rotors.
//! * [`attitude`] — mid-level attitude + low-level body-rate control.
//! * [`indi`] — the incremental nonlinear dynamic inversion rate loop
//!   the paper cites for gust rejection (an architecture ablation).
//! * [`position`] — high-level position/velocity control producing
//!   attitude and thrust targets.
//! * [`cascade`] — the rate-scheduled combination with Table 2b
//!   frequencies, consuming outer-loop [`Setpoint`]s.
//!
//! # Example
//!
//! ```
//! use drone_control::{CascadeController, Setpoint};
//! use drone_sim::{Quadcopter, QuadcopterParams};
//! use drone_math::Vec3;
//!
//! let params = QuadcopterParams::default_450mm();
//! let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
//! let mut ctrl = CascadeController::new(&params);
//! let target = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
//! for _ in 0..1000 {
//!     let throttle = ctrl.update(quad.state(), &target, 1e-3);
//!     quad.step(throttle, Vec3::ZERO, 1e-3);
//! }
//! assert!((quad.state().position.z - 10.0).abs() < 0.5);
//! ```

pub mod attitude;
pub mod cascade;
pub mod indi;
pub mod mixer;
pub mod pid;
pub mod position;

pub use attitude::AttitudeController;
pub use cascade::{CascadeController, ControlRates, Setpoint};
pub use indi::IndiRateController;
pub use mixer::Mixer;
pub use pid::Pid;
pub use position::PositionController;
