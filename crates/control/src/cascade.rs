//! The full rate-scheduled inner-loop cascade (paper Figure 6, Table 2b).
//!
//! Three levels with time-scale separation:
//!
//! | level    | controller          | update rate | response time |
//! |----------|---------------------|-------------|---------------|
//! | high     | position/trajectory | 40 Hz       | ~1 s          |
//! | mid      | attitude            | 200 Hz      | ~100 ms       |
//! | low      | thrust/body rate    | 1 kHz       | ~50 ms        |
//!
//! The outer loop (autonomy) only provides *set targets* — position,
//! velocity or attitude (paper Table 1); everything below runs here.

use crate::attitude::AttitudeController;
use crate::mixer::Mixer;
use crate::position::PositionController;
use drone_math::{Quat, Vec3};
use drone_sim::params::QuadcopterParams;
use drone_sim::rotor::ROTOR_COUNT;
use drone_sim::RigidBodyState;
use drone_telemetry::{Clock, Registry, SharedHistogram};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Update frequencies of the three cascade levels, Hz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlRates {
    /// High-level position loop rate.
    pub position_hz: f64,
    /// Mid-level attitude loop rate.
    pub attitude_hz: f64,
    /// Low-level rate/thrust loop rate (also the call rate of
    /// [`CascadeController::update`]).
    pub rate_hz: f64,
}

impl Default for ControlRates {
    /// The paper's Table 2b frequencies.
    fn default() -> Self {
        ControlRates {
            position_hz: 40.0,
            attitude_hz: 200.0,
            rate_hz: 1000.0,
        }
    }
}

impl ControlRates {
    /// Validates ordering (each level at least as fast as the one above).
    ///
    /// # Panics
    ///
    /// Panics if rates are non-positive or mis-ordered.
    pub fn validated(self) -> Self {
        assert!(
            self.position_hz > 0.0 && self.attitude_hz > 0.0 && self.rate_hz > 0.0,
            "rates must be positive"
        );
        assert!(
            self.position_hz <= self.attitude_hz && self.attitude_hz <= self.rate_hz,
            "time-scale separation requires position ≤ attitude ≤ rate frequency"
        );
        self
    }
}

/// A target handed down by the outer loop (paper Table 1 "set target").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Setpoint {
    /// Hold/reach a world position with the given yaw.
    Position {
        /// Target position, world frame (m).
        position: Vec3,
        /// Target yaw (rad).
        yaw: f64,
    },
    /// Track a world velocity with the given yaw.
    Velocity {
        /// Target velocity, world frame (m/s).
        velocity: Vec3,
        /// Target yaw (rad).
        yaw: f64,
    },
    /// Direct attitude + collective thrust (acro / outer-loop attitude
    /// control).
    Attitude {
        /// Attitude target.
        attitude: Quat,
        /// Collective thrust (N).
        thrust_newtons: f64,
    },
}

impl Setpoint {
    /// Position-hold setpoint.
    pub fn position(position: Vec3, yaw: f64) -> Setpoint {
        Setpoint::Position { position, yaw }
    }

    /// Velocity-tracking setpoint.
    pub fn velocity(velocity: Vec3, yaw: f64) -> Setpoint {
        Setpoint::Velocity { velocity, yaw }
    }
}

/// The complete inner loop: position → attitude → rate → mixer.
///
/// Call [`CascadeController::update`] at the low-level rate; the higher
/// levels decimate themselves internally, exactly like a real flight
/// stack's rate groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeController {
    rates: ControlRates,
    position: PositionController,
    attitude: AttitudeController,
    mixer: Mixer,
    hover_thrust: f64,
    // Latched intermediate commands between slow-level updates.
    attitude_cmd: Quat,
    thrust_cmd: f64,
    rate_setpoint: Vec3,
    time_since_position: f64,
    time_since_attitude: f64,
    updates: CascadeUpdateCounts,
    telemetry: TelemetrySink,
}

/// Per-level timing histograms the cascade records into once attached
/// via [`CascadeController::attach_telemetry`]. Under a wall-clock
/// registry these measure real compute per level; under a sim clock
/// they stay zero (control levels are instantaneous in sim time) but
/// their counts still mirror [`CascadeUpdateCounts`].
#[derive(Debug, Clone)]
struct CascadeTelemetry {
    clock: Clock,
    position: Arc<SharedHistogram>,
    attitude: Arc<SharedHistogram>,
    rate: Arc<SharedHistogram>,
}

/// Optional telemetry attachment; always compares equal so attaching a
/// registry never makes two otherwise-identical controllers differ.
#[derive(Debug, Clone, Default)]
struct TelemetrySink(Option<CascadeTelemetry>);

impl PartialEq for TelemetrySink {
    fn eq(&self, _: &TelemetrySink) -> bool {
        true
    }
}

/// Diagnostic counters: how often each level actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CascadeUpdateCounts {
    /// High-level (position) executions.
    pub position: u64,
    /// Mid-level (attitude) executions.
    pub attitude: u64,
    /// Low-level (rate) executions.
    pub rate: u64,
}

impl CascadeController {
    /// Creates a cascade at the paper's Table 2b rates.
    pub fn new(params: &QuadcopterParams) -> CascadeController {
        CascadeController::with_rates(params, ControlRates::default())
    }

    /// Creates a cascade with custom rates (for the inner-loop saturation
    /// experiments).
    pub fn with_rates(params: &QuadcopterParams, rates: ControlRates) -> CascadeController {
        let rates = rates.validated();
        CascadeController {
            rates,
            position: PositionController::new(params),
            attitude: AttitudeController::new(params),
            mixer: Mixer::new(params),
            hover_thrust: params.total_weight().weight_newtons(),
            attitude_cmd: Quat::IDENTITY,
            thrust_cmd: params.total_weight().weight_newtons(),
            rate_setpoint: Vec3::ZERO,
            time_since_position: f64::INFINITY,
            time_since_attitude: f64::INFINITY,
            updates: CascadeUpdateCounts::default(),
            telemetry: TelemetrySink(None),
        }
    }

    /// Attaches per-level timing telemetry: every subsequent
    /// [`CascadeController::update`] records how long each cascade level
    /// spent executing into `control.position.seconds`,
    /// `control.attitude.seconds` and `control.rate.seconds`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry.0 = Some(CascadeTelemetry {
            clock: registry.clock().clone(),
            position: registry.histogram("control.position.seconds"),
            attitude: registry.histogram("control.attitude.seconds"),
            rate: registry.histogram("control.rate.seconds"),
        });
    }

    /// Configured rates.
    pub fn rates(&self) -> ControlRates {
        self.rates
    }

    /// Per-level execution counters.
    pub fn update_counts(&self) -> CascadeUpdateCounts {
        self.updates
    }

    /// Runs one low-level tick: consumes the state estimate and the
    /// current outer-loop setpoint, returns per-motor throttle.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn update(
        &mut self,
        state: &RigidBodyState,
        setpoint: &Setpoint,
        dt: f64,
    ) -> [f64; ROTOR_COUNT] {
        assert!(dt > 0.0, "dt must be positive");
        self.time_since_position += dt;
        self.time_since_attitude += dt;

        // High level at position_hz.
        let position_period = 1.0 / self.rates.position_hz;
        if self.time_since_position >= position_period {
            let level_start = self.telemetry.0.as_ref().map(|t| t.clock.now());
            let step_dt = if self.time_since_position.is_finite() {
                self.time_since_position
            } else {
                position_period
            };
            match setpoint {
                Setpoint::Position { position, yaw } => {
                    let cmd = self
                        .position
                        .update_position(state, *position, *yaw, step_dt);
                    self.attitude_cmd = cmd.attitude;
                    self.thrust_cmd = cmd.thrust_newtons;
                }
                Setpoint::Velocity { velocity, yaw } => {
                    let cmd = self
                        .position
                        .update_velocity(state, *velocity, *yaw, step_dt);
                    self.attitude_cmd = cmd.attitude;
                    self.thrust_cmd = cmd.thrust_newtons;
                }
                Setpoint::Attitude {
                    attitude,
                    thrust_newtons,
                } => {
                    self.attitude_cmd = *attitude;
                    self.thrust_cmd = *thrust_newtons;
                }
            }
            self.time_since_position = 0.0;
            self.updates.position += 1;
            if let (Some(start), Some(tel)) = (level_start, &self.telemetry.0) {
                tel.position.record(tel.clock.now() - start);
            }
        }

        // Mid level at attitude_hz.
        let attitude_period = 1.0 / self.rates.attitude_hz;
        if self.time_since_attitude >= attitude_period {
            let level_start = self.telemetry.0.as_ref().map(|t| t.clock.now());
            self.rate_setpoint = self
                .attitude
                .rate_setpoint(state.attitude, self.attitude_cmd);
            self.time_since_attitude = 0.0;
            self.updates.attitude += 1;
            if let (Some(start), Some(tel)) = (level_start, &self.telemetry.0) {
                tel.attitude.record(tel.clock.now() - start);
            }
        }

        // Low level every tick.
        let level_start = self.telemetry.0.as_ref().map(|t| t.clock.now());
        let torque = self
            .attitude
            .update_rate_only(state.angular_velocity, self.rate_setpoint, dt);
        self.updates.rate += 1;
        let throttle = self.mixer.mix(self.thrust_cmd, torque);
        if let (Some(start), Some(tel)) = (level_start, &self.telemetry.0) {
            tel.rate.record(tel.clock.now() - start);
        }
        throttle
    }

    /// Resets all controller history.
    pub fn reset(&mut self) {
        self.position.reset();
        self.attitude.reset();
        self.rate_setpoint = Vec3::ZERO;
        self.attitude_cmd = Quat::IDENTITY;
        self.thrust_cmd = self.hover_thrust;
        self.time_since_position = f64::INFINITY;
        self.time_since_attitude = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_sim::{Quadcopter, WindModel};

    fn fly(
        setpoint: Setpoint,
        seconds: f64,
        wind: &mut WindModel,
    ) -> (Quadcopter, CascadeController) {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let mut ctrl = CascadeController::new(&params);
        let dt = 1e-3;
        for _ in 0..(seconds / dt) as usize {
            let throttle = ctrl.update(quad.state(), &setpoint, dt);
            let w = wind.sample(dt);
            quad.step(throttle, w, dt);
        }
        (quad, ctrl)
    }

    #[test]
    fn holds_hover_position() {
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let (quad, _) = fly(sp, 5.0, &mut WindModel::calm());
        let err = (quad.state().position - Vec3::new(0.0, 0.0, 10.0)).norm();
        assert!(err < 0.2, "hover error {err} m: {}", quad.state());
    }

    #[test]
    fn flies_to_position_target() {
        let target = Vec3::new(5.0, -3.0, 15.0);
        let sp = Setpoint::position(target, 0.5);
        let (quad, _) = fly(sp, 12.0, &mut WindModel::calm());
        let err = (quad.state().position - target).norm();
        assert!(err < 0.5, "position error {err} m: {}", quad.state());
        let (_, _, yaw) = quad.state().euler();
        assert!((yaw - 0.5).abs() < 0.1, "yaw {yaw}");
    }

    #[test]
    fn tracks_velocity_setpoint() {
        let sp = Setpoint::velocity(Vec3::new(2.0, 0.0, 0.0), 0.0);
        let (quad, _) = fly(sp, 6.0, &mut WindModel::calm());
        assert!(
            (quad.state().velocity.x - 2.0).abs() < 0.4,
            "{}",
            quad.state()
        );
    }

    #[test]
    fn rejects_wind_gusts() {
        // Table 1: wind gusts are the inner loop's job. Hold position in
        // a 5 m/s mean wind with 2 m/s gusts.
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let mut wind = WindModel::gusty(Vec3::new(5.0, 0.0, 0.0), 2.0, 3);
        let (quad, _) = fly(sp, 15.0, &mut wind);
        let err = (quad.state().position - Vec3::new(0.0, 0.0, 10.0)).norm();
        assert!(err < 1.5, "wind hold error {err} m: {}", quad.state());
    }

    #[test]
    fn update_counts_respect_rate_groups() {
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let (_, ctrl) = fly(sp, 2.0, &mut WindModel::calm());
        let c = ctrl.update_counts();
        // 2 s at 1 kHz / 200 Hz / 40 Hz.
        assert!(
            (c.rate as i64 - 2000).abs() <= 2,
            "rate ran {} times",
            c.rate
        );
        assert!(
            (c.attitude as i64 - 400).abs() <= 4,
            "attitude ran {} times",
            c.attitude
        );
        assert!(
            (c.position as i64 - 80).abs() <= 2,
            "position ran {} times",
            c.position
        );
    }

    #[test]
    fn attitude_setpoint_passthrough() {
        let params = QuadcopterParams::default_450mm();
        let hover = params.total_weight().weight_newtons();
        let sp = Setpoint::Attitude {
            attitude: Quat::from_euler(0.0, 0.0, 1.0),
            thrust_newtons: hover,
        };
        let (quad, _) = fly(sp, 4.0, &mut WindModel::calm());
        let (_, _, yaw) = quad.state().euler();
        assert!((yaw - 1.0).abs() < 0.1, "yaw {yaw}");
    }

    #[test]
    fn attached_telemetry_mirrors_update_counts() {
        use drone_telemetry::Registry;
        let registry = Registry::with_wall_clock();
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let mut ctrl = CascadeController::new(&params);
        ctrl.attach_telemetry(&registry);
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        for _ in 0..2000 {
            let throttle = ctrl.update(quad.state(), &sp, 1e-3);
            quad.step(throttle, Vec3::ZERO, 1e-3);
        }
        let c = ctrl.update_counts();
        assert_eq!(registry.histogram("control.rate.seconds").count(), c.rate);
        assert_eq!(
            registry.histogram("control.attitude.seconds").count(),
            c.attitude
        );
        assert_eq!(
            registry.histogram("control.position.seconds").count(),
            c.position
        );
        // Telemetry attachment does not change control outputs: an
        // identically-driven bare controller ends in the same state.
        let mut bare_quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let mut bare = CascadeController::new(&params);
        for _ in 0..2000 {
            let throttle = bare.update(bare_quad.state(), &sp, 1e-3);
            bare_quad.step(throttle, Vec3::ZERO, 1e-3);
        }
        assert_eq!(bare, ctrl);
        assert_eq!(bare_quad, quad);
    }

    #[test]
    #[should_panic(expected = "time-scale separation")]
    fn misordered_rates_panic() {
        let params = QuadcopterParams::default_450mm();
        let _ = CascadeController::with_rates(
            &params,
            ControlRates {
                position_hz: 500.0,
                attitude_hz: 200.0,
                rate_hz: 1000.0,
            },
        );
    }

    #[test]
    fn runs_at_slower_inner_rates_too() {
        // The paper: commercial inner loops run 50–500 Hz. The cascade
        // must still hold hover at 250 Hz ticks.
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let mut ctrl = CascadeController::with_rates(
            &params,
            ControlRates {
                position_hz: 40.0,
                attitude_hz: 125.0,
                rate_hz: 250.0,
            },
        );
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let dt = 1.0 / 250.0;
        let mut throttle = [0.0; 4];
        let sim_dt = 1e-3;
        for i in 0..10_000 {
            if (i as f64 * sim_dt) % dt < sim_dt {
                throttle = ctrl.update(quad.state(), &sp, dt);
            }
            quad.step(throttle, Vec3::ZERO, sim_dt);
        }
        let err = (quad.state().position - Vec3::new(0.0, 0.0, 10.0)).norm();
        assert!(err < 0.5, "hover at 250 Hz failed: {err} m");
    }
}
