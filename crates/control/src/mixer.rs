//! Motor mixing: allocating collective thrust and body torques onto the
//! four rotors of an X-configuration quad.
//!
//! Inverting the rotor geometry of [`drone_sim::rotor`]: with rotor arm
//! half-spacing `l = arm/√2` and torque-to-thrust ratio `kq`, the
//! per-rotor thrusts follow in closed form, and each thrust maps to a
//! normalized speed command through `u = √(T / T_max)` (thrust is
//! quadratic in rotor speed).

use drone_math::Vec3;
use drone_sim::params::QuadcopterParams;
use drone_sim::rotor::ROTOR_COUNT;
use serde::{Deserialize, Serialize};

/// Thrust/torque → per-motor throttle allocator.
///
/// # Example
///
/// ```
/// use drone_control::Mixer;
/// use drone_sim::QuadcopterParams;
/// use drone_math::Vec3;
/// let params = QuadcopterParams::default_450mm();
/// let mixer = Mixer::new(&params);
/// let hover = params.total_weight().weight_newtons();
/// let throttle = mixer.mix(hover, Vec3::ZERO);
/// // Pure collective: all four motors equal.
/// assert!((throttle[0] - throttle[3]).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixer {
    /// Arm half-spacing `l` (m): rotor offset along each body axis.
    lever: f64,
    /// Rotor reaction-torque-to-thrust ratio (m).
    kq: f64,
    /// Maximum thrust a single rotor can produce (N).
    max_thrust_per_motor: f64,
}

impl Mixer {
    /// Builds the mixer for a specific airframe.
    pub fn new(params: &QuadcopterParams) -> Mixer {
        let lever = params.arm_length() / std::f64::consts::SQRT_2;
        // Q/T = Cp·D / (2π·Ct) is speed-independent for our rotor model.
        let prop = &params.propeller;
        let kq = prop.power_coefficient() * prop.diameter_m()
            / (2.0 * std::f64::consts::PI * prop.thrust_coefficient());
        let max_thrust_per_motor = params
            .motor
            .max_thrust_newtons(prop, params.supply_voltage());
        Mixer {
            lever,
            kq,
            max_thrust_per_motor,
        }
    }

    /// Maximum collective thrust, N.
    pub fn max_total_thrust(&self) -> f64 {
        4.0 * self.max_thrust_per_motor
    }

    /// Reaction-torque-to-thrust ratio, metres.
    pub fn torque_to_thrust_ratio(&self) -> f64 {
        self.kq
    }

    /// Allocates `total_thrust` newtons and `torque` N·m onto normalized
    /// per-motor speed commands in `0.0..=1.0`.
    ///
    /// Torque authority degrades gracefully at the thrust limits: each
    /// per-rotor thrust is clamped to its feasible range before the
    /// square-root map, prioritizing collective thrust over torque
    /// (standard desaturation behaviour).
    pub fn mix(&self, total_thrust: f64, torque: Vec3) -> [f64; ROTOR_COUNT] {
        let base = total_thrust.max(0.0) / 4.0;
        let dx = torque.x / (4.0 * self.lever);
        let dy = torque.y / (4.0 * self.lever);
        let dz = torque.z / (4.0 * self.kq);
        // Signs follow the rotor layout in `drone_sim::rotor`:
        // index 0 front-left (CCW), 1 front-right (CW),
        //       2 rear-right (CCW), 3 rear-left (CW).
        let thrusts = [
            base - dx - dy - dz,
            base + dx - dy + dz,
            base + dx + dy - dz,
            base - dx + dy + dz,
        ];
        let mut out = [0.0; ROTOR_COUNT];
        for (u, t) in out.iter_mut().zip(thrusts) {
            let clamped = t.clamp(0.0, self.max_thrust_per_motor);
            *u = (clamped / self.max_thrust_per_motor).sqrt();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_sim::rotor::RotorSet;

    fn setup() -> (QuadcopterParams, Mixer) {
        let params = QuadcopterParams::default_450mm();
        let mixer = Mixer::new(&params);
        (params, mixer)
    }

    /// Spin rotors to the mixer's commands and read back realized forces.
    fn realize(params: &QuadcopterParams, throttle: [f64; 4]) -> drone_sim::rotor::RotorForces {
        let mut rotors = RotorSet::new(params);
        for _ in 0..3000 {
            rotors.step(throttle, 1e-3);
        }
        rotors.forces(params)
    }

    #[test]
    fn collective_thrust_is_realized() {
        let (params, mixer) = setup();
        let want = params.total_weight().weight_newtons(); // hover
        let throttle = mixer.mix(want, Vec3::ZERO);
        let got = realize(&params, throttle);
        assert!(
            (got.total_thrust - want).abs() / want < 0.01,
            "thrust {}",
            got.total_thrust
        );
        assert!(got.torque.norm() < 1e-6);
    }

    #[test]
    fn roll_torque_is_realized() {
        let (params, mixer) = setup();
        let hover = params.total_weight().weight_newtons();
        let want = Vec3::new(0.2, 0.0, 0.0);
        let throttle = mixer.mix(hover, want);
        let got = realize(&params, throttle);
        assert!((got.torque.x - 0.2).abs() < 0.02, "τx {}", got.torque.x);
        assert!(got.torque.y.abs() < 1e-6 && got.torque.z.abs() < 1e-6);
    }

    #[test]
    fn pitch_and_yaw_torques_are_realized() {
        let (params, mixer) = setup();
        let hover = params.total_weight().weight_newtons();
        let want = Vec3::new(0.0, 0.15, 0.05);
        let got = realize(&params, mixer.mix(hover, want));
        assert!((got.torque.y - 0.15).abs() < 0.02, "τy {}", got.torque.y);
        assert!((got.torque.z - 0.05).abs() < 0.01, "τz {}", got.torque.z);
    }

    #[test]
    fn throttles_stay_normalized() {
        let (_, mixer) = setup();
        let crazy = mixer.mix(1e6, Vec3::new(100.0, -100.0, 50.0));
        for u in crazy {
            assert!((0.0..=1.0).contains(&u), "throttle {u}");
        }
        let negative = mixer.mix(-50.0, Vec3::ZERO);
        assert_eq!(negative, [0.0; 4]);
    }

    #[test]
    fn zero_demand_is_zero_output() {
        let (_, mixer) = setup();
        assert_eq!(mixer.mix(0.0, Vec3::ZERO), [0.0; 4]);
    }

    #[test]
    fn max_total_thrust_matches_params() {
        let (params, mixer) = setup();
        assert!((mixer.max_total_thrust() - params.max_total_thrust_newtons()).abs() < 1e-9);
    }

    #[test]
    fn torque_ratio_is_positive_and_small() {
        let (_, mixer) = setup();
        let kq = mixer.torque_to_thrust_ratio();
        // For a 10" prop kq is on the order of centimetres.
        assert!((0.001..0.1).contains(&kq), "kq {kq}");
    }
}
