//! Incremental nonlinear dynamic inversion (INDI) rate control.
//!
//! The paper (§2.1.3-D) cites INDI as the state of the art for gust
//! rejection: "even for highly specialized sensor-based control
//! techniques with incremental nonlinear dynamic inversion (INDI) that
//! can stabilize a drone under powerful wind gusts, the update frequency
//! is still 500 Hz". INDI replaces the rate PID's disturbance integrator
//! with direct feedback of the *measured angular acceleration*: each
//! tick commands a torque **increment**
//!
//! ```text
//! Δτ = I · (ν − ω̇_f),     ν = Kp (ω_sp − ω)
//! ```
//!
//! where `ω̇_f` is the filtered, differentiated gyro signal. Because the
//! previous torque's effect is measured rather than modelled,
//! unmodelled torques (gusts, weight imbalance, motor imperfection — the
//! paper's Table 1 list) are cancelled within one filter time constant.

use drone_math::Vec3;
use drone_sim::params::QuadcopterParams;
use serde::{Deserialize, Serialize};

/// INDI body-rate controller (the 1 kHz low level).
///
/// # Example
///
/// ```
/// use drone_control::indi::IndiRateController;
/// use drone_sim::QuadcopterParams;
/// use drone_math::Vec3;
/// let params = QuadcopterParams::default_450mm();
/// let mut indi = IndiRateController::new(&params);
/// let torque = indi.update(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1e-3);
/// assert!(torque.x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndiRateController {
    /// Rate-error → angular-acceleration gain (1/s).
    pub rate_gain: Vec3,
    /// Gyro-differentiation low-pass time constant, s.
    pub filter_tau: f64,
    inertia: Vec3,
    max_torque: Vec3,
    prev_rate: Option<Vec3>,
    filtered_accel: Vec3,
    /// Actuator command filtered with the SAME dynamics as the gyro
    /// derivative — the synchronization that keeps INDI stable under
    /// actuator lag (Smeur et al.).
    filtered_cmd: Vec3,
    torque_cmd: Vec3,
}

impl IndiRateController {
    /// Creates an INDI rate loop tuned for the airframe.
    pub fn new(params: &QuadcopterParams) -> IndiRateController {
        let inertia = params.inertia_diagonal();
        // Torque authority ≈ max differential thrust × lever arm.
        let lever = params.arm_length() / std::f64::consts::SQRT_2;
        let t_max = params.max_total_thrust_newtons() / 4.0;
        let max_torque = Vec3::new(t_max * lever, t_max * lever, t_max * lever * 0.2);
        IndiRateController {
            rate_gain: Vec3::new(14.0, 14.0, 8.0),
            filter_tau: 0.02,
            inertia,
            max_torque,
            prev_rate: None,
            filtered_accel: Vec3::ZERO,
            filtered_cmd: Vec3::ZERO,
            torque_cmd: Vec3::ZERO,
        }
    }

    /// One tick: body rate measurement + rate setpoint → torque command.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn update(&mut self, body_rate: Vec3, rate_setpoint: Vec3, dt: f64) -> Vec3 {
        assert!(dt > 0.0, "dt must be positive");
        // Differentiate and low-pass the gyro to estimate ω̇.
        let raw_accel = match self.prev_rate {
            Some(prev) => (body_rate - prev) / dt,
            None => Vec3::ZERO,
        };
        self.prev_rate = Some(body_rate);
        let alpha = dt / (self.filter_tau + dt);
        self.filtered_accel = self.filtered_accel + (raw_accel - self.filtered_accel) * alpha;
        self.filtered_cmd = self.filtered_cmd + (self.torque_cmd - self.filtered_cmd) * alpha;

        // Desired angular acceleration (the "virtual control" ν).
        let err = rate_setpoint - body_rate;
        let nu = Vec3::new(
            self.rate_gain.x * err.x,
            self.rate_gain.y * err.y,
            self.rate_gain.z * err.z,
        );
        // The INDI law: increment relative to the *filtered* previous
        // command, inverted through the inertia. The measured ω̇ carries
        // every disturbance, so no explicit integrator is needed.
        let delta = nu - self.filtered_accel;
        self.torque_cmd = self.filtered_cmd
            + Vec3::new(
                self.inertia.x * delta.x,
                self.inertia.y * delta.y,
                self.inertia.z * delta.z,
            );
        self.torque_cmd = Vec3::new(
            self.torque_cmd
                .x
                .clamp(-self.max_torque.x, self.max_torque.x),
            self.torque_cmd
                .y
                .clamp(-self.max_torque.y, self.max_torque.y),
            self.torque_cmd
                .z
                .clamp(-self.max_torque.z, self.max_torque.z),
        );
        self.torque_cmd
    }

    /// Clears controller memory (mode change / arming).
    pub fn reset(&mut self) {
        self.prev_rate = None;
        self.filtered_accel = Vec3::ZERO;
        self.filtered_cmd = Vec3::ZERO;
        self.torque_cmd = Vec3::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixer::Mixer;
    use drone_math::{Pcg32, Quat};
    use drone_sim::{Quadcopter, WindModel};

    /// Fly attitude-hold with an INDI rate loop under gusts; return the
    /// RMS attitude error (rad).
    fn gust_attitude_rms_indi(gust: f64, seconds: f64) -> f64 {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
        let attitude = crate::attitude::AttitudeController::new(&params);
        let mut indi = IndiRateController::new(&params);
        let mixer = Mixer::new(&params);
        let hover = params.total_weight().weight_newtons();
        let mut wind = WindModel::gusty(drone_math::Vec3::new(4.0, 0.0, 0.0), gust, 17);
        // Random torque disturbance emulating prop flapping/imbalance.
        let mut rng = Pcg32::seed_from(3);
        let dt = 1e-3;
        let mut sq = 0.0;
        let n = (seconds / dt) as usize;
        for _ in 0..n {
            let s = *quad.state();
            let rate_sp = attitude.rate_setpoint(s.attitude, Quat::IDENTITY);
            let mut torque = indi.update(s.angular_velocity, rate_sp, dt);
            torque +=
                drone_math::Vec3::new(rng.normal_with(0.0, 0.02), rng.normal_with(0.0, 0.02), 0.0);
            quad.step(mixer.mix(hover, torque), wind.sample(dt), dt);
            sq += s.attitude.angle_to(Quat::IDENTITY).powi(2);
        }
        (sq / n as f64).sqrt()
    }

    #[test]
    fn holds_attitude_in_strong_gusts() {
        // The paper's INDI citation is about gust stabilization: 3 m/s
        // gusts on top of a 4 m/s mean wind must leave attitude error
        // small.
        let rms = gust_attitude_rms_indi(3.0, 8.0);
        assert!(rms < 0.1, "attitude RMS {rms} rad under gusts");
    }

    #[test]
    fn tracks_a_rate_step() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
        let mut indi = IndiRateController::new(&params);
        let mixer = Mixer::new(&params);
        let hover = params.total_weight().weight_newtons();
        let dt = 1e-3;
        for _ in 0..400 {
            let s = *quad.state();
            let torque = indi.update(s.angular_velocity, drone_math::Vec3::new(1.0, 0.0, 0.0), dt);
            quad.step(mixer.mix(hover, torque), drone_math::Vec3::ZERO, dt);
        }
        let rate = quad.state().angular_velocity.x;
        assert!((rate - 1.0).abs() < 0.2, "roll rate {rate} after 0.4 s");
    }

    #[test]
    fn cancels_a_constant_disturbance_torque() {
        // A constant unmodelled torque (weight imbalance): INDI must
        // drive the rate back to zero without an explicit integrator.
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
        let mut indi = IndiRateController::new(&params);
        let mixer = Mixer::new(&params);
        let hover = params.total_weight().weight_newtons();
        let dt = 1e-3;
        for _ in 0..3000 {
            let s = *quad.state();
            let torque = indi.update(s.angular_velocity, drone_math::Vec3::ZERO, dt)
                + drone_math::Vec3::new(0.08, 0.0, 0.0);
            quad.step(mixer.mix(hover, torque), drone_math::Vec3::ZERO, dt);
        }
        let residual = quad.state().angular_velocity.x.abs();
        assert!(residual < 0.05, "residual roll rate {residual}");
    }

    #[test]
    fn torque_is_bounded() {
        let params = QuadcopterParams::default_450mm();
        let mut indi = IndiRateController::new(&params);
        for _ in 0..1000 {
            let t = indi.update(Vec3::ZERO, Vec3::new(100.0, -100.0, 50.0), 1e-3);
            assert!(t.is_finite());
            assert!(
                t.x.abs() <= 10.0 && t.y.abs() <= 10.0,
                "unbounded torque {t}"
            );
        }
    }

    #[test]
    fn reset_clears_memory() {
        let params = QuadcopterParams::default_450mm();
        let mut indi = IndiRateController::new(&params);
        for _ in 0..100 {
            indi.update(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1e-3);
        }
        indi.reset();
        let t = indi.update(Vec3::ZERO, Vec3::ZERO, 1e-3);
        assert!(t.norm() < 1e-9, "residual torque {t}");
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let params = QuadcopterParams::default_450mm();
        IndiRateController::new(&params).update(Vec3::ZERO, Vec3::ZERO, 0.0);
    }
}
