//! High-level position / velocity control (Table 2b's 40 Hz layer).
//!
//! Position error → bounded velocity setpoint → desired acceleration →
//! (attitude target, collective thrust). The horizontal acceleration is
//! realized by tilting (the paper's §2.1.1 observation: drones reuse the
//! uplift thrust for horizontal movement by tilting), capped at a maximum
//! tilt angle that the thrust-to-weight ratio must support.

use crate::pid::Pid;
use drone_components::units::STANDARD_GRAVITY;
use drone_math::{Quat, Vec3};
use drone_sim::params::QuadcopterParams;
use serde::{Deserialize, Serialize};

/// Output of the position controller: what the mid/low levels consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttitudeThrustCommand {
    /// Attitude setpoint (body→world).
    pub attitude: Quat,
    /// Collective thrust, newtons.
    pub thrust_newtons: f64,
}

/// Position / velocity → attitude + thrust controller.
///
/// # Example
///
/// ```
/// use drone_control::PositionController;
/// use drone_sim::{QuadcopterParams, RigidBodyState};
/// use drone_math::Vec3;
/// let params = QuadcopterParams::default_450mm();
/// let mut ctrl = PositionController::new(&params);
/// let state = RigidBodyState::at_altitude(5.0);
/// let cmd = ctrl.update_position(&state, Vec3::new(0.0, 0.0, 10.0), 0.0, 0.025);
/// // Below target: needs more than hover thrust.
/// assert!(cmd.thrust_newtons > params.total_weight().weight_newtons());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionController {
    /// Position-error → velocity-setpoint gain (1/s).
    pub position_gain: f64,
    /// Maximum horizontal speed setpoint, m/s.
    pub max_speed: f64,
    /// Maximum climb/descent speed setpoint, m/s.
    pub max_vertical_speed: f64,
    /// Maximum commanded tilt, radians.
    pub max_tilt: f64,
    velocity_pid: [Pid; 3],
    mass_kg: f64,
    max_thrust: f64,
}

impl PositionController {
    /// Creates a controller tuned for the given airframe.
    pub fn new(params: &QuadcopterParams) -> PositionController {
        let velocity_pid = [
            Pid::new(2.2, 0.4, 0.0)
                .with_integral_limit(2.0)
                .with_output_limit(6.0),
            Pid::new(2.2, 0.4, 0.0)
                .with_integral_limit(2.0)
                .with_output_limit(6.0),
            Pid::new(4.0, 1.2, 0.0)
                .with_integral_limit(3.0)
                .with_output_limit(8.0),
        ];
        // TWR-limited tilt: cos(tilt) ≥ 1/TWR keeps altitude authority;
        // additionally capped at ~23° so the IMU's gravity reference
        // stays usable (see the complementary filter's gating).
        let twr = params.thrust_to_weight();
        let max_tilt = (1.0 / twr.max(1.05)).acos().min(0.4);
        PositionController {
            position_gain: 1.1,
            max_speed: 5.0,
            max_vertical_speed: 3.0,
            max_tilt,
            velocity_pid,
            mass_kg: params.total_mass_kg(),
            max_thrust: params.max_total_thrust_newtons(),
        }
    }

    /// Position-hold update: position target + yaw target → command.
    pub fn update_position(
        &mut self,
        state: &drone_sim::RigidBodyState,
        target_position: Vec3,
        target_yaw: f64,
        dt: f64,
    ) -> AttitudeThrustCommand {
        let err = target_position - state.position;
        // Clamp the horizontal speed as a VECTOR: per-axis clamping would
        // distort the direction of travel toward 45° diagonals and fly
        // wide of the line to the waypoint.
        let mut horizontal = Vec3::new(self.position_gain * err.x, self.position_gain * err.y, 0.0);
        let h_norm = horizontal.norm();
        if h_norm > self.max_speed {
            horizontal *= self.max_speed / h_norm;
        }
        let vel_sp = Vec3::new(
            horizontal.x,
            horizontal.y,
            (self.position_gain * err.z).clamp(-self.max_vertical_speed, self.max_vertical_speed),
        );
        self.update_velocity(state, vel_sp, target_yaw, dt)
    }

    /// Velocity-tracking update: velocity target + yaw target → command.
    pub fn update_velocity(
        &mut self,
        state: &drone_sim::RigidBodyState,
        target_velocity: Vec3,
        target_yaw: f64,
        dt: f64,
    ) -> AttitudeThrustCommand {
        let verr = target_velocity - state.velocity;
        let accel = Vec3::new(
            self.velocity_pid[0].step(verr.x, dt),
            self.velocity_pid[1].step(verr.y, dt),
            self.velocity_pid[2].step(verr.z, dt),
        );
        self.accel_to_command(accel, target_yaw)
    }

    /// Converts a desired world-frame acceleration (gravity-compensated
    /// internally) plus yaw into an attitude/thrust command.
    pub fn accel_to_command(&self, accel: Vec3, yaw: f64) -> AttitudeThrustCommand {
        let g = STANDARD_GRAVITY;
        // Tilt from horizontal acceleration, rotated into the yaw frame.
        let (sy, cy) = yaw.sin_cos();
        let pitch = ((accel.x * cy + accel.y * sy) / g)
            .atan()
            .clamp(-self.max_tilt, self.max_tilt);
        let roll = ((accel.x * sy - accel.y * cy) / g)
            .atan()
            .clamp(-self.max_tilt, self.max_tilt);
        let attitude = Quat::from_euler(roll, pitch, yaw);
        // Collective thrust: support weight plus vertical demand, divided
        // by the tilt's vertical projection.
        let tilt_cos = (roll.cos() * pitch.cos()).max(0.5);
        let thrust = (self.mass_kg * (g + accel.z) / tilt_cos).clamp(0.0, self.max_thrust);
        AttitudeThrustCommand {
            attitude,
            thrust_newtons: thrust,
        }
    }

    /// Clears controller history.
    pub fn reset(&mut self) {
        for pid in &mut self.velocity_pid {
            pid.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_sim::RigidBodyState;

    fn controller() -> (QuadcopterParams, PositionController) {
        let params = QuadcopterParams::default_450mm();
        let ctrl = PositionController::new(&params);
        (params, ctrl)
    }

    #[test]
    fn hover_at_target_commands_weight() {
        let (params, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_position(&state, Vec3::new(0.0, 0.0, 10.0), 0.0, 0.025);
        let weight = params.total_weight().weight_newtons();
        assert!((cmd.thrust_newtons - weight).abs() / weight < 0.05);
        assert!(cmd.attitude.angle_to(Quat::IDENTITY) < 0.01);
    }

    #[test]
    fn below_target_climbs() {
        let (params, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(5.0);
        let cmd = ctrl.update_position(&state, Vec3::new(0.0, 0.0, 10.0), 0.0, 0.025);
        assert!(cmd.thrust_newtons > params.total_weight().weight_newtons());
    }

    #[test]
    fn forward_target_pitches_forward() {
        let (_, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_position(&state, Vec3::new(20.0, 0.0, 10.0), 0.0, 0.025);
        let (_, pitch, _) = cmd.attitude.to_euler();
        assert!(pitch > 0.05, "pitch {pitch}");
    }

    #[test]
    fn right_target_rolls_negative() {
        // +Y target needs thrust tilted toward +Y, which for our Euler
        // convention is negative roll.
        let (_, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_position(&state, Vec3::new(0.0, 20.0, 10.0), 0.0, 0.025);
        let (roll, _, _) = cmd.attitude.to_euler();
        assert!(roll < -0.05, "roll {roll}");
    }

    #[test]
    fn tilt_is_capped_by_twr() {
        let (params, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_position(&state, Vec3::new(1e5, 0.0, 10.0), 0.0, 0.025);
        let (_, pitch, _) = cmd.attitude.to_euler();
        assert!(pitch <= ctrl.max_tilt + 1e-9);
        // The cap itself respects cos(tilt) ≥ 1/TWR.
        assert!(ctrl.max_tilt.cos() >= 1.0 / params.thrust_to_weight() - 1e-9);
    }

    #[test]
    fn thrust_never_exceeds_capability() {
        let (params, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(0.0);
        let cmd = ctrl.update_position(&state, Vec3::new(0.0, 0.0, 1e4), 0.0, 0.025);
        assert!(cmd.thrust_newtons <= params.max_total_thrust_newtons() + 1e-9);
    }

    #[test]
    fn yaw_passes_through() {
        let (_, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_position(&state, Vec3::new(0.0, 0.0, 10.0), 1.2, 0.025);
        let (_, _, yaw) = cmd.attitude.to_euler();
        assert!((yaw - 1.2).abs() < 1e-9);
    }

    #[test]
    fn velocity_mode_tracks_direction() {
        let (_, mut ctrl) = controller();
        let state = RigidBodyState::at_altitude(10.0);
        let cmd = ctrl.update_velocity(&state, Vec3::new(3.0, 0.0, 0.0), 0.0, 0.025);
        let (_, pitch, _) = cmd.attitude.to_euler();
        assert!(pitch > 0.0);
    }
}
