//! The PID primitive used at every level of the hierarchical cascade.
//!
//! The paper (§2.1.3-C) notes the inner loop "extensively uses
//! high-performance hierarchical PID controllers, whose filter response
//! and quality of the estimated state variables defines the drone
//! behavior". This implementation has the three features real flight
//! stacks rely on: integral anti-windup clamping, a first-order low-pass
//! on the derivative term, and symmetric output saturation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-axis PID controller.
///
/// # Example
///
/// ```
/// use drone_control::Pid;
/// let mut pid = Pid::new(2.0, 0.5, 0.1);
/// let u = pid.step(1.0, 0.01); // error of 1.0 at dt = 10 ms
/// assert!(u > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    integral: f64,
    integral_limit: f64,
    output_limit: f64,
    derivative_tau: f64,
    filtered_derivative: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a PID with unbounded output and a sensible anti-windup
    /// limit scaled from the gains.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Pid {
        assert!(
            kp >= 0.0 && ki >= 0.0 && kd >= 0.0,
            "gains must be non-negative"
        );
        Pid {
            kp,
            ki,
            kd,
            integral: 0.0,
            integral_limit: f64::INFINITY,
            output_limit: f64::INFINITY,
            derivative_tau: 0.0,
            filtered_derivative: 0.0,
            prev_error: None,
        }
    }

    /// Caps `|integral * ki|` contribution at `limit` (anti-windup).
    pub fn with_integral_limit(mut self, limit: f64) -> Pid {
        assert!(limit >= 0.0, "integral limit must be non-negative");
        self.integral_limit = limit;
        self
    }

    /// Caps the controller output symmetrically at ±`limit`.
    pub fn with_output_limit(mut self, limit: f64) -> Pid {
        assert!(limit >= 0.0, "output limit must be non-negative");
        self.output_limit = limit;
        self
    }

    /// Applies a first-order low-pass (time constant `tau` seconds) to the
    /// derivative term, taming sensor noise amplification.
    pub fn with_derivative_filter(mut self, tau: f64) -> Pid {
        assert!(tau >= 0.0, "filter time constant must be non-negative");
        self.derivative_tau = tau;
        self
    }

    /// Advances the controller with the current `error` over `dt` seconds
    /// and returns the control output.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive, got {dt}");
        // Integral with anti-windup clamp (in output units).
        self.integral += error * dt;
        if self.ki > 0.0 {
            let max_integral = self.integral_limit / self.ki;
            self.integral = self.integral.clamp(-max_integral, max_integral);
        }
        // Derivative on error, low-pass filtered.
        let raw_d = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        self.filtered_derivative = if self.derivative_tau > 0.0 {
            let alpha = dt / (self.derivative_tau + dt);
            self.filtered_derivative + alpha * (raw_d - self.filtered_derivative)
        } else {
            raw_d
        };
        let out = self.kp * error + self.ki * self.integral + self.kd * self.filtered_derivative;
        out.clamp(-self.output_limit, self.output_limit)
    }

    /// Clears integral and derivative history (e.g. on mode change).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.filtered_derivative = 0.0;
        self.prev_error = None;
    }

    /// Current integral accumulator (for telemetry/testing).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PID(kp={}, ki={}, kd={})", self.kp, self.ki, self.kd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only() {
        let mut pid = Pid::new(2.0, 0.0, 0.0);
        assert!((pid.step(3.0, 0.01) - 6.0).abs() < 1e-12);
        assert!((pid.step(-1.0, 0.01) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(0.0, 1.0, 0.0);
        let mut out = 0.0;
        for _ in 0..100 {
            out = pid.step(1.0, 0.01);
        }
        // ∫1 dt over 1 s = 1.
        assert!((out - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integral_clamps_at_limit() {
        let mut pid = Pid::new(0.0, 1.0, 0.0).with_integral_limit(0.5);
        let mut out = 0.0;
        for _ in 0..10_000 {
            out = pid.step(1.0, 0.01);
        }
        assert!((out - 0.5).abs() < 1e-9, "windup not clamped: {out}");
    }

    #[test]
    fn derivative_responds_to_change() {
        let mut pid = Pid::new(0.0, 0.0, 1.0);
        pid.step(0.0, 0.01);
        let out = pid.step(0.1, 0.01);
        assert!((out - 10.0).abs() < 1e-9, "d(0.1)/0.01 = 10: {out}");
    }

    #[test]
    fn first_step_has_no_derivative_kick() {
        let mut pid = Pid::new(0.0, 0.0, 5.0);
        assert_eq!(pid.step(100.0, 0.01), 0.0);
    }

    #[test]
    fn derivative_filter_attenuates_noise() {
        let mut raw = Pid::new(0.0, 0.0, 1.0);
        let mut filt = Pid::new(0.0, 0.0, 1.0).with_derivative_filter(0.1);
        let mut raw_max: f64 = 0.0;
        let mut filt_max: f64 = 0.0;
        for i in 0..100 {
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            raw_max = raw_max.max(raw.step(noise, 0.001).abs());
            filt_max = filt_max.max(filt.step(noise, 0.001).abs());
        }
        assert!(
            filt_max < raw_max / 3.0,
            "filtered {filt_max} vs raw {raw_max}"
        );
    }

    #[test]
    fn output_limit_saturates() {
        let mut pid = Pid::new(100.0, 0.0, 0.0).with_output_limit(1.0);
        assert_eq!(pid.step(10.0, 0.01), 1.0);
        assert_eq!(pid.step(-10.0, 0.01), -1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(1.0, 1.0, 1.0);
        for _ in 0..100 {
            pid.step(1.0, 0.01);
        }
        assert!(pid.integral() > 0.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // First post-reset step has no derivative kick.
        assert!((pid.step(1.0, 0.01) - (1.0 + 0.01)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gains must be non-negative")]
    fn negative_gain_panics() {
        let _ = Pid::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        Pid::new(1.0, 0.0, 0.0).step(1.0, 0.0);
    }
}
