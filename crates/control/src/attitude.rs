//! Mid-level attitude and low-level body-rate control (Table 2b's 200 Hz
//! and 1 kHz layers).
//!
//! Structure: a proportional attitude loop converts quaternion attitude
//! error into a body-rate setpoint; a PID rate loop converts rate error
//! into torque, normalized by the body inertia so one set of gains works
//! across airframes.

use crate::pid::Pid;
use drone_math::{Quat, Vec3};
use drone_sim::params::QuadcopterParams;
use serde::{Deserialize, Serialize};

/// Attitude → body-rate → torque controller.
///
/// # Example
///
/// ```
/// use drone_control::AttitudeController;
/// use drone_sim::QuadcopterParams;
/// use drone_math::{Quat, Vec3};
/// let params = QuadcopterParams::default_450mm();
/// let mut ctrl = AttitudeController::new(&params);
/// // Roll error demands positive roll torque.
/// let target = Quat::from_euler(0.2, 0.0, 0.0);
/// let torque = ctrl.update(Quat::IDENTITY, Vec3::ZERO, target, 0.005);
/// assert!(torque.x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttitudeController {
    /// Attitude-error → rate-setpoint proportional gain (1/s).
    pub attitude_gain: Vec3,
    /// Maximum commanded body rate, rad/s.
    pub max_rate: f64,
    rate_pid: [Pid; 3],
    inertia: Vec3,
}

impl AttitudeController {
    /// Creates a controller tuned for the given airframe.
    pub fn new(params: &QuadcopterParams) -> AttitudeController {
        let inertia = params.inertia_diagonal();
        let rate_pid = [
            Pid::new(18.0, 6.0, 0.35)
                .with_integral_limit(4.0)
                .with_derivative_filter(0.004),
            Pid::new(18.0, 6.0, 0.35)
                .with_integral_limit(4.0)
                .with_derivative_filter(0.004),
            Pid::new(10.0, 3.0, 0.0).with_integral_limit(2.0),
        ];
        AttitudeController {
            attitude_gain: Vec3::new(8.0, 8.0, 4.0),
            max_rate: 6.0,
            rate_pid,
            inertia,
        }
    }

    /// Computes the body-frame torque demand (N·m).
    ///
    /// * `attitude` — current body→world attitude estimate.
    /// * `body_rate` — current body angular velocity (rad/s).
    /// * `target` — attitude setpoint.
    /// * `dt` — controller period (s).
    pub fn update(&mut self, attitude: Quat, body_rate: Vec3, target: Quat, dt: f64) -> Vec3 {
        let rate_sp = self.rate_setpoint(attitude, target);
        self.update_rate_only(body_rate, rate_sp, dt)
    }

    /// Attitude-error → body-rate setpoint (the 200 Hz mid level).
    pub fn rate_setpoint(&self, attitude: Quat, target: Quat) -> Vec3 {
        // Error quaternion in the body frame; its vector part (scaled by
        // the sign of w for shortest path) is the small-angle rotation
        // error.
        let err = attitude.conjugate() * target;
        let sign = if err.w >= 0.0 { 1.0 } else { -1.0 };
        let axis_err = Vec3::new(err.x, err.y, err.z) * (2.0 * sign);
        Vec3::new(
            self.attitude_gain.x * axis_err.x,
            self.attitude_gain.y * axis_err.y,
            self.attitude_gain.z * axis_err.z,
        )
        .clamp(-self.max_rate, self.max_rate)
    }

    /// Rate-error → torque (the 1 kHz low level). Exposed separately so
    /// the cascade can run it faster than the attitude level.
    pub fn update_rate_only(&mut self, body_rate: Vec3, rate_setpoint: Vec3, dt: f64) -> Vec3 {
        let err = rate_setpoint - body_rate;
        // Normalize by inertia so the PID output is angular acceleration.
        Vec3::new(
            self.inertia.x * self.rate_pid[0].step(err.x, dt),
            self.inertia.y * self.rate_pid[1].step(err.y, dt),
            self.inertia.z * self.rate_pid[2].step(err.z, dt),
        )
    }

    /// Clears controller history (mode changes, arming).
    pub fn reset(&mut self) {
        for pid in &mut self.rate_pid {
            pid.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_sim::Quadcopter;

    /// Closed-loop helper: fly attitude control only (thrust pinned at
    /// hover) and return the final state.
    fn fly_attitude(target: Quat, seconds: f64) -> drone_sim::RigidBodyState {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
        let mut ctrl = AttitudeController::new(&params);
        let mixer = crate::mixer::Mixer::new(&params);
        let hover_n = params.total_weight().weight_newtons();
        let steps = (seconds / 1e-3) as usize;
        for _ in 0..steps {
            let s = *quad.state();
            let torque = ctrl.update(s.attitude, s.angular_velocity, target, 1e-3);
            let throttle = mixer.mix(hover_n, torque);
            quad.step(throttle, Vec3::ZERO, 1e-3);
        }
        *quad.state()
    }

    #[test]
    fn reaches_roll_target() {
        let target = Quat::from_euler(0.3, 0.0, 0.0);
        let s = fly_attitude(target, 1.0);
        assert!(
            s.attitude.angle_to(target) < 0.05,
            "attitude error {}",
            s.attitude.angle_to(target)
        );
    }

    #[test]
    fn reaches_combined_target() {
        let target = Quat::from_euler(-0.2, 0.15, 0.8);
        let s = fly_attitude(target, 2.0);
        assert!(
            s.attitude.angle_to(target) < 0.08,
            "attitude error {}",
            s.attitude.angle_to(target)
        );
    }

    #[test]
    fn attitude_response_time_matches_table2() {
        // Table 2b: attitude response time ≈ 100 ms. Measure time to
        // reach 90 % of a 0.2 rad roll step.
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
        let mut ctrl = AttitudeController::new(&params);
        let mixer = crate::mixer::Mixer::new(&params);
        let hover_n = params.total_weight().weight_newtons();
        let target = Quat::from_euler(0.2, 0.0, 0.0);
        let mut t_reach = None;
        for i in 0..2000 {
            let s = *quad.state();
            let torque = ctrl.update(s.attitude, s.angular_velocity, target, 1e-3);
            quad.step(mixer.mix(hover_n, torque), Vec3::ZERO, 1e-3);
            let (roll, _, _) = quad.state().euler();
            if roll > 0.18 && t_reach.is_none() {
                t_reach = Some(i as f64 * 1e-3);
            }
        }
        let t = t_reach.expect("never reached the roll target");
        assert!(
            (0.02..0.5).contains(&t),
            "90% rise time {t:.3}s outside the Table 2 order of magnitude"
        );
    }

    #[test]
    fn rate_setpoint_clamped() {
        let params = QuadcopterParams::default_450mm();
        let ctrl = AttitudeController::new(&params);
        let target = Quat::from_euler(0.0, 0.0, 3.0); // huge yaw error
        let sp = ctrl.rate_setpoint(Quat::IDENTITY, target);
        assert!(sp.max_abs() <= ctrl.max_rate + 1e-12);
    }

    #[test]
    fn shortest_path_for_large_errors() {
        let params = QuadcopterParams::default_450mm();
        let ctrl = AttitudeController::new(&params);
        // 350° yaw should rotate −10°, not +350°.
        let target = Quat::from_euler(0.0, 0.0, drone_math::angles::deg_to_rad(350.0));
        let sp = ctrl.rate_setpoint(Quat::IDENTITY, target);
        assert!(sp.z < 0.0, "took the long way: {sp}");
    }

    #[test]
    fn zero_error_zero_rate_setpoint() {
        let params = QuadcopterParams::default_450mm();
        let ctrl = AttitudeController::new(&params);
        let q = Quat::from_euler(0.1, -0.2, 0.7);
        assert!(ctrl.rate_setpoint(q, q).norm() < 1e-9);
    }

    #[test]
    fn reset_clears_integrators() {
        let params = QuadcopterParams::default_450mm();
        let mut ctrl = AttitudeController::new(&params);
        for _ in 0..100 {
            ctrl.update_rate_only(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1e-3);
        }
        ctrl.reset();
        // After reset with zero error the output has no integral memory.
        let out = ctrl.update_rate_only(Vec3::ZERO, Vec3::ZERO, 1e-3);
        assert!(out.norm() < 1e-9, "residual output {out}");
    }
}
