//! Property-based tests for the numerical kernels.

use drone_math::{angles, Mat3, Matrix, Quat, Vec3};
use proptest::prelude::*;

fn finite_f64(range: f64) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL
        .prop_map(move |v| v % range)
        .prop_filter("finite", |v| v.is_finite())
}

fn vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (finite_f64(range), finite_f64(range), finite_f64(range))
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_quat() -> impl Strategy<Value = Quat> {
    (finite_f64(3.0), finite_f64(1.4), finite_f64(3.0))
        .prop_map(|(r, p, y)| Quat::from_euler(r, p, y))
}

proptest! {
    #[test]
    fn cross_product_anticommutes(a in vec3(1e3), b in vec3(1e3)) {
        let lhs = a.cross(b);
        let rhs = -(b.cross(a));
        prop_assert!((lhs - rhs).norm() < 1e-6 * (1.0 + lhs.norm()));
    }

    #[test]
    fn dot_cauchy_schwarz(a in vec3(1e3), b in vec3(1e3)) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-6);
    }

    #[test]
    fn triangle_inequality(a in vec3(1e3), b in vec3(1e3)) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn rotation_preserves_norm(q in unit_quat(), v in vec3(1e3)) {
        let r = q.rotate(v);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-7 * (1.0 + v.norm()));
    }

    #[test]
    fn rotation_preserves_dot(q in unit_quat(), a in vec3(100.0), b in vec3(100.0)) {
        let da = q.rotate(a).dot(q.rotate(b));
        let db = a.dot(b);
        prop_assert!((da - db).abs() < 1e-6 * (1.0 + db.abs()));
    }

    #[test]
    fn quat_inverse_roundtrip(q in unit_quat(), v in vec3(100.0)) {
        let back = q.rotate_inverse(q.rotate(v));
        prop_assert!((back - v).norm() < 1e-9 * (1.0 + v.norm()));
    }

    #[test]
    fn rotation_matrix_det_is_one(q in unit_quat()) {
        prop_assert!((q.to_rotation_matrix().det() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mat3_inverse_property(v0 in vec3(10.0), v1 in vec3(10.0), v2 in vec3(10.0)) {
        let m = Mat3::from_rows(v0, v1, v2);
        // Only well-conditioned matrices.
        prop_assume!(m.det().abs() > 1e-3);
        let inv = m.inverse().unwrap();
        let prod = m * inv;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod.m[r][c] - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn wrap_pi_is_idempotent_and_bounded(a in finite_f64(1e6)) {
        let w = angles::wrap_pi(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-9 && w <= std::f64::consts::PI + 1e-9);
        prop_assert!((angles::wrap_pi(w) - w).abs() < 1e-9);
        // Same point on the circle.
        prop_assert!(((a - w) / (2.0 * std::f64::consts::PI)).round() * 2.0 * std::f64::consts::PI - (a - w) < 1e-6);
    }

    #[test]
    fn spd_solve_matches_general_solve(d0 in 0.1f64..10.0, d1 in 0.1f64..10.0, d2 in 0.1f64..10.0,
                                       o in -0.05f64..0.05, b0 in -10.0f64..10.0, b1 in -10.0f64..10.0, b2 in -10.0f64..10.0) {
        // Diagonally dominant symmetric matrix is SPD.
        let a = Matrix::from_rows(&[
            &[d0 + 1.0, o, o],
            &[o, d1 + 1.0, o],
            &[o, o, d2 + 1.0],
        ]);
        let b = Matrix::column(&[b0, b1, b2]);
        let x1 = a.solve_spd(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for i in 0..3 {
            prop_assert!((x1[(i, 0)] - x2[(i, 0)]).abs() < 1e-8);
        }
    }

    #[test]
    fn transpose_of_product(n in 1usize..4, m in 1usize..4, k in 1usize..4, seed in 0u64..1000) {
        let mut rng = drone_math::Pcg32::seed_from(seed);
        let mut a = Matrix::zeros(n, m);
        let mut b = Matrix::zeros(m, k);
        for r in 0..n { for c in 0..m { a[(r, c)] = rng.uniform(-5.0, 5.0); } }
        for r in 0..m { for c in 0..k { b[(r, c)] = rng.uniform(-5.0, 5.0); } }
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for r in 0..k { for c in 0..n {
            prop_assert!((lhs[(r, c)] - rhs[(r, c)]).abs() < 1e-9);
        } }
    }
}
