//! Q16.16 fixed-point arithmetic — the number format of the paper's FPGA
//! bundle-adjustment pipeline.
//!
//! The paper's §5 FPGA design implements the SLAM bundle adjustments as
//! "simple modules of dense fixed-size matrix algebra in a pipeline";
//! FPGA matrix engines typically run fixed-point. This module provides
//! the format so the workspace can quantify the accuracy cost of that
//! choice (a DESIGN.md ablation): dot products and small matrix algebra
//! in Q16.16 versus `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Fractional bits in the representation.
pub const FRACTIONAL_BITS: u32 = 16;
const ONE_RAW: i64 = 1 << FRACTIONAL_BITS;

/// A Q16.16 fixed-point number (32.16 internally to keep headroom for
/// accumulation, saturating at the Q16.16 envelope on conversion).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q16(i64);

impl Q16 {
    /// Zero.
    pub const ZERO: Q16 = Q16(0);
    /// One.
    pub const ONE: Q16 = Q16(ONE_RAW);
    /// Smallest positive step (2⁻¹⁶ ≈ 1.5e-5).
    pub const EPSILON: Q16 = Q16(1);
    /// Largest representable magnitude in strict Q16.16 (≈32768).
    pub const MAX: Q16 = Q16((1 << 31) - 1);

    /// Converts from `f64`, rounding to the nearest representable value
    /// and saturating at the Q16.16 range.
    pub fn from_f64(v: f64) -> Q16 {
        let scaled = (v * ONE_RAW as f64).round();
        let max = ((1i64 << 31) - 1) as f64;
        Q16(scaled.clamp(-max, max) as i64)
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Raw representation (for hardware-style bit manipulation).
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Absolute value.
    pub fn abs(self) -> Q16 {
        Q16(self.0.abs())
    }

    /// Fixed-point square root via the integer Newton iteration the
    /// FPGA pipeline would use.
    ///
    /// # Panics
    ///
    /// Panics on negative input.
    pub fn sqrt(self) -> Q16 {
        assert!(self.0 >= 0, "sqrt of negative fixed-point value");
        if self.0 == 0 {
            return Q16::ZERO;
        }
        // sqrt(x) in Qm.16: sqrt(raw << 16).
        let target = (self.0 as i128) << FRACTIONAL_BITS;
        let mut guess = target;
        let mut prev = 0i128;
        while guess != prev && guess > 0 {
            prev = guess;
            guess = (guess + target / guess) / 2;
        }
        Q16(guess as i64)
    }

    /// The quantization error of representing `v`.
    pub fn quantization_error(v: f64) -> f64 {
        (Q16::from_f64(v).to_f64() - v).abs()
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl Add for Q16 {
    type Output = Q16;
    fn add(self, rhs: Q16) -> Q16 {
        Q16(self.0 + rhs.0)
    }
}

impl AddAssign for Q16 {
    fn add_assign(&mut self, rhs: Q16) {
        self.0 += rhs.0;
    }
}

impl Sub for Q16 {
    type Output = Q16;
    fn sub(self, rhs: Q16) -> Q16 {
        Q16(self.0 - rhs.0)
    }
}

impl Neg for Q16 {
    type Output = Q16;
    fn neg(self) -> Q16 {
        Q16(-self.0)
    }
}

impl Mul for Q16 {
    type Output = Q16;
    fn mul(self, rhs: Q16) -> Q16 {
        Q16(((self.0 as i128 * rhs.0 as i128) >> FRACTIONAL_BITS) as i64)
    }
}

impl Div for Q16 {
    type Output = Q16;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Q16) -> Q16 {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        Q16((((self.0 as i128) << FRACTIONAL_BITS) / rhs.0 as i128) as i64)
    }
}

/// Fixed-point dot product (the FPGA pipeline's core primitive).
pub fn dot_q16(a: &[Q16], b: &[Q16]) -> Q16 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = Q16::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Solves a small SPD system `A x = b` entirely in Q16.16 (Cholesky),
/// mirroring the hardware datapath. Returns `None` when a pivot
/// underflows the format — exactly the failure mode fixed-point
/// hardware must guard against.
#[allow(clippy::needless_range_loop)] // index pairs mirror the HW datapath
pub fn solve_spd_q16(a: &[Vec<Q16>], b: &[Q16]) -> Option<Vec<Q16>> {
    let n = b.len();
    assert!(
        a.len() == n && a.iter().all(|row| row.len() == n),
        "shape mismatch"
    );
    let mut l = vec![vec![Q16::ZERO; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for k in 0..j {
                let prod = l[i][k] * l[j][k];
                sum = sum - prod;
            }
            if i == j {
                if sum.raw() <= 0 {
                    return None;
                }
                l[i][i] = sum.sqrt();
                if l[i][i].raw() == 0 {
                    return None;
                }
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    // Forward/back substitution.
    let mut y = vec![Q16::ZERO; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum = sum - l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    let mut x = vec![Q16::ZERO; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum = sum - l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_precision() {
        for v in [0.0, 1.0, -1.0, 2.84217, -123.456, 0.00002] {
            let q = Q16::from_f64(v);
            assert!((q.to_f64() - v).abs() <= 1.0 / 65536.0, "{v}");
        }
    }

    #[test]
    fn arithmetic_matches_float_within_quantization() {
        let a = Q16::from_f64(3.25);
        let b = Q16::from_f64(-1.5);
        assert!(((a + b).to_f64() - 1.75).abs() < 1e-4);
        assert!(((a - b).to_f64() - 4.75).abs() < 1e-4);
        assert!(((a * b).to_f64() + 4.875).abs() < 1e-4);
        assert!(((a / b).to_f64() + 2.1666).abs() < 1e-3);
        assert_eq!((-a).to_f64(), -3.25);
    }

    #[test]
    fn saturates_at_range() {
        let big = Q16::from_f64(1e9);
        assert!(big.to_f64() < 33000.0);
        let small = Q16::from_f64(-1e9);
        assert!(small.to_f64() > -33000.0);
    }

    #[test]
    fn sqrt_accuracy() {
        for v in [0.25, 1.0, 2.0, 100.0, 12345.0] {
            let s = Q16::from_f64(v).sqrt().to_f64();
            assert!(
                (s - v.sqrt()).abs() < 2e-2 * (1.0 + v.sqrt()),
                "sqrt({v}) = {s}"
            );
        }
        assert_eq!(Q16::ZERO.sqrt(), Q16::ZERO);
    }

    #[test]
    #[should_panic(expected = "sqrt of negative")]
    fn sqrt_negative_panics() {
        let _ = Q16::from_f64(-1.0).sqrt();
    }

    #[test]
    fn dot_product_matches_float() {
        let a_f = [1.5, -2.25, 0.125, 3.0];
        let b_f = [0.5, 1.0, -4.0, 0.25];
        let a: Vec<Q16> = a_f.iter().map(|&v| Q16::from_f64(v)).collect();
        let b: Vec<Q16> = b_f.iter().map(|&v| Q16::from_f64(v)).collect();
        let expect: f64 = a_f.iter().zip(&b_f).map(|(x, y)| x * y).sum();
        assert!((dot_q16(&a, &b).to_f64() - expect).abs() < 1e-3);
    }

    #[test]
    fn solves_small_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11].
        let q = Q16::from_f64;
        let a = vec![vec![q(4.0), q(1.0)], vec![q(1.0), q(3.0)]];
        let b = vec![q(1.0), q(2.0)];
        let x = solve_spd_q16(&a, &b).expect("SPD");
        assert!((x[0].to_f64() - 1.0 / 11.0).abs() < 1e-3, "{}", x[0]);
        assert!((x[1].to_f64() - 7.0 / 11.0).abs() < 1e-3, "{}", x[1]);
    }

    #[test]
    fn degenerate_pivot_returns_none() {
        let q = Q16::from_f64;
        // Singular matrix.
        let a = vec![vec![q(1.0), q(1.0)], vec![q(1.0), q(1.0)]];
        assert!(solve_spd_q16(&a, &[q(1.0), q(1.0)]).is_none());
    }

    #[test]
    fn quantization_error_bounded() {
        assert!(Q16::quantization_error(std::f64::consts::PI) <= 1.0 / 65536.0);
        assert_eq!(Q16::quantization_error(0.5), 0.0);
    }
}
