//! 3-vectors and 3×3 matrices used by the rigid-body and estimation layers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-dimensional vector of `f64` components.
///
/// Used for positions (m), velocities (m/s), angular rates (rad/s), forces
/// (N) and torques (N·m) throughout the workspace.
///
/// # Example
///
/// ```
/// use drone_math::Vec3;
/// let thrust = Vec3::new(0.0, 0.0, 14.7);
/// assert!((thrust.norm() - 14.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (forward / north, depending on frame).
    pub x: f64,
    /// Y component (right / east).
    pub y: f64,
    /// Z component (down or up; the dynamics crate documents its frame).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns a unit vector in the same direction, or `None` when the norm
    /// is too small to normalize reliably.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest absolute component.
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Clamps each component into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: f64, hi: f64) -> Vec3 {
        assert!(lo <= hi, "invalid clamp range: {lo} > {hi}");
        Vec3::new(
            self.x.clamp(lo, hi),
            self.y.clamp(lo, hi),
            self.z.clamp(lo, hi),
        )
    }

    /// `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

/// A 3×3 matrix stored row-major; used for rotation matrices, inertia
/// tensors and small EKF blocks.
///
/// # Example
///
/// ```
/// use drone_math::{Mat3, Vec3};
/// let r = Mat3::identity();
/// assert_eq!(r * Vec3::X, Vec3::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub fn zero() -> Mat3 {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// The identity matrix.
    pub fn identity() -> Mat3 {
        Mat3::from_diagonal(Vec3::splat(1.0))
    }

    /// Builds a matrix from row-major entries.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Builds a diagonal matrix.
    pub fn from_diagonal(d: Vec3) -> Mat3 {
        let mut m = Mat3::zero();
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// Skew-symmetric cross-product matrix: `skew(a) * b == a.cross(b)`.
    pub fn skew(a: Vec3) -> Mat3 {
        Mat3 {
            m: [[0.0, -a.z, a.y], [a.z, 0.0, -a.x], [-a.y, a.x, 0.0]],
        }
    }

    /// Row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 3`.
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::from_array(self.m[r])
    }

    /// Column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 3`.
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(self.col(0), self.col(1), self.col(2))
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        self.row(0).dot(self.row(1).cross(self.row(2)))
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Matrix inverse, or `None` when the determinant is (near) zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.det();
        if det.abs() < 1e-14 {
            return None;
        }
        let r0 = self.row(0);
        let r1 = self.row(1);
        let r2 = self.row(2);
        // Rows of the inverse are the cross products of the original rows
        // (adjugate transpose), scaled by 1/det.
        let inv = Mat3::from_rows(r1.cross(r2), r2.cross(r0), r0.cross(r1)).transpose();
        Some(inv * (1.0 / det))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.m.iter().flatten().all(|v| v.is_finite())
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..3 {
            writeln!(
                f,
                "[{:.6} {:.6} {:.6}]",
                self.m[r][0], self.m[r][1], self.m[r][2]
            )?;
        }
        Ok(())
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.row(r).dot(rhs.col(c));
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] += rhs.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] -= rhs.m[r][c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!((a.dot(b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_abs() {
        let v = Vec3::new(-5.0, 0.25, 9.0).clamp(-1.0, 1.0);
        assert_eq!(v, Vec3::new(-1.0, 0.25, 1.0));
        assert_eq!(Vec3::new(-2.0, 3.0, -4.0).abs(), Vec3::new(2.0, 3.0, 4.0));
        assert!((Vec3::new(-2.0, 3.0, -4.0).max_abs() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_invalid_range_panics() {
        let _ = Vec3::ZERO.clamp(1.0, -1.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(3.0, 5.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 3.0, 0.0));
    }

    #[test]
    fn index_roundtrip() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        v[2] = 1.5;
        assert_eq!(v.z, 1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_of_vectors() {
        let s: Vec3 = [Vec3::X, Vec3::Y, Vec3::Z, Vec3::X].into_iter().sum();
        assert_eq!(s, Vec3::new(2.0, 1.0, 1.0));
    }

    #[test]
    fn mat3_identity_mul() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_eq!(Mat3::identity() * v, v);
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 4.0),
            Vec3::new(5.0, 6.0, 0.0),
        );
        assert_eq!(Mat3::identity() * a, a);
        assert_eq!(a * Mat3::identity(), a);
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 4.0),
            Vec3::new(5.0, 6.0, 0.0),
        );
        let inv = a.inverse().expect("invertible");
        let prod = a * inv;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (prod.m[r][c] - expect).abs() < 1e-10,
                    "at ({r},{c}): {prod}"
                );
            }
        }
    }

    #[test]
    fn mat3_singular_inverse_is_none() {
        let a = Mat3::from_rows(Vec3::X, Vec3::X, Vec3::Z);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn skew_matches_cross() {
        let a = Vec3::new(0.3, -0.7, 1.1);
        let b = Vec3::new(-2.0, 0.4, 0.9);
        let via_mat = Mat3::skew(a) * b;
        assert!((via_mat - a.cross(b)).norm() < 1e-12);
    }

    #[test]
    fn transpose_and_trace() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(a.transpose().transpose(), a);
        assert!((a.trace() - 15.0).abs() < 1e-12);
        assert_eq!(a.transpose().col(0), a.row(0));
    }

    #[test]
    fn det_of_diagonal() {
        let d = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!((d.det() - 24.0).abs() < 1e-12);
    }
}
