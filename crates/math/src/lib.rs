//! Small, dependency-free numerical kernels for the `drone-dse` workspace.
//!
//! The workspace deliberately avoids heavyweight linear-algebra crates: the
//! paper's models only need 3-vectors, quaternions, small dense matrices, a
//! Cholesky solver, Levenberg–Marquardt, and ordinary least squares. All of
//! those live here, fully tested, so the higher layers (dynamics, EKF,
//! bundle adjustment, regression fitting) share one numerical vocabulary.
//!
//! # Example
//!
//! ```
//! use drone_math::{Vec3, Quat};
//!
//! let yaw_90 = Quat::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
//! let v = yaw_90.rotate(Vec3::X);
//! assert!((v - Vec3::Y).norm() < 1e-12);
//! ```

pub mod angles;
pub mod fixed;
pub mod hash;
pub mod matrix;
pub mod optimize;
pub mod pareto;
pub mod quat;
pub mod regression;
pub mod rng;
pub mod stats;
pub mod vec3;

pub use hash::{BuildFnv, Fnv64};
pub use matrix::Matrix;
pub use optimize::{LevenbergMarquardt, LmOutcome, LmReport};
pub use pareto::{dominates, Sense};
pub use quat::Quat;
pub use regression::{LinearFit, WeightedPoint};
pub use rng::Pcg32;
pub use vec3::{Mat3, Vec3};
