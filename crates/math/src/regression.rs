//! Ordinary and weighted linear least squares.
//!
//! The paper extracts linear weight/capacity/current relationships from
//! commercial component populations (Figures 7, 8a, 8b); this module is the
//! fitting machinery that re-derives those lines from the synthetic catalog.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `(x, y)` sample with an optional weight for weighted least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedPoint {
    /// Abscissa.
    pub x: f64,
    /// Ordinate.
    pub y: f64,
    /// Relative weight (1.0 = ordinary least squares).
    pub weight: f64,
}

impl WeightedPoint {
    /// An ordinary (unit-weight) sample.
    pub fn new(x: f64, y: f64) -> Self {
        WeightedPoint { x, y, weight: 1.0 }
    }
}

/// A fitted line `y = slope · x + intercept` with goodness-of-fit data.
///
/// # Example
///
/// ```
/// use drone_math::LinearFit;
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
/// let fit = LinearFit::fit(pts.iter().copied()).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r_squared > 0.999_999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]` (1 for a perfect fit).
    pub r_squared: f64,
    /// Number of samples used.
    pub n: usize,
}

impl LinearFit {
    /// Fits `y = a·x + b` by ordinary least squares.
    ///
    /// Returns `None` with fewer than 2 points or when all `x` coincide.
    pub fn fit(points: impl IntoIterator<Item = (f64, f64)>) -> Option<LinearFit> {
        Self::fit_weighted(points.into_iter().map(|(x, y)| WeightedPoint::new(x, y)))
    }

    /// Fits `y = a·x + b` by weighted least squares.
    ///
    /// Returns `None` with fewer than 2 points, non-positive total weight,
    /// or degenerate (constant-x) data.
    pub fn fit_weighted(points: impl IntoIterator<Item = WeightedPoint>) -> Option<LinearFit> {
        let pts: Vec<WeightedPoint> = points.into_iter().collect();
        if pts.len() < 2 {
            return None;
        }
        let wsum: f64 = pts.iter().map(|p| p.weight).sum();
        if wsum <= 0.0 {
            return None;
        }
        let mean_x = pts.iter().map(|p| p.weight * p.x).sum::<f64>() / wsum;
        let mean_y = pts.iter().map(|p| p.weight * p.y).sum::<f64>() / wsum;
        let sxx: f64 = pts.iter().map(|p| p.weight * (p.x - mean_x).powi(2)).sum();
        let sxy: f64 = pts
            .iter()
            .map(|p| p.weight * (p.x - mean_x) * (p.y - mean_y))
            .sum();
        if sxx < 1e-12 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R² from weighted residual / total sums of squares.
        let ss_tot: f64 = pts.iter().map(|p| p.weight * (p.y - mean_y).powi(2)).sum();
        let ss_res: f64 = pts
            .iter()
            .map(|p| p.weight * (p.y - slope * p.x - intercept).powi(2))
            .sum();
        let r_squared = if ss_tot < 1e-12 {
            1.0
        } else {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
            n: pts.len(),
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Inverse prediction: the `x` at which the line reaches `y`.
    ///
    /// Returns `None` when the slope is (near) zero.
    pub fn solve_for_x(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-12 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }

    /// Relative difference of slope and intercept against a reference fit,
    /// as `(slope_err, intercept_err)` fractions. Useful for validating the
    /// synthetic catalog against the paper's published coefficients.
    pub fn relative_error_to(&self, reference: &LinearFit) -> (f64, f64) {
        let se = if reference.slope.abs() < 1e-12 {
            (self.slope - reference.slope).abs()
        } else {
            ((self.slope - reference.slope) / reference.slope).abs()
        };
        let ie = if reference.intercept.abs() < 1e-12 {
            (self.intercept - reference.intercept).abs()
        } else {
            ((self.intercept - reference.intercept) / reference.intercept).abs()
        };
        (se, ie)
    }
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.4}x + {:.3} (R²={:.4}, n={})",
            self.slope, self.intercept, self.r_squared, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let fit = LinearFit::fit((0..20).map(|i| (i as f64, -0.5 * i as f64 + 4.0))).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert_eq!(fit.n, 20);
    }

    #[test]
    fn noisy_line_recovers_parameters() {
        // Deterministic noise from the in-tree PRNG.
        let mut rng = crate::rng::Pcg32::seed_from(99);
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = i as f64;
                (x, 0.116 * x + 159.117 + rng.normal_with(0.0, 1.0))
            })
            .collect();
        let fit = LinearFit::fit(pts).unwrap();
        assert!((fit.slope - 0.116).abs() < 0.005, "{fit}");
        assert!((fit.intercept - 159.117).abs() < 5.0, "{fit}");
        assert!(fit.r_squared > 0.95, "{fit}");
    }

    #[test]
    fn insufficient_points() {
        assert!(LinearFit::fit([(1.0, 2.0)]).is_none());
        assert!(LinearFit::fit([]).is_none());
    }

    #[test]
    fn degenerate_constant_x() {
        assert!(LinearFit::fit([(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]).is_none());
    }

    #[test]
    fn weighted_fit_favors_heavy_points() {
        // Two clusters; the heavily weighted one dominates the intercept.
        let pts = vec![
            WeightedPoint {
                x: 0.0,
                y: 0.0,
                weight: 100.0,
            },
            WeightedPoint {
                x: 1.0,
                y: 1.0,
                weight: 100.0,
            },
            WeightedPoint {
                x: 0.5,
                y: 10.0,
                weight: 0.001,
            },
        ];
        let fit = LinearFit::fit_weighted(pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.01);
        assert!(fit.intercept.abs() < 0.01);
    }

    #[test]
    fn zero_total_weight_is_none() {
        let pts = vec![
            WeightedPoint {
                x: 0.0,
                y: 0.0,
                weight: 0.0,
            },
            WeightedPoint {
                x: 1.0,
                y: 1.0,
                weight: 0.0,
            },
        ];
        assert!(LinearFit::fit_weighted(pts).is_none());
    }

    #[test]
    fn predict_and_inverse() {
        let fit = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert!((fit.predict(3.0) - 7.0).abs() < 1e-12);
        assert!((fit.solve_for_x(7.0).unwrap() - 3.0).abs() < 1e-12);
        let flat = LinearFit {
            slope: 0.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert!(flat.solve_for_x(5.0).is_none());
    }

    #[test]
    fn relative_error() {
        let a = LinearFit {
            slope: 1.1,
            intercept: 10.0,
            r_squared: 1.0,
            n: 2,
        };
        let b = LinearFit {
            slope: 1.0,
            intercept: 8.0,
            r_squared: 1.0,
            n: 2,
        };
        let (se, ie) = a.relative_error_to(&b);
        assert!((se - 0.1).abs() < 1e-12);
        assert!((ie - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let fit = LinearFit {
            slope: 0.074,
            intercept: 16.935,
            r_squared: 0.99,
            n: 42,
        };
        let s = fit.to_string();
        assert!(s.contains("0.074"), "{s}");
        assert!(s.contains("n=42"), "{s}");
    }
}
