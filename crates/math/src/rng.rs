//! A tiny deterministic PRNG (PCG-XSH-RR 32) used for reproducible
//! synthetic data: component catalogs, sensor noise, SLAM datasets and
//! micro-architecture workload traces.
//!
//! Keeping the generator in-tree means every crate produces bit-identical
//! experiment data from a seed, independent of external crate versions.

use serde::{Deserialize, Serialize};

/// Deterministic PCG-32 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use drone_math::Pcg32;
/// let mut a = Pcg32::seed_from(42);
/// let mut b = Pcg32::seed_from(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and stream-selector pair.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator on the default stream.
    pub fn seed_from(seed: u64) -> Pcg32 {
        Pcg32::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Next uniformly distributed 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits → [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid uniform range: {lo} > {hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using rejection sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "below(0) is meaningless");
        let zone = u32::MAX - (u32::MAX % n);
        loop {
            let v = self.next_u32();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Standard-normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from(7);
        let mut b = Pcg32::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from(8);
        assert_ne!(Pcg32::seed_from(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Pcg32::seed_from(1);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = Pcg32::seed_from(2);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = Pcg32::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let _ = Pcg32::seed_from(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seed_from(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed_from(6);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay in order"
        );
    }
}
