//! Word-wise FNV-1a hashing for hot-path hash maps.
//!
//! `std`'s default SipHash is keyed per process (useless for
//! reproducible shard placement) and pays ~1 ns per input *byte*; the
//! evaluation cache and the batched kernel's wheelbase table hash
//! small fixed-width keys millions of times per sweep. [`Fnv64`] folds
//! each integer write with one xor + one multiply — FNV-1a over words
//! instead of bytes — which is process-independent, deterministic, and
//! an order of magnitude cheaper on 48-byte keys.
//!
//! Not DoS-hardened: use only for keys derived from trusted numeric
//! data (design-point coordinates), never for attacker-controlled
//! strings.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a fold of a 64-bit word into the running state.
#[inline]
pub fn fnv1a_fold(state: u64, word: u64) -> u64 {
    (state ^ word).wrapping_mul(FNV_PRIME)
}

/// A [`Hasher`] that folds integer writes word-at-a-time. Byte-slice
/// writes fall back to 8-byte chunks (tail zero-padded), so derived
/// `Hash` impls over integers and byte arrays both stay cheap.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state = fnv1a_fold(self.state, u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.state = fnv1a_fold(self.state, v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.state = fnv1a_fold(self.state, v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.state = fnv1a_fold(self.state, v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.state = fnv1a_fold(self.state, v);
    }

    fn write_usize(&mut self, v: usize) {
        self.state = fnv1a_fold(self.state, v as u64);
    }

    fn write_i8(&mut self, v: i8) {
        self.write_u8(v as u8);
    }

    fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_isize(&mut self, v: isize) {
        self.write_usize(v as usize);
    }
}

/// `BuildHasher` for [`Fnv64`] — drop-in third type parameter for
/// `HashMap`/`HashSet` on trusted numeric keys.
pub type BuildFnv = BuildHasherDefault<Fnv64>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        BuildFnv::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        // Unlike SipHash there is no per-process key: the same input
        // always lands on the same shard.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1i64, 2i64, 3u8)), hash_of(&(1i64, 2i64, 3u8)),);
    }

    #[test]
    fn distinguishes_neighbouring_keys() {
        let mut seen = std::collections::HashSet::new();
        for wheelbase in 0..1000i64 {
            assert!(
                seen.insert(hash_of(&(wheelbase, 3u8))),
                "collision at {wheelbase}"
            );
        }
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: HashMap<u64, &str, BuildFnv> = HashMap::default();
        map.insert(f64::to_bits(450.0), "wheelbase");
        assert_eq!(map.get(&f64::to_bits(450.0)), Some(&"wheelbase"));
        assert_eq!(map.get(&f64::to_bits(450.1)), None);
    }

    #[test]
    fn byte_slices_fold_in_word_chunks() {
        // 9 bytes → two folds; must differ from the 8-byte prefix.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 8][..]));
    }
}
