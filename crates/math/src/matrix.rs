//! Dynamically sized dense matrices with the small set of operations the
//! EKF and bundle-adjustment layers need: products, transpose, Cholesky /
//! LDLT solves, and a Gauss–Jordan inverse for covariance maintenance.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use drone_math::Matrix;
/// let a = Matrix::identity(3);
/// let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
/// let c = b.matmul(&a);
/// assert_eq!(c[(0, 2)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in matrix literal");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A square diagonal matrix with the given diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// A column vector (n × 1) from a slice.
    pub fn column(v: &[f64]) -> Matrix {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying data slice, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Adds `v` to each diagonal entry (useful for LM damping).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&self, v: f64) -> Matrix {
        assert_eq!(
            self.rows, self.cols,
            "add_diagonal requires a square matrix"
        );
        let mut out = self.clone();
        for i in 0..self.rows {
            out[(i, i)] += v;
        }
        out
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of range"
        );
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// Extracts the `rows × cols` block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of range"
        );
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out[(r, c)] = self[(r0 + r, c0 + c)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`. Keeps covariance matrices
    /// symmetric in the presence of floating-point drift.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let m = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = m;
                self[(c, r)] = m;
            }
        }
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor, or `None` when the
    /// matrix is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// Returns `None` when the factorization fails.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree (`b` must be `n × 1`).
    pub fn solve_spd(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(b.rows, self.rows, "rhs has wrong length");
        assert_eq!(b.cols, 1, "rhs must be a column vector");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[(i, 0)];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Some(Matrix::column(&x))
    }

    /// Solves the general square system `A x = b` by Gaussian elimination
    /// with partial pivoting. Returns `None` for (near-)singular systems.
    ///
    /// # Panics
    ///
    /// Panics if `A` is not square or `b` has the wrong shape.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.rows, self.rows, "rhs has wrong length");
        let n = self.rows;
        let m = b.cols;
        let mut a = self.clone();
        let mut rhs = b.clone();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-13 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.data.swap(col * n + c, pivot * n + c);
                }
                for c in 0..m {
                    rhs.data.swap(col * m + c, pivot * m + c);
                }
            }
            let d = a[(col, col)];
            for r in (col + 1)..n {
                let f = a[(r, col)] / d;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= f * v;
                }
                for c in 0..m {
                    let v = rhs[(col, c)];
                    rhs[(r, c)] -= f * v;
                }
            }
        }
        // Back substitution.
        let mut x = Matrix::zeros(n, m);
        for r in (0..n).rev() {
            for c in 0..m {
                let mut sum = rhs[(r, c)];
                for k in (r + 1)..n {
                    sum -= a[(r, k)] * x[(k, c)];
                }
                x[(r, c)] = sum / a[(r, r)];
            }
        }
        Some(x)
    }

    /// Matrix inverse via [`Matrix::solve`] against the identity; `None`
    /// when singular.
    pub fn inverse(&self) -> Option<Matrix> {
        self.solve(&Matrix::identity(self.rows))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:9.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert!(
                    (a[(r, c)] - b[(r, c)]).abs() <= tol,
                    "mismatch at ({r},{c}): {} vs {}",
                    a[(r, c)],
                    b[(r, c)]
                );
            }
        }
    }

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_close(&a.matmul(&Matrix::identity(2)), &a, 1e-14);
        assert_close(&Matrix::identity(2).matmul(&a), &a, 1e-14);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        let expect = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_close(&a.transpose().transpose(), &a, 0.0);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn cholesky_of_spd() {
        // A = L0 L0ᵀ with a known L0.
        let l0 = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.5, 1.5, 0.0], &[-1.0, 0.25, 3.0]]);
        let a = l0.matmul(&l0.transpose());
        let l = a.cholesky().expect("SPD");
        assert_close(&l, &l0, 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_roundtrip() {
        let l0 = Matrix::from_rows(&[&[3.0, 0.0], &[1.0, 2.0]]);
        let a = l0.matmul(&l0.transpose());
        let x_true = Matrix::column(&[1.5, -2.0]);
        let b = a.matmul(&x_true);
        let x = a.solve_spd(&b).expect("solvable");
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn general_solve_roundtrip() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.5], &[3.0, 0.0, -2.0]]);
        let x_true = Matrix::column(&[0.5, -1.0, 2.5]);
        let b = a.matmul(&x_true);
        let x = a.solve(&b).expect("solvable");
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn solve_singular_is_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&Matrix::column(&[1.0, 2.0])).is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().expect("invertible");
        assert_close(&a.matmul(&inv), &Matrix::identity(2), 1e-12);
    }

    #[test]
    fn block_get_set() {
        let mut a = Matrix::zeros(4, 4);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.set_block(1, 2, &b);
        assert_close(&a.block(1, 2, 2, 2), &b, 0.0);
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a[(1, 2)], 1.0);
        assert_eq!(a[(2, 3)], 4.0);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn block_out_of_range_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.block(1, 1, 2, 2);
    }

    #[test]
    fn symmetrize_works() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0]]);
        assert_close(&(&a + &b), &Matrix::from_rows(&[&[1.5, 1.0]]), 1e-14);
        assert_close(&(&a - &b), &Matrix::from_rows(&[&[0.5, 3.0]]), 1e-14);
        assert_close(&a.scale(2.0), &Matrix::from_rows(&[&[2.0, 4.0]]), 1e-14);
    }

    #[test]
    fn add_diagonal_damps() {
        let a = Matrix::identity(3).add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
