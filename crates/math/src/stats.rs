//! Small descriptive-statistics helpers used by the benchmark harness and
//! catalog validation (means, geometric means, quantiles, variance).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Geometric mean; `None` when empty or any value is non-positive.
///
/// The paper reports SLAM speedups as GMean across EuRoC sequences.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Linear-interpolated quantile `q ∈ [0, 1]`; `None` when empty or `q` is
/// outside the unit interval.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Index of the largest element under [`f64::total_cmp`]; `None` for an
/// empty slice. Ties resolve to the earliest index, so callers that key
/// results by position stay deterministic.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

/// Index of the smallest element under [`f64::total_cmp`]; `None` for an
/// empty slice. Ties resolve to the earliest index.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .min_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ia.cmp(ib)))
        .map(|(i, _)| i)
}

/// Root mean square; `None` for an empty slice.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
        assert!(geometric_mean(&[]).is_none());
        assert!(quantile(&[], 0.5).is_none());
        assert!(rms(&[]).is_none());
    }

    #[test]
    fn gmean_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.16, 2.16]).unwrap() - 2.16).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, -1.0]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_none());
    }

    #[test]
    fn argmax_argmin_break_ties_at_first_index() {
        let xs = [1.0, 5.0, 5.0, -2.0, -2.0];
        assert_eq!(argmax(&xs), Some(1));
        assert_eq!(argmin(&xs), Some(3));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn rms_known() {
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
