//! Unit quaternions for attitude representation.
//!
//! The convention is Hamilton (w, x, y, z), active rotation: `q.rotate(v)`
//! rotates a vector from the body frame into the world frame when `q` is the
//! body-to-world attitude.

use crate::vec3::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// A (usually unit) quaternion `w + xi + yj + zk`.
///
/// # Example
///
/// ```
/// use drone_math::{Quat, Vec3};
/// let q = Quat::from_euler(0.0, 0.0, std::f64::consts::FRAC_PI_2);
/// assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalized).
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Quat {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis` (need not be unit length).
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        match axis.normalized() {
            None => Quat::IDENTITY,
            Some(u) => {
                let (s, c) = (angle / 2.0).sin_cos();
                Quat::new(c, u.x * s, u.y * s, u.z * s)
            }
        }
    }

    /// Builds an attitude from aerospace Euler angles (roll φ about X,
    /// pitch θ about Y, yaw ψ about Z), applied in Z-Y-X order.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Quat {
        let (sr, cr) = (roll / 2.0).sin_cos();
        let (sp, cp) = (pitch / 2.0).sin_cos();
        let (sy, cy) = (yaw / 2.0).sin_cos();
        Quat::new(
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        )
    }

    /// Extracts aerospace Euler angles `(roll, pitch, yaw)`.
    ///
    /// Near the gimbal-lock singularity (`|pitch| == π/2`) roll is set to 0
    /// and yaw absorbs the remaining rotation.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let q = self.normalized();
        let sinp = 2.0 * (q.w * q.y - q.z * q.x);
        if sinp.abs() >= 1.0 - 1e-9 {
            let pitch = std::f64::consts::FRAC_PI_2.copysign(sinp);
            let yaw = 2.0 * f64::atan2(q.z, q.w) * sinp.signum();
            return (0.0, pitch, yaw);
        }
        let roll = f64::atan2(
            2.0 * (q.w * q.x + q.y * q.z),
            1.0 - 2.0 * (q.x * q.x + q.y * q.y),
        );
        let pitch = sinp.asin();
        let yaw = f64::atan2(
            2.0 * (q.w * q.z + q.x * q.y),
            1.0 - 2.0 * (q.y * q.y + q.z * q.z),
        );
        (roll, pitch, yaw)
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion.
    ///
    /// # Panics
    ///
    /// Panics if the norm is zero or non-finite.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        assert!(
            n.is_finite() && n > 1e-12,
            "cannot normalize quaternion with norm {n}"
        );
        Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// Conjugate; for unit quaternions this is the inverse rotation.
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 * u × (u × v + w v), with u the vector part.
        let u = Vec3::new(self.x, self.y, self.z);
        let t = u.cross(v) * 2.0;
        v + t * self.w + u.cross(t)
    }

    /// Inverse rotation of a vector (same as `self.conjugate().rotate(v)`).
    pub fn rotate_inverse(self, v: Vec3) -> Vec3 {
        self.conjugate().rotate(v)
    }

    /// The equivalent rotation matrix (body→world for attitude quaternions).
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3 {
            m: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Integrates a body-frame angular rate `omega` (rad/s) over `dt`
    /// seconds and renormalizes. Uses the exact exponential map so large
    /// steps stay on the unit sphere.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quat {
        let dq = Quat::from_axis_angle(omega, omega.norm() * dt);
        (self * dq).normalized()
    }

    /// Angular distance to another rotation, in radians, in `[0, π]`.
    pub fn angle_to(self, other: Quat) -> f64 {
        let d = self.conjugate() * other;
        2.0 * d.w.abs().min(1.0).acos()
    }

    /// `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6} + {:.6}i + {:.6}j + {:.6}k)",
            self.w, self.x, self.y, self.z
        )
    }
}

impl Mul for Quat {
    type Output = Quat;
    /// Hamilton product; `(a * b).rotate(v) == a.rotate(b.rotate(v))`.
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotates_nothing() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert!((Quat::IDENTITY.rotate(v) - v).norm() < 1e-12);
    }

    #[test]
    fn axis_angle_quarter_turns() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
        let q = Quat::from_axis_angle(Vec3::X, FRAC_PI_2);
        assert!((q.rotate(Vec3::Y) - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn zero_axis_is_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_euler(0.2, -0.4, 1.1);
        let b = Quat::from_euler(-0.7, 0.3, 0.5);
        let v = Vec3::new(0.5, 1.5, -2.0);
        let composed = (a * b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!((composed - sequential).norm() < 1e-12);
    }

    #[test]
    fn euler_roundtrip() {
        let cases = [
            (0.1, 0.2, 0.3),
            (-1.0, 0.5, -2.5),
            (0.0, 0.0, PI - 0.01),
            (1.2, -1.3, 0.0),
        ];
        for (r, p, y) in cases {
            let q = Quat::from_euler(r, p, y);
            let (r2, p2, y2) = q.to_euler();
            assert!((r - r2).abs() < 1e-9, "roll {r} vs {r2}");
            assert!((p - p2).abs() < 1e-9, "pitch {p} vs {p2}");
            assert!((y - y2).abs() < 1e-9, "yaw {y} vs {y2}");
        }
    }

    #[test]
    fn rotation_matrix_agrees_with_quat_rotation() {
        let q = Quat::from_euler(0.3, -0.6, 2.0);
        let m = q.to_rotation_matrix();
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(1.0, 2.0, 3.0)] {
            assert!((m * v - q.rotate(v)).norm() < 1e-12);
        }
        // Rotation matrices are orthonormal with det +1.
        assert!((m.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_inverse_undoes_rotate() {
        let q = Quat::from_euler(0.9, 0.4, -1.7);
        let v = Vec3::new(-1.0, 2.0, 0.25);
        assert!((q.rotate_inverse(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn integrate_constant_rate() {
        // Integrating 90°/s about Z for 1 s in small steps ≈ quarter turn.
        let mut q = Quat::IDENTITY;
        let omega = Vec3::Z * FRAC_PI_2;
        for _ in 0..1000 {
            q = q.integrate(omega, 1e-3);
        }
        let expect = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(q.angle_to(expect) < 1e-9);
    }

    #[test]
    fn integration_preserves_unit_norm() {
        let mut q = Quat::from_euler(0.1, 0.1, 0.1);
        for i in 0..10_000 {
            let omega = Vec3::new((i as f64).sin(), 0.5, -0.2) * 3.0;
            q = q.integrate(omega, 1e-3);
        }
        assert!((q.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn angle_to_self_is_zero() {
        let q = Quat::from_euler(1.0, -0.5, 0.7);
        assert!(q.angle_to(q) < 1e-9);
        let half_turn = Quat::from_axis_angle(Vec3::Y, PI);
        assert!((q.angle_to(q * half_turn) - PI).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalize_zero_panics() {
        let _ = Quat::new(0.0, 0.0, 0.0, 0.0).normalized();
    }
}
