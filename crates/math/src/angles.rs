//! Angle utilities: wrapping, degree/radian conversion, frequency↔period.

use std::f64::consts::PI;

/// Wraps an angle into `(-π, π]`.
pub fn wrap_pi(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Shortest signed angular difference `a - b`, wrapped into `(-π, π]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Degrees → radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Radians → degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Rotation rate in RPM → rad/s.
pub fn rpm_to_rad_s(rpm: f64) -> f64 {
    rpm * 2.0 * PI / 60.0
}

/// Rotation rate in rad/s → RPM.
pub fn rad_s_to_rpm(rad_s: f64) -> f64 {
    rad_s * 60.0 / (2.0 * PI)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_basic() {
        assert!((wrap_pi(0.0)).abs() < 1e-12);
        assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_pi(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn diff_across_wrap() {
        // 179° to -179° is a 2° step, not 358°.
        let a = deg_to_rad(179.0);
        let b = deg_to_rad(-179.0);
        assert!((angle_diff(b, a) - deg_to_rad(2.0)).abs() < 1e-12);
        assert!((angle_diff(a, b) + deg_to_rad(2.0)).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        assert!((deg_to_rad(rad_to_deg(1.234)) - 1.234).abs() < 1e-12);
        assert!((rpm_to_rad_s(rad_s_to_rpm(42.0)) - 42.0).abs() < 1e-12);
        assert!((rpm_to_rad_s(60.0) - 2.0 * PI).abs() < 1e-12);
    }
}
