//! Levenberg–Marquardt nonlinear least squares.
//!
//! Used by the bundle-adjustment stages of the SLAM pipeline and by the
//! motor-model calibration in the component catalog. The implementation is
//! the classic damped Gauss–Newton with multiplicative lambda adaptation.

use crate::matrix::Matrix;
use std::fmt;

/// A nonlinear least-squares problem: residuals `r(x)` and their Jacobian.
///
/// Implementors provide the residual vector and the Jacobian evaluated at a
/// parameter vector; [`LevenbergMarquardt::minimize`] drives the iteration.
pub trait LeastSquaresProblem {
    /// Number of parameters.
    fn num_params(&self) -> usize;
    /// Number of residuals (must be ≥ `num_params` for a well-posed fit).
    fn num_residuals(&self) -> usize;
    /// Residual vector `r(x)`, length [`Self::num_residuals`].
    fn residuals(&self, x: &[f64]) -> Vec<f64>;
    /// Jacobian `J[i][j] = ∂r_i/∂x_j` as a `num_residuals × num_params`
    /// matrix. The default implementation uses central finite differences.
    fn jacobian(&self, x: &[f64]) -> Matrix {
        let n = self.num_params();
        let m = self.num_residuals();
        let mut jac = Matrix::zeros(m, n);
        let mut xp = x.to_vec();
        for j in 0..n {
            let h = 1e-6 * (1.0 + x[j].abs());
            xp[j] = x[j] + h;
            let rp = self.residuals(&xp);
            xp[j] = x[j] - h;
            let rm = self.residuals(&xp);
            xp[j] = x[j];
            for i in 0..m {
                jac[(i, j)] = (rp[i] - rm[i]) / (2.0 * h);
            }
        }
        jac
    }
}

/// Why a Levenberg–Marquardt run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmOutcome {
    /// The relative cost reduction fell below the tolerance.
    Converged,
    /// The maximum iteration count was reached first.
    MaxIterations,
    /// The damped normal equations became unsolvable (numerically singular
    /// even at maximum damping).
    SingularNormalEquations,
}

impl fmt::Display for LmOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LmOutcome::Converged => "converged",
            LmOutcome::MaxIterations => "max iterations reached",
            LmOutcome::SingularNormalEquations => "singular normal equations",
        };
        f.write_str(s)
    }
}

/// Result of a Levenberg–Marquardt minimization.
#[derive(Debug, Clone)]
pub struct LmReport {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Final cost `0.5 · ‖r‖²`.
    pub cost: f64,
    /// Initial cost, for convergence-ratio reporting.
    pub initial_cost: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Stop reason.
    pub outcome: LmOutcome,
}

impl LmReport {
    /// Fraction of the initial cost eliminated, in `[0, 1]`.
    pub fn cost_reduction(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            0.0
        } else {
            (1.0 - self.cost / self.initial_cost).max(0.0)
        }
    }
}

/// Configuration for the Levenberg–Marquardt solver.
///
/// # Example
///
/// ```
/// use drone_math::optimize::{LeastSquaresProblem, LevenbergMarquardt};
///
/// // Fit y = a·exp(b·t) to samples of 2·exp(0.5·t).
/// struct Exp { t: Vec<f64>, y: Vec<f64> }
/// impl LeastSquaresProblem for Exp {
///     fn num_params(&self) -> usize { 2 }
///     fn num_residuals(&self) -> usize { self.t.len() }
///     fn residuals(&self, x: &[f64]) -> Vec<f64> {
///         self.t.iter().zip(&self.y).map(|(t, y)| x[0] * (x[1] * t).exp() - y).collect()
///     }
/// }
/// let t: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
/// let y: Vec<f64> = t.iter().map(|t| 2.0 * (0.5 * t).exp()).collect();
/// let report = LevenbergMarquardt::new().minimize(&Exp { t, y }, &[1.0, 0.1]);
/// assert!((report.params[0] - 2.0).abs() < 1e-6);
/// assert!((report.params[1] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct LevenbergMarquardt {
    max_iterations: usize,
    cost_tolerance: f64,
    initial_lambda: f64,
}

impl Default for LevenbergMarquardt {
    fn default() -> Self {
        LevenbergMarquardt {
            max_iterations: 100,
            cost_tolerance: 1e-12,
            initial_lambda: 1e-3,
        }
    }
}

impl LevenbergMarquardt {
    /// Solver with default settings (100 iterations, 1e-12 tolerance).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the relative cost-reduction convergence tolerance.
    pub fn with_cost_tolerance(mut self, tol: f64) -> Self {
        self.cost_tolerance = tol;
        self
    }

    /// Minimizes the problem starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != problem.num_params()`.
    pub fn minimize<P: LeastSquaresProblem>(&self, problem: &P, x0: &[f64]) -> LmReport {
        assert_eq!(
            x0.len(),
            problem.num_params(),
            "initial guess has wrong length"
        );
        let mut x = x0.to_vec();
        let mut r = problem.residuals(&x);
        let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();
        let initial_cost = cost;
        let mut lambda = self.initial_lambda;
        let mut iterations = 0;
        let mut outcome = LmOutcome::MaxIterations;

        for _ in 0..self.max_iterations {
            iterations += 1;
            let jac = problem.jacobian(&x);
            let jt = jac.transpose();
            let jtj = jt.matmul(&jac);
            let jtr = jt.matmul(&Matrix::column(&r));

            // Try steps with increasing damping until the cost decreases.
            let mut stepped = false;
            for _ in 0..24 {
                let damped = jtj.add_diagonal(lambda);
                let Some(delta) = damped.solve_spd(&jtr).or_else(|| damped.solve(&jtr)) else {
                    lambda *= 10.0;
                    continue;
                };
                let x_new: Vec<f64> = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v - delta[(i, 0)])
                    .collect();
                let r_new = problem.residuals(&x_new);
                let cost_new = 0.5 * r_new.iter().map(|v| v * v).sum::<f64>();
                if cost_new.is_finite() && cost_new < cost {
                    let rel = (cost - cost_new) / cost.max(1e-300);
                    x = x_new;
                    r = r_new;
                    cost = cost_new;
                    lambda = (lambda * 0.3).max(1e-12);
                    stepped = true;
                    if rel < self.cost_tolerance {
                        outcome = LmOutcome::Converged;
                    }
                    break;
                }
                lambda *= 10.0;
                if lambda > 1e12 {
                    break;
                }
            }
            if !stepped {
                // Either we are at a (local) minimum or the system is
                // numerically singular; treat tiny gradients as converged.
                let grad_norm = jtr.frobenius_norm();
                outcome = if grad_norm < 1e-9 {
                    LmOutcome::Converged
                } else {
                    LmOutcome::SingularNormalEquations
                };
                break;
            }
            if outcome == LmOutcome::Converged {
                break;
            }
        }

        LmReport {
            params: x,
            cost,
            initial_cost,
            iterations,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fit a line y = a·x + b — linear problem, should converge immediately.
    struct Line {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl LeastSquaresProblem for Line {
        fn num_params(&self) -> usize {
            2
        }
        fn num_residuals(&self) -> usize {
            self.xs.len()
        }
        fn residuals(&self, p: &[f64]) -> Vec<f64> {
            self.xs
                .iter()
                .zip(&self.ys)
                .map(|(x, y)| p[0] * x + p[1] - y)
                .collect()
        }
    }

    #[test]
    fn fits_exact_line() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let report = LevenbergMarquardt::new().minimize(&Line { xs, ys }, &[0.0, 0.0]);
        assert_eq!(report.outcome, LmOutcome::Converged);
        assert!((report.params[0] - 3.0).abs() < 1e-8);
        assert!((report.params[1] + 1.0).abs() < 1e-8);
        assert!(report.cost < 1e-12);
    }

    /// Rosenbrock in least-squares form: r = [10(y - x²), 1 - x].
    struct Rosenbrock;

    impl LeastSquaresProblem for Rosenbrock {
        fn num_params(&self) -> usize {
            2
        }
        fn num_residuals(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64]) -> Vec<f64> {
            vec![10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]]
        }
    }

    #[test]
    fn solves_rosenbrock() {
        let report = LevenbergMarquardt::new()
            .with_max_iterations(200)
            .minimize(&Rosenbrock, &[-1.2, 1.0]);
        assert!((report.params[0] - 1.0).abs() < 1e-6, "{:?}", report);
        assert!((report.params[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cost_never_increases() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + 0.5 + (x * 10.0).sin() * 0.01)
            .collect();
        let problem = Line { xs, ys };
        let report = LevenbergMarquardt::new().minimize(&problem, &[100.0, -50.0]);
        assert!(report.cost <= report.initial_cost);
        assert!(report.cost_reduction() > 0.999);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_initial_guess_length_panics() {
        let _ = LevenbergMarquardt::new().minimize(&Rosenbrock, &[0.0]);
    }

    #[test]
    fn report_display_outcomes() {
        assert_eq!(LmOutcome::Converged.to_string(), "converged");
        assert_eq!(
            LmOutcome::MaxIterations.to_string(),
            "max iterations reached"
        );
    }
}
