//! Pareto-dominance primitives for multi-objective design-space search.
//!
//! The design-space engine compares candidate drones on several
//! objectives at once (flight time up, weight down, compute share
//! down). This module provides the direction-aware dominance test those
//! comparisons reduce to; the frontier bookkeeping itself lives in
//! `drone-explorer`, which composes these primitives.

use serde::{Deserialize, Serialize};

/// The optimization direction of one objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Larger values are better (flight time).
    Maximize,
    /// Smaller values are better (weight, compute share).
    Minimize,
}

impl Sense {
    /// `a` is at least as good as `b` along this axis.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a >= b,
            Sense::Minimize => a <= b,
        }
    }

    /// `a` is strictly better than `b` along this axis.
    pub fn strictly_better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Maximize => a > b,
            Sense::Minimize => a < b,
        }
    }
}

/// Strict Pareto dominance: `a` dominates `b` when it is at least as
/// good on every axis and strictly better on at least one.
///
/// Irreflexive (`dominates(x, x, s)` is false) and antisymmetric for
/// finite inputs; comparisons involving NaN are false on both sides, so
/// a NaN coordinate simply never dominates.
///
/// # Panics
///
/// Panics when the three slices disagree on length.
pub fn dominates(a: &[f64], b: &[f64], senses: &[Sense]) -> bool {
    assert_eq!(a.len(), senses.len(), "objective/sense arity mismatch");
    assert_eq!(b.len(), senses.len(), "objective/sense arity mismatch");
    let mut strictly = false;
    for ((&x, &y), &sense) in a.iter().zip(b).zip(senses) {
        if !sense.at_least_as_good(x, y) {
            return false;
        }
        strictly |= sense.strictly_better(x, y);
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_MIN: [Sense; 2] = [Sense::Maximize, Sense::Minimize];

    #[test]
    fn dominance_is_direction_aware() {
        // Objective 0 wants more, objective 1 wants less.
        assert!(dominates(&[2.0, 1.0], &[1.0, 2.0], &MAX_MIN));
        assert!(!dominates(&[1.0, 2.0], &[2.0, 1.0], &MAX_MIN));
        // Equal on one axis, better on the other still dominates.
        assert!(dominates(&[2.0, 1.0], &[2.0, 2.0], &MAX_MIN));
    }

    #[test]
    fn dominance_is_irreflexive() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], &MAX_MIN));
    }

    #[test]
    fn incomparable_points_do_not_dominate() {
        // Each is better on one axis: neither dominates.
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0], &MAX_MIN));
        assert!(!dominates(&[1.0, 1.0], &[2.0, 2.0], &MAX_MIN));
    }

    #[test]
    fn nan_never_dominates() {
        assert!(!dominates(&[f64::NAN, 0.0], &[1.0, 1.0], &MAX_MIN));
        assert!(!dominates(&[1.0, 1.0], &[f64::NAN, 0.0], &MAX_MIN));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0], &MAX_MIN);
    }
}
