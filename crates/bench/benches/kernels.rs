//! Criterion micro-benchmarks of the performance-critical kernels:
//! the hot loops behind every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_math(c: &mut Criterion) {
    use drone_math::{Matrix, Pcg32, Quat, Vec3};
    let mut g = c.benchmark_group("math");
    let q = Quat::from_euler(0.2, -0.4, 1.0);
    let v = Vec3::new(1.0, 2.0, 3.0);
    g.bench_function("quat_rotate", |b| {
        b.iter(|| black_box(q).rotate(black_box(v)))
    });
    g.bench_function("quat_integrate", |b| {
        b.iter(|| black_box(q).integrate(black_box(v), black_box(1e-3)))
    });

    let mut rng = Pcg32::seed_from(1);
    let mut a = Matrix::zeros(24, 24);
    for r in 0..24 {
        for col in 0..24 {
            a[(r, col)] = rng.uniform(-1.0, 1.0);
        }
    }
    let spd = a.matmul(&a.transpose()).add_diagonal(1.0);
    let rhs = Matrix::column(&[1.0; 24]);
    g.bench_function("matmul_24x24", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&a)))
    });
    g.bench_function("cholesky_solve_24", |b| {
        b.iter(|| black_box(&spd).solve_spd(black_box(&rhs)))
    });
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    use drone_components::battery::CellCount;
    use drone_dse::eval::{evaluate, evaluate_many, DesignQuery, EvalBatch};
    use drone_dse::power::PowerModel;
    let mut g = c.benchmark_group("eval");
    let q = DesignQuery::new(450.0, CellCount::S3, 4000.0);
    g.bench_function("scalar_single_point", |b| {
        b.iter(|| evaluate(black_box(&q)))
    });
    // A small mixed block — the shape a per-worker engine block takes.
    let block: Vec<DesignQuery> = (0..256)
        .map(|i| {
            DesignQuery::new(
                100.0 + (i % 16) as f64 * 50.0,
                CellCount::ALL[i % 6],
                1000.0 + (i % 8) as f64 * 800.0,
            )
        })
        .collect();
    g.bench_function("scalar_256_block", |b| {
        b.iter(|| {
            block
                .iter()
                .map(|q| evaluate(black_box(q)))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("batched_256_block", |b| {
        b.iter(|| evaluate_many(black_box(&block)))
    });
    // Table hoisting alone (16 unique wheelbases for 256 points).
    let model = PowerModel::paper_defaults();
    g.bench_function("batched_256_tables_prebuilt", |b| {
        let batch = EvalBatch::new(&block);
        b.iter(|| black_box(&batch).run(&model))
    });
    g.finish();
}

fn bench_uarch(c: &mut Criterion) {
    use drone_platform::uarch::cache::{Cache, CacheConfig};
    use drone_platform::{CoreConfig, CoreSystem, SyntheticWorkload};
    let mut g = c.benchmark_group("uarch");
    g.bench_function("cache_access_stream", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::l1d()),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.access(black_box(i * 64));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("core_100k_autopilot_instructions", |b| {
        b.iter_batched(
            || {
                (
                    CoreSystem::new(CoreConfig::default()),
                    SyntheticWorkload::autopilot(1),
                )
            },
            |(mut core, mut wl)| core.run_alone(&mut wl, 100_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_slam_kernels(c: &mut Criterion) {
    use drone_math::Pcg32;
    use drone_slam::descriptor::{match_descriptor, Descriptor};
    let mut g = c.benchmark_group("slam");
    let mut rng = Pcg32::seed_from(2);
    let set: Vec<Descriptor> = (0..1000).map(|_| Descriptor::random(&mut rng)).collect();
    let query = set[123].corrupted(0.02, &mut rng);
    g.bench_function("hamming_match_1k", |b| {
        b.iter(|| match_descriptor(black_box(&query), black_box(&set), 64, 0.8))
    });
    g.finish();
}

fn bench_control(c: &mut Criterion) {
    use drone_control::{CascadeController, Setpoint};
    use drone_math::Vec3;
    use drone_sim::{Quadcopter, QuadcopterParams};
    let mut g = c.benchmark_group("control");
    let params = QuadcopterParams::default_450mm();
    g.bench_function("cascade_update_1khz_tick", |b| {
        let mut ctrl = CascadeController::new(&params);
        let quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        b.iter(|| ctrl.update(black_box(quad.state()), black_box(&sp), 1e-3))
    });
    g.bench_function("physics_step", |b| {
        let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
        let hover = quad.hover_throttle();
        b.iter(|| quad.step(black_box([hover; 4]), Vec3::ZERO, 1e-3))
    });
    g.finish();
}

fn bench_estimation(c: &mut Criterion) {
    use drone_estimation::{SensorSuite, StateEstimator};
    use drone_math::Vec3;
    use drone_sim::RigidBodyState;
    let mut g = c.benchmark_group("estimation");
    g.bench_function("estimator_ingest_tick", |b| {
        let mut sensors = SensorSuite::with_defaults(3);
        let mut est = StateEstimator::new();
        let truth = RigidBodyState::at_altitude(10.0);
        b.iter(|| {
            let readings = sensors.sample(black_box(&truth), Vec3::ZERO, 1e-3);
            est.ingest(&readings, 1e-3);
        })
    });
    g.finish();
}

fn bench_mavlink(c: &mut Criterion) {
    use drone_firmware::{Message, StreamParser};
    let mut g = c.benchmark_group("mavlink");
    let msg = Message::Position {
        time_ms: 1234,
        position: [1.0, 2.0, 3.0],
        velocity: [0.1, 0.2, 0.3],
    };
    g.bench_function("encode_position", |b| {
        b.iter(|| black_box(&msg).encode(0, 1, 1))
    });
    let wire = msg.encode(0, 1, 1);
    g.bench_function("decode_position", |b| {
        b.iter_batched(
            StreamParser::new,
            |mut p| p.push(black_box(&wire)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_math,
    bench_eval,
    bench_uarch,
    bench_slam_kernels,
    bench_control,
    bench_estimation,
    bench_mavlink
);
criterion_main!(benches);
