//! Criterion benchmarks of the design-space exploration engine: the
//! batched struct-of-arrays kernel against the scalar loop, the
//! parallel executor against the serial path over a ≥ 10k-point sweep,
//! and the memoized warm path against a cold cache.
//!
//! The acceptance bar for the subsystem — parallel ≥ 2× serial on a
//! ≥ 4-core runner — is measured by `explore_10k/parallel` vs
//! `explore_10k/serial`; `explore_10k/batched` vs `explore_10k/serial`
//! isolates the kernel-level win (the `repro roofline` experiment
//! explains the remaining gap to the hardware ceiling); the cached
//! group shows the memoization win.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drone_components::battery::CellCount;
use drone_dse::eval::{evaluate, evaluate_many, DesignQuery};
use drone_explorer::{Explorer, GridRange, ParallelExecutor, QueryRanges};
use std::hint::black_box;

/// A 10,368-point grid over the paper's design axes.
fn sweep_10k() -> Vec<DesignQuery> {
    let ranges = QueryRanges {
        wheelbase_mm: GridRange::new(100.0, 800.0, 24),
        cells: vec![CellCount::S1, CellCount::S3, CellCount::S6],
        capacity_mah: GridRange::new(1000.0, 8000.0, 24),
        compute_power_w: GridRange::new(3.0, 20.0, 3),
        twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
        payload_g: GridRange::new(0.0, 200.0, 2),
    };
    let grid = ranges.grid();
    assert!(grid.len() >= 10_000, "bench grid shrank: {}", grid.len());
    grid
}

fn bench_executor(c: &mut Criterion) {
    let points = sweep_10k();
    let serial = ParallelExecutor::new(1);
    let parallel = ParallelExecutor::with_default_threads();
    let mut g = c.benchmark_group("explore_10k");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| serial.map(black_box(&points), |_, q| evaluate(q)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| parallel.map(black_box(&points), |_, q| evaluate(q)))
    });
    // The struct-of-arrays kernel over the whole sweep in one call:
    // bit-identical answers (pinned by the lockstep proptests), the
    // table hoisting and powf pipelining doing the work.
    g.bench_function("batched", |b| b.iter(|| evaluate_many(black_box(&points))));
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let points = sweep_10k();
    let mut g = c.benchmark_group("explore_cache");
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter_batched(
            Explorer::with_default_threads,
            |explorer| {
                let results = explorer.evaluate_points(black_box(&points));
                assert_eq!(explorer.cache().hit_count(), 0);
                results
            },
            BatchSize::PerIteration,
        )
    });
    // Warm: the same batch through a pre-populated cache — every point a
    // hit, demonstrating the memoized path the `explore` experiment and
    // refinement rounds ride on.
    let warm = Explorer::with_default_threads();
    let _ = warm.evaluate_points(&points);
    let cold_misses = warm.cache().miss_count();
    g.bench_function("warm", |b| {
        b.iter(|| warm.evaluate_points(black_box(&points)))
    });
    assert!(
        warm.cache().hit_count() > 0,
        "warm pass must report cache hits via telemetry counters"
    );
    assert_eq!(
        warm.cache().miss_count(),
        cold_misses,
        "warm pass must not miss"
    );
    g.finish();
}

criterion_group!(benches, bench_executor, bench_cache);
criterion_main!(benches);
