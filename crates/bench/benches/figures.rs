//! Criterion benches of the experiment regeneration paths — one bench
//! per paper table/figure family plus the DESIGN.md ablations
//! (catalog-size sensitivity, EKF vs complementary filter, hierarchical
//! vs flat control).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// Figure 7/8: catalog synthesis + least-squares refits.
fn bench_catalog_figures(c: &mut Criterion) {
    use drone_components::battery::CellCount;
    use drone_components::catalog::{Catalog, CatalogSize};
    let mut g = c.benchmark_group("fig7_fig8");
    g.bench_function("synthesize_and_fit_paper_sizes", |b| {
        b.iter(|| {
            let catalog = Catalog::synthesize_default(black_box(42));
            let mut acc = 0.0;
            for cells in CellCount::ALL {
                if let Some(fit) = catalog.battery_fit(cells) {
                    acc += fit.slope;
                }
            }
            acc
        })
    });
    // Ablation: regression stability vs survey size.
    for batteries in [25usize, 250, 2500] {
        g.bench_function(format!("catalog_size_{batteries}"), |b| {
            b.iter(|| {
                let catalog = Catalog::synthesize(
                    7,
                    CatalogSize {
                        batteries,
                        escs: 40,
                        frames: 25,
                    },
                );
                catalog.battery_fit(CellCount::S3)
            })
        });
    }
    g.finish();
}

/// Figure 9/10: sizing fixed point and the wheelbase sweep.
fn bench_design_space(c: &mut Criterion) {
    use drone_components::battery::CellCount;
    use drone_components::units::MilliampHours;
    use drone_dse::design::DesignSpec;
    use drone_dse::sweep::WheelbaseSweep;
    let mut g = c.benchmark_group("fig9_fig10");
    g.bench_function("size_single_design", |b| {
        b.iter(|| {
            DesignSpec::new(450.0, CellCount::S3, MilliampHours(black_box(4000.0)))
                .size()
                .expect("feasible")
        })
    });
    g.bench_function("sweep_450mm", |b| {
        b.iter(|| WheelbaseSweep::run(450.0, &[CellCount::S1, CellCount::S3, CellCount::S6], 8))
    });
    g.finish();
}

/// Figure 15: the interference experiment at reduced scale.
fn bench_figure15(c: &mut Criterion) {
    use drone_platform::uarch::system::figure15_experiment;
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("interference_100k", |b| {
        b.iter(|| figure15_experiment(black_box(100_000), 1))
    });
    g.finish();
}

/// Figure 17: the SLAM pipeline per stage.
fn bench_figure17(c: &mut Criterion) {
    use drone_slam::euroc::Sequence;
    use drone_slam::{Pipeline, PipelineConfig};
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    let dataset = Sequence::V101.generate_with_frames(40);
    g.bench_function("slam_pipeline_40_frames", |b| {
        b.iter_batched(
            || Pipeline::new(PipelineConfig::default()),
            |mut p| p.run(black_box(&dataset)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Ablation: EKF + complementary estimator vs raw gyro integration cost.
fn bench_estimator_ablation(c: &mut Criterion) {
    use drone_estimation::{ComplementaryFilter, NavigationEkf};
    use drone_math::Vec3;
    let mut g = c.benchmark_group("ablation_estimator");
    g.bench_function("complementary_update", |b| {
        let mut f = ComplementaryFilter::default();
        b.iter(|| {
            f.update(
                black_box(Vec3::new(0.1, 0.0, 0.0)),
                Some(Vec3::Z * 9.81),
                None,
                5e-3,
            )
        })
    });
    g.bench_function("ekf_predict_update", |b| {
        let mut ekf = NavigationEkf::new();
        b.iter(|| {
            ekf.predict(black_box(Vec3::X), 5e-3);
            ekf.update_gps(Vec3::ZERO);
        })
    });
    g.finish();
}

/// Ablation: hierarchical cascade vs a flat (attitude-only) controller.
fn bench_control_ablation(c: &mut Criterion) {
    use drone_control::{AttitudeController, CascadeController, Setpoint};
    use drone_math::{Quat, Vec3};
    use drone_sim::{Quadcopter, QuadcopterParams};
    let mut g = c.benchmark_group("ablation_control");
    let params = QuadcopterParams::default_450mm();
    let quad = Quadcopter::hovering_at(params.clone(), 10.0);
    g.bench_function("hierarchical_tick", |b| {
        let mut ctrl = CascadeController::new(&params);
        let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
        b.iter(|| ctrl.update(black_box(quad.state()), &sp, 1e-3))
    });
    g.bench_function("flat_attitude_tick", |b| {
        let mut ctrl = AttitudeController::new(&params);
        let target = Quat::from_euler(0.1, 0.0, 0.0);
        b.iter(|| {
            ctrl.update(
                black_box(quad.state().attitude),
                quad.state().angular_velocity,
                target,
                1e-3,
            )
        })
    });
    g.finish();
}

/// Outer-loop planning: A* over a mapped arena.
fn bench_planning(c: &mut Criterion) {
    use drone_autonomy::grid::OccupancyGrid;
    use drone_autonomy::planner::plan_path;
    let mut g = OccupancyGrid::new(100, 100, 0.5, 0.0, 0.0);
    for y in 0..100 {
        for x in 0..100 {
            g.set_free(x, y);
        }
    }
    // A few walls with gaps.
    for y in 0..100 {
        if !(45..55).contains(&y) {
            g.set_occupied(30, y);
        }
        if !(10..20).contains(&y) {
            g.set_occupied(60, y);
        }
    }
    let mut group = c.benchmark_group("planning");
    group.bench_function("astar_100x100_two_walls", |b| {
        b.iter(|| plan_path(black_box(&g), (2, 2), (97, 97)).expect("route"))
    });
    group.finish();
}

/// §5.1 scheduler experiment.
fn bench_scheduler(c: &mut Criterion) {
    use drone_firmware::scheduler::{autopilot_task_set, slam_task};
    use drone_firmware::RateScheduler;
    let mut g = c.benchmark_group("deadlines");
    g.bench_function("schedule_30s_with_slam", |b| {
        b.iter_batched(
            || {
                let mut tasks = autopilot_task_set();
                tasks.push(slam_task());
                RateScheduler::new(tasks)
            },
            |mut s| s.simulate(30.0, black_box(1.0 / 1.7)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_catalog_figures,
    bench_design_space,
    bench_figure15,
    bench_figure17,
    bench_estimator_ablation,
    bench_control_ablation,
    bench_planning,
    bench_scheduler
);
criterion_main!(benches);
