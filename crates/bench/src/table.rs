//! Minimal fixed-width table rendering for the experiment reports.

use drone_telemetry::Json;

/// A simple text table builder.
///
/// # Example
///
/// ```
/// use drone_bench::table::Table;
/// let mut t = Table::new(vec!["config", "slope"]);
/// t.row(vec!["3S".into(), "0.074".into()]);
/// let s = t.render();
/// assert!(s.contains("config"));
/// assert!(s.contains("0.074"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table as a JSON object: one entry per row keyed by header.
    /// Cells that parse as numbers are emitted as numbers so downstream
    /// tooling can plot them without re-parsing the text report.
    ///
    /// ```
    /// use drone_bench::table::Table;
    /// let mut t = Table::new(vec!["config", "slope"]);
    /// t.row(vec!["3S".into(), "0.074".into()]);
    /// let json = t.to_json();
    /// let row = &json.get("rows").unwrap().as_arr().unwrap()[0];
    /// assert_eq!(row.get("slope").unwrap().as_f64(), Some(0.074));
    /// assert_eq!(row.get("config").unwrap().as_str(), Some("3S"));
    /// ```
    pub fn to_json(&self) -> Json {
        let mut rows = Json::arr();
        for row in &self.rows {
            let mut obj = Json::obj();
            for (header, cell) in self.headers.iter().zip(row) {
                // `f64::from_str` accepts "inf"/"nan" spellings that the
                // reports use as text; only promote plain finite numbers.
                match cell.parse::<f64>() {
                    Ok(n)
                        if n.is_finite()
                            && cell.starts_with(|c: char| c.is_ascii_digit() || c == '-') =>
                    {
                        obj.insert(header, n);
                    }
                    _ => obj.insert(header, cell.as_str()),
                }
            }
            rows.push(obj);
        }
        Json::obj()
            .with(
                "headers",
                Json::Arr(
                    self.headers
                        .iter()
                        .map(|h| Json::from(h.as_str()))
                        .collect(),
                ),
            )
            .with("rows", rows)
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.105), "10.5%");
    }
}
