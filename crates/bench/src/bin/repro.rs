//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list            # show available experiments
//! repro fig7            # one experiment
//! repro fig10_power fig17
//! repro all             # everything, in paper order
//! ```

use drone_bench::all_experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        println!("usage: repro <experiment>... | all | list\n\navailable experiments:");
        for (name, _) in &experiments {
            println!("  {name}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match experiments.iter().find(|(n, _)| *n == name) {
            Some((_, run)) => {
                println!("{:=^78}", format!(" {name} "));
                println!("{}", run());
            }
            None => {
                eprintln!("unknown experiment '{name}' (try `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
