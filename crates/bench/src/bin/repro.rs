//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                  # show available experiments
//! repro fig7                  # one experiment
//! repro fig10_power fig17
//! repro all                   # everything, in paper order
//! repro faults --json out/    # also write out/BENCH_faults.json
//! repro explore --threads 4   # pin the exploration worker count
//! ```
//!
//! With `--json <dir>`, each selected experiment additionally writes its
//! machine-readable metrics to `<dir>/BENCH_<name>.json` — seeded runs
//! with insertion-ordered keys, so the artifacts are byte-stable.
//! `--threads N` pins the `drone-explorer` worker count; the artifacts
//! are byte-identical at any value (CI diffs `--threads 1` vs `4`).
//! `--shards N` pins the `serve_scale` router sweep to one shard count;
//! the artifact's deterministic sections are byte-identical at any
//! value (CI strips the `measured` and `sharding` keys, then diffs).
//! Experiment names accept `-` for `_` (`serve-scale` == `serve_scale`).

use drone_bench::all_experiments;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    // Split off `--json <dir>` wherever it appears.
    let mut names: Vec<&str> = Vec::new();
    let mut json_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--json" {
            match iter.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json needs a directory argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--threads" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(threads) if threads >= 1 => drone_explorer::set_default_threads(threads),
                _ => {
                    eprintln!("--threads needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--shards" {
            match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(shards) if shards >= 1 => drone_bench::set_serve_scale_shards(shards),
                _ => {
                    eprintln!("--shards needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            names.push(arg.as_str());
        }
    }

    if names.is_empty() || names[0] == "list" || names[0] == "--help" {
        println!(
            "usage: repro <experiment>... | all | list [--json <dir>] [--threads <n>] [--shards <n>]\n\navailable experiments:"
        );
        let width = experiments.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut listing: Vec<_> = experiments.iter().collect();
        listing.sort_by_key(|e| e.name);
        for e in listing {
            println!("  {:<width$}  {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&str> = if names.contains(&"all") {
        experiments.iter().map(|e| e.name).collect()
    } else {
        names
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in selected {
        // Accept `serve-scale` for `serve_scale` and so on.
        let canonical = name.replace('-', "_");
        match experiments.iter().find(|e| e.name == canonical) {
            Some(experiment) => {
                println!("{:=^78}", format!(" {name} "));
                let report = (experiment.run)();
                println!("{}", report.text);
                if let Some(dir) = &json_dir {
                    let path = dir.join(format!("BENCH_{canonical}.json"));
                    let doc = drone_telemetry::Json::obj()
                        .with("experiment", canonical.as_str())
                        .with("description", experiment.description)
                        .with("metrics", report.metrics);
                    if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {}", path.display());
                }
            }
            None => {
                eprintln!("unknown experiment '{name}' (try `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
