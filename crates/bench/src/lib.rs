//! Experiment-reproduction library behind the `repro` binary.
//!
//! One function per paper artifact (table or figure); each returns a
//! plain-text report so the binary, the integration tests and the
//! documentation all share the same code path. See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

pub mod experiments;
pub mod table;

pub use experiments::*;
