//! Table 2, the inner-loop saturation study (§2.1.3-D) and the §5.1
//! deadline-miss experiment.

use crate::experiments::Report;
use crate::table::{f, Table};
use drone_control::{CascadeController, ControlRates, Setpoint};
use drone_estimation::sensors::rates;
use drone_estimation::SensorSuite;
use drone_firmware::scheduler::{autopilot_task_set, slam_task};
use drone_firmware::RateScheduler;
use drone_math::{Quat, Vec3};
use drone_sim::{Quadcopter, QuadcopterParams, RigidBodyState};
use drone_telemetry::Json;

/// Table 2: sensor data frequencies (measured from the sensor suite) and
/// controller update frequencies (measured from the cascade counters).
pub fn table2() -> Report {
    // (a) Sensor rates measured over 5 simulated seconds.
    let mut suite = SensorSuite::with_defaults(2);
    let truth = RigidBodyState::at_rest();
    let dt = 1e-3;
    let seconds = 5.0;
    let mut counts = [0usize; 5];
    for _ in 0..(seconds / dt) as usize {
        let r = suite.sample(&truth, Vec3::ZERO, dt);
        counts[0] += usize::from(r.accelerometer.is_some());
        counts[1] += usize::from(r.gyroscope.is_some());
        counts[2] += usize::from(r.magnetometer.is_some());
        counts[3] += usize::from(r.barometer.is_some());
        counts[4] += usize::from(r.gps.is_some());
    }
    let mut a = Table::new(vec!["sensor", "measured (Hz)", "paper (Hz)"]);
    let labels = [
        ("accelerometer", rates::ACCELEROMETER_HZ, "100-200"),
        ("gyroscope", rates::GYROSCOPE_HZ, "100-200"),
        ("magnetometer", rates::MAGNETOMETER_HZ, "10"),
        ("barometer", rates::BAROMETER_HZ, "10-20"),
        ("gps", rates::GPS_HZ, "1-40"),
    ];
    for (i, (name, _, paper)) in labels.iter().enumerate() {
        a.row(vec![
            (*name).to_owned(),
            f(counts[i] as f64 / seconds, 0),
            (*paper).to_owned(),
        ]);
    }

    // (b) Controller rate groups measured from cascade counters.
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::hovering_at(params.clone(), 10.0);
    let mut ctrl = CascadeController::new(&params);
    let sp = Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0);
    for _ in 0..(seconds / dt) as usize {
        let throttle = ctrl.update(quad.state(), &sp, dt);
        quad.step(throttle, Vec3::ZERO, dt);
    }
    let c = ctrl.update_counts();
    let mut b = Table::new(vec!["controller", "measured (Hz)", "paper (Hz)"]);
    b.row(vec![
        "thrust/rate".into(),
        f(c.rate as f64 / seconds, 0),
        "1000".into(),
    ]);
    b.row(vec![
        "attitude".into(),
        f(c.attitude as f64 / seconds, 0),
        "200".into(),
    ]);
    b.row(vec![
        "position".into(),
        f(c.position as f64 / seconds, 0),
        "40".into(),
    ]);
    Report::new(
        format!(
            "Table 2a — sensor data frequencies\n{}\nTable 2b — controller update frequencies\n{}",
            a.render(),
            b.render()
        ),
        Json::obj()
            .with("sensor_rates", a.to_json())
            .with("controller_rates", b.to_json()),
    )
}

/// Measures the 90 % rise time of a 0.2 rad roll step with the inner
/// loop running at `rate_hz` (public for the saturation integration
/// test).
pub fn roll_rise_time(rate_hz: f64) -> Option<f64> {
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::hovering_at(params.clone(), 30.0);
    let rates = ControlRates {
        position_hz: (rate_hz / 25.0).max(10.0).min(rate_hz),
        attitude_hz: (rate_hz / 5.0).max(10.0).min(rate_hz),
        rate_hz,
    };
    let mut ctrl = CascadeController::with_rates(&params, rates);
    let hover = params.total_weight().weight_newtons();
    let sp = Setpoint::Attitude {
        attitude: Quat::from_euler(0.2, 0.0, 0.0),
        thrust_newtons: hover,
    };
    let sim_dt = 1e-4;
    let ctrl_period = 1.0 / rate_hz;
    let mut next_ctrl = 0.0;
    let mut throttle = [0.0; 4];
    for step in 0..200_000 {
        let t = step as f64 * sim_dt;
        if t >= next_ctrl {
            throttle = ctrl.update(quad.state(), &sp, ctrl_period);
            next_ctrl += ctrl_period;
        }
        quad.step(throttle, Vec3::ZERO, sim_dt);
        let (roll, _, _) = quad.state().euler();
        if roll >= 0.18 {
            return Some(t);
        }
    }
    None
}

/// Maximum roll overshoot beyond a 0.2 rad step target at the given
/// inner-loop rate (public for the saturation integration test): slow
/// loops ring, fast loops are crisply damped.
pub fn roll_overshoot(rate_hz: f64) -> f64 {
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::hovering_at(params.clone(), 30.0);
    let rates = ControlRates {
        position_hz: (rate_hz / 25.0).max(10.0).min(rate_hz),
        attitude_hz: (rate_hz / 5.0).max(10.0).min(rate_hz),
        rate_hz,
    };
    let mut ctrl = CascadeController::with_rates(&params, rates);
    let hover = params.total_weight().weight_newtons();
    let sp = Setpoint::Attitude {
        attitude: Quat::from_euler(0.2, 0.0, 0.0),
        thrust_newtons: hover,
    };
    let sim_dt = 1e-4;
    let ctrl_period = 1.0 / rate_hz;
    let mut next_ctrl = 0.0;
    let mut throttle = [0.0; 4];
    let mut max_roll = 0.0f64;
    for step in 0..30_000 {
        let t = step as f64 * sim_dt;
        if t >= next_ctrl {
            throttle = ctrl.update(quad.state(), &sp, ctrl_period);
            next_ctrl += ctrl_period;
        }
        quad.step(throttle, Vec3::ZERO, sim_dt);
        let (roll, _, _) = quad.state().euler();
        max_roll = max_roll.max(roll);
    }
    (max_roll - 0.2).max(0.0)
}

/// §2.1.3-D: inner-loop response vs update rate — beyond a few hundred
/// hertz the response time saturates at the airframe's physical limit,
/// so extra compute buys nothing.
pub fn inner_loop() -> Report {
    let mut t = Table::new(vec!["inner-loop rate (Hz)", "90% roll rise time (ms)"]);
    let mut results = Vec::new();
    for rate in [50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0] {
        let rise = roll_rise_time(rate);
        results.push((rate, rise));
        t.row(vec![
            f(rate, 0),
            rise.map(|r| f(r * 1e3, 1))
                .unwrap_or_else(|| "did not reach".into()),
        ]);
    }
    // Saturation metric: improvement from 500 Hz to 4 kHz.
    let at = |hz: f64| {
        results
            .iter()
            .find(|(r, _)| (*r - hz).abs() < 1.0)
            .and_then(|(_, rise)| *rise)
    };
    let msg = match (at(500.0), at(4000.0)) {
        (Some(a), Some(b)) => format!(
            "500 Hz -> 4 kHz improves rise time by {:.0}% — physics-limited, as the paper argues",
            (1.0 - b / a) * 100.0
        ),
        _ => "saturation could not be evaluated".to_owned(),
    };
    Report::from_table(
        format!(
            "S2.1.3 — inner-loop rate saturation (motor time constant 50 ms dominates)\n{}\n{msg}\n",
            t.render()
        ),
        &t,
    )
}

/// Attitude-hold RMS error (rad) under gusts with either rate loop.
fn gust_attitude_rms(gust: f64, seconds: f64, use_indi: bool) -> f64 {
    use drone_control::{AttitudeController, IndiRateController, Mixer};
    use drone_math::Pcg32;
    use drone_sim::WindModel;
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::hovering_at(params.clone(), 50.0);
    let mut attitude = AttitudeController::new(&params);
    let mut indi = IndiRateController::new(&params);
    let mixer = Mixer::new(&params);
    let hover = params.total_weight().weight_newtons();
    let mut wind = WindModel::gusty(Vec3::new(4.0, 0.0, 0.0), gust, 17);
    let mut rng = Pcg32::seed_from(3);
    let dt = 1e-3;
    let mut sq = 0.0;
    let n = (seconds / dt) as usize;
    for _ in 0..n {
        let s = *quad.state();
        let rate_sp = attitude.rate_setpoint(s.attitude, Quat::IDENTITY);
        let mut torque = if use_indi {
            indi.update(s.angular_velocity, rate_sp, dt)
        } else {
            attitude.update_rate_only(s.angular_velocity, rate_sp, dt)
        };
        // Prop flapping / imbalance torque noise (Table 1 disturbances).
        torque += Vec3::new(rng.normal_with(0.0, 0.02), rng.normal_with(0.0, 0.02), 0.0);
        quad.step(mixer.mix(hover, torque), wind.sample(dt), dt);
        sq += s.attitude.angle_to(Quat::IDENTITY).powi(2);
    }
    (sq / n as f64).sqrt()
}

/// Ablation: the paper-cited INDI rate loop vs the PID rate loop under
/// increasing gust intensity (both inside the same attitude cascade).
pub fn gust_rejection() -> Report {
    let mut t = Table::new(vec![
        "gust sigma (m/s)",
        "PID RMS (mrad)",
        "INDI RMS (mrad)",
    ]);
    for gust in [0.0, 1.0, 2.0, 4.0] {
        let pid = gust_attitude_rms(gust, 6.0, false);
        let indi = gust_attitude_rms(gust, 6.0, true);
        t.row(vec![f(gust, 1), f(pid * 1e3, 1), f(indi * 1e3, 1)]);
    }
    Report::from_table(
        format!(
            "Ablation — gust rejection: PID vs INDI rate loop (4 m/s mean wind + gusts)
{}
         the paper cites INDI [22] as the gust-rejection state of the art at 500 Hz;
         both loops hold attitude — confirming the rate, not the algorithm, is the binding constraint
",
            t.render()
        ),
        &t,
    )
}

/// §5.1: co-locating SLAM with the autopilot makes outer-loop deadlines
/// slip while the (isolated, highest-priority) inner loop holds.
pub fn deadlines() -> Report {
    let mut alone = RateScheduler::new(autopilot_task_set());
    let report_alone = alone.simulate(30.0, 1.0);

    let mut tasks = autopilot_task_set();
    tasks.push(slam_task());
    let mut shared = RateScheduler::new(tasks);
    // IPC degradation from Figure 15 applied as a CPU-speed derating.
    let report_shared = shared.simulate(30.0, 1.0 / 1.7);

    let mut t = Table::new(vec!["task", "misses (alone)", "misses (with SLAM)"]);
    for task in ["inner-loop", "ekf", "outer-loop", "telemetry", "slam"] {
        let a = report_alone
            .task(task)
            .map(|r| r.deadline_misses.to_string());
        let b = report_shared
            .task(task)
            .map(|r| r.deadline_misses.to_string());
        t.row(vec![
            task.to_owned(),
            a.unwrap_or_else(|| "-".into()),
            b.unwrap_or_else(|| "-".into()),
        ]);
    }
    Report::new(
        format!(
            "S5.1 — deadline misses over 30 s, autopilot alone vs SLAM co-located (CPU derated 1.7x)\n{}\n\
             cpu utilization: alone {:.0}%, shared {:.0}%\n\
             paper: 'running a few additional workloads ... we will miss several outer-loop deadlines'\n",
            t.render(),
            report_alone.cpu_utilization * 100.0,
            report_shared.cpu_utilization * 100.0
        ),
        Json::obj()
            .with("table", t.to_json())
            .with("alone", report_alone.to_json())
            .with("shared", report_shared.to_json()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rates_match() {
        let r = table2();
        assert!(r.text.contains("accelerometer"));
        assert!(r.text.contains("1000"));
    }

    #[test]
    fn inner_loop_shows_saturation() {
        let r = inner_loop();
        assert!(r.text.contains("physics-limited"), "{}", r.text);
    }

    #[test]
    fn deadlines_show_misses_with_slam() {
        let r = deadlines();
        assert!(r.text.contains("inner-loop"));
        assert!(r.text.contains("slam"));
        // The scheduler reports embed per-task response-time histograms.
        let shared = r.metrics.get("shared").unwrap();
        assert!(shared.get("tasks").unwrap().as_arr().unwrap().len() >= 5);
    }
}
