//! Figures 15 and 16: the micro-architecture interference study and the
//! power traces.

use crate::experiments::Report;
use crate::table::{f, pct, Table};
use drone_components::units::Watts;
use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, Mission};
use drone_math::Vec3;
use drone_platform::uarch::system::figure15_experiment;
use drone_platform::{BoardPowerModel, ComputePhase};
use drone_sim::{PowerMeter, Quadcopter, QuadcopterParams, WindModel};
use drone_telemetry::Json;

/// Figure 15: `perf`-style counters for the autopilot and SLAM, alone
/// and co-scheduled on one core.
pub fn figure15() -> Report {
    let (ap_alone, slam_alone, ap_shared, slam_shared) = figure15_experiment(2_000_000, 42);
    let mut t = Table::new(vec![
        "workload",
        "IPC",
        "LLC miss",
        "branch miss",
        "TLB MPKI",
    ]);
    for s in [&ap_alone, &slam_alone, &ap_shared, &slam_shared] {
        let label = match (
            s.name.as_str(),
            std::ptr::eq(s, &ap_shared) || std::ptr::eq(s, &slam_shared),
        ) {
            (n, true) => format!("{n} (w/ co-run)"),
            (n, false) => n.to_owned(),
        };
        t.row(vec![
            label,
            f(s.ipc(), 3),
            pct(s.llc_miss_rate()),
            pct(s.branch_miss_rate()),
            f(s.tlb_mpki(), 2),
        ]);
    }
    let ipc_drop = ap_alone.ipc() / ap_shared.ipc();
    // Normalize by instruction volume: the background SLAM retires far
    // more instructions than the autopilot subject in the shared run.
    let shared_instr = ap_shared.instructions + slam_shared.instructions;
    let system_mpki =
        (ap_shared.tlb_misses + slam_shared.tlb_misses) as f64 * 1000.0 / shared_instr as f64;
    let tlb_system = system_mpki / ap_alone.tlb_mpki().max(1e-9);
    Report::new(
        format!(
            "Figure 15 — autopilot/SLAM perf counters (trace-driven core)\n{}\n\
             autopilot IPC drop with SLAM co-located: {ipc_drop:.2}x (paper: 1.7x)\n\
             system TLB miss rate with SLAM vs autopilot alone: {tlb_system:.1}x (paper: 4.5x as many misses)\n",
            t.render()
        ),
        Json::obj()
            .with("table", t.to_json())
            .with("ipc_drop", ipc_drop)
            .with("tlb_system_ratio", tlb_system),
    )
}

/// Figure 16: power traces — (a) the companion computer through its
/// phases, (b) the whole drone through a flight, driven by the actual
/// simulation + firmware stack.
pub fn figure16() -> Report {
    // --- (a) RPi power phases (BoardPowerModel). ---
    let rpi = BoardPowerModel::rpi_figure16();
    let segments = [
        (ComputePhase::Off, 10.0),
        (ComputePhase::Autopilot, 120.0),
        (ComputePhase::AutopilotSlamIdle, 60.0),
        (ComputePhase::AutopilotSlamActive, 240.0),
        (ComputePhase::Off, 10.0),
    ];
    let trace = rpi.trace(&segments, 2.0, 9);
    let mut phase_stats: Vec<(ComputePhase, f64, usize)> = Vec::new();
    for (_, w, phase) in &trace {
        match phase_stats.iter_mut().find(|(p, _, _)| p == phase) {
            Some(e) => {
                e.1 += w.0;
                e.2 += 1;
            }
            None => phase_stats.push((*phase, w.0, 1)),
        }
    }
    let mut a = Table::new(vec!["phase", "avg power (W)", "paper (W)"]);
    for (phase, sum, n) in &phase_stats {
        let paper_val = match phase {
            ComputePhase::Autopilot => "3.39",
            ComputePhase::AutopilotSlamIdle => "4.05",
            ComputePhase::AutopilotSlamActive => "4.56",
            _ => "-",
        };
        a.row(vec![
            phase.to_string(),
            f(sum / *n as f64, 2),
            paper_val.to_owned(),
        ]);
    }

    // --- (b) whole-drone flight power from the simulator. ---
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::new(params.clone());
    let mut sensors = SensorSuite::with_defaults(16);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot
        .upload_mission(Mission::hover_test(10.0, 20.0))
        .expect("valid mission");
    autopilot.arm().expect("armed");
    let mut wind = WindModel::gusty(Vec3::new(1.0, 0.0, 0.0), 0.5, 4);
    let mut meter = PowerMeter::new(0.02); // the paper's 50 Hz oscilloscope
    meter.set_phase("ground");
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    for step in 0..60_000 {
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        let out = quad.step(throttle, wind.sample(dt), dt);
        let phase = if !out.on_ground && quad.state().position.z > 8.0 {
            "hover"
        } else if !out.on_ground {
            "climb/descend"
        } else {
            "ground"
        };
        meter.set_phase(phase);
        meter.record(step as f64 * dt, out.total_power);
        if autopilot.mode() == drone_firmware::FlightMode::Disarmed && step > 5000 {
            break;
        }
    }
    let mut b = Table::new(vec!["flight phase", "avg power (W)"]);
    for (phase, avg) in meter.phase_averages() {
        b.row(vec![phase, f(avg.0, 0)]);
    }
    let peak = meter.peak().unwrap_or(Watts(0.0));
    Report::new(
        format!(
            "Figure 16a — companion computer power by phase\n{}\n\
             Figure 16b — whole-drone power during a hover mission\n{}\n\
             peak {} (paper: ~130 W average, 250 W peaks on the 450 mm build)\n",
            a.render(),
            b.render(),
            peak
        ),
        Json::obj()
            .with("rpi_phases", a.to_json())
            .with("flight_phases", b.to_json())
            .with("peak_w", peak.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_report_shows_degradation() {
        let r = figure15();
        assert!(r.text.contains("IPC drop"), "{}", r.text);
        assert!(r.text.contains("autopilot (w/ co-run)"), "{}", r.text);
        assert!(r.metrics.get("ipc_drop").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn figure16_report_has_both_panels() {
        let r = figure16();
        assert!(r.text.contains("Figure 16a"));
        assert!(r.text.contains("Figure 16b"));
        assert!(r.text.contains("hover"));
        assert!(r.metrics.get("peak_w").unwrap().as_f64().unwrap() > 0.0);
    }
}
