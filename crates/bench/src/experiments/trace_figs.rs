//! The `trace` experiment: end-to-end causal tracing through the DSE
//! serving stack, plus the live introspection plane.
//!
//! Two phases:
//!
//! 1. **Deterministic span-tree campaign** — a seeded multi-client
//!    workload (plus one crafted panicking request and one crafted
//!    over-deadline request) is pushed through
//!    [`drone_serve::handle_batch_traced`] in-process against a sim
//!    clock. Every request records a span tree; the artifact holds
//!    only scheduling-independent facts about them: tree shapes, span
//!    counts, per-stage cache attribution (`hit`/`coalesced`/`miss`
//!    tallies that must *exactly* match the explorer cache counters),
//!    exact outcome tallies, and the first tree in full deterministic
//!    form.
//! 2. **Live introspection run** — client threads with distinct trace
//!    seeds drive a loopback server while `stats` and `trace` wire
//!    requests are answered mid-workload; afterwards one span tree is
//!    fetched back by its client-stamped trace id. Wall-clock numbers
//!    stay in the text report; the artifact keeps only deterministic
//!    counts, so `BENCH_trace.json` is byte-identical at `--threads 1`
//!    and `--threads 4` and CI diffs exactly that.

use super::serve_figs::fnv_digest;
use crate::experiments::Report;
use crate::table::{f, Table};
use drone_components::battery::CellCount;
use drone_explorer::{Explorer, GridRange, Objective, Query, QueryLimits, QueryRanges};
use drone_serve::protocol::{
    handle_batch_traced, request_to_json, request_to_json_traced, BatchPolicy, BatchTracing,
    ReplySlot,
};
use drone_serve::{Client, ClientConfig, Server, ServerConfig, Workload};
use drone_telemetry::trace::Trace;
use drone_telemetry::{derive_trace_id, id_hex, Clock, Json, Registry, TraceRing};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 7;
const PHASE_A_CLIENTS: u64 = 2;
const PHASE_A_REQUESTS: usize = 10;
const PHASE_A_BATCH: usize = 8;
/// Just above the costliest workload query (~141 units), so only the
/// crafted sweep below sheds.
const COST_DEADLINE: u64 = 150;
/// A wheelbase no workload grid can produce (the palette yields
/// multiples of 50 and their midpoints), pinned by the crafted
/// poisoned request and asserted against in the eval hook.
const POISONED_WHEELBASE: f64 = 333.0;
const PHASE_B_CLIENTS: u64 = 3;
const PHASE_B_REQUESTS: usize = 12;
const PHASE_B_PROBE_ROUNDS: usize = 3;

/// A crafted single-point query pinned to the poisoned wheelbase: its
/// evaluation panics in the hook, exercising the internal-error span
/// path.
fn poisoned_query() -> Query {
    Query::new(
        "poisoned",
        QueryRanges {
            wheelbase_mm: GridRange::fixed(POISONED_WHEELBASE),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::fixed(2000.0),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MaxFlightTime,
    )
}

/// A crafted sweep whose worst-case budget (9 x 9 x 3 = 243 points)
/// exceeds the phase-A cost deadline, exercising the shed span path.
fn over_deadline_query() -> Query {
    Query::new(
        "over-deadline",
        QueryRanges {
            wheelbase_mm: GridRange::new(150.0, 550.0, 9),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(1000.0, 5000.0, 9),
            compute_power_w: GridRange::new(2.0, 10.0, 3),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MaxFlightTime,
    )
}

/// The scheduling-independent facts about one span tree.
fn trace_facts(trace: &Trace) -> Json {
    let outcome = trace
        .root_tag("outcome")
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_owned();
    Json::obj()
        .with("trace_id", id_hex(trace.trace_id))
        .with("spans", trace.span_count())
        .with("depth", trace.depth())
        .with("outcome", outcome)
        .with("hits", trace.count_tagged("cache", "hit"))
        .with("coalesced", trace.count_tagged("cache", "coalesced"))
        .with("misses", trace.count_tagged("cache", "miss"))
}

/// Phase A: the seeded + crafted request stream through the traced
/// batch handler, in-process, on a sim clock.
fn deterministic_campaign() -> (Json, String) {
    super::chaos_figs::silence_poison_panics();
    let engine = Explorer::with_default_threads().with_eval_hook(Arc::new(|q| {
        assert!(
            (q.wheelbase_mm - POISONED_WHEELBASE).abs() > 1e-9,
            "trace campaign: poisoned wheelbase"
        );
    }));
    let threads = engine.threads();
    let ring = TraceRing::new(64);
    let tracing = BatchTracing {
        ring: &ring,
        clock: Clock::sim(),
        seed: SEED,
    };

    let mut lines: Vec<String> = Vec::new();
    for client in 0..PHASE_A_CLIENTS {
        let mut workload = Workload::new(SEED, client);
        for _ in 0..PHASE_A_REQUESTS {
            let mut line = workload.next_request_line();
            line.truncate(line.trim_end().len());
            lines.push(line);
        }
    }
    // One client-stamped poisoned request, one unstamped over-deadline
    // request (its trace id is server-derived from the seed).
    lines.push(
        request_to_json_traced(900_001, derive_trace_id(SEED, 900_001), &poisoned_query()).render(),
    );
    lines.push(request_to_json(900_002, &over_deadline_query()).render());

    let limits = QueryLimits::default();
    let policy = BatchPolicy {
        cost_deadline: Some(COST_DEADLINE),
    };
    let mut replies: Vec<String> = Vec::new();
    let mut outcome_totals = drone_serve::BatchOutcome::default();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    for batch in refs.chunks(PHASE_A_BATCH) {
        let (slots, outcome) = handle_batch_traced(&engine, batch, &limits, policy, &tracing);
        for slot in slots {
            match slot {
                ReplySlot::Line(line) => replies.push(line),
                ReplySlot::Admin { .. } => unreachable!("no introspection in phase A"),
            }
        }
        outcome_totals.answered += outcome.answered;
        outcome_totals.internal_errors += outcome.internal_errors;
        outcome_totals.deadline_sheds += outcome.deadline_sheds;
        outcome_totals.protocol_errors += outcome.protocol_errors;
        outcome_totals.query_errors += outcome.query_errors;
        outcome_totals.admin_requests += outcome.admin_requests;
        outcome_totals.cost_units += outcome.cost_units;
    }

    let traces = ring.last(ring.len());
    let mut per_trace = Json::arr();
    let (mut hits, mut coalesced, mut misses, mut spans_total) = (0u64, 0u64, 0u64, 0u64);
    let (mut ok, mut internal, mut shed) = (0u64, 0u64, 0u64);
    let (mut eval_size, mut eval_power) = (0u64, 0u64);
    for trace in &traces {
        hits += trace.count_tagged("cache", "hit") as u64;
        coalesced += trace.count_tagged("cache", "coalesced") as u64;
        misses += trace.count_tagged("cache", "miss") as u64;
        spans_total += trace.span_count() as u64;
        eval_size += trace.count_named("eval.size") as u64;
        eval_power += trace.count_named("eval.power") as u64;
        match trace.root_tag("outcome").and_then(Json::as_str) {
            Some("ok") => ok += 1,
            Some("internal_error") => internal += 1,
            Some("deadline_exceeded") => shed += 1,
            other => panic!("untagged trace outcome: {other:?}"),
        }
        per_trace.push(trace_facts(trace));
    }
    let engine_hits = engine.cache().hit_count();
    let engine_misses = engine.cache().miss_count();
    let digest = fnv_digest(&mut replies);

    let metrics = Json::obj()
        .with(
            "workload",
            Json::obj()
                .with("seed", SEED)
                .with("clients", PHASE_A_CLIENTS)
                .with("requests_per_client", PHASE_A_REQUESTS)
                .with("crafted_requests", 2.0)
                .with("cost_deadline", COST_DEADLINE),
        )
        .with(
            "requests",
            Json::obj()
                .with("total", lines.len())
                .with("ok", outcome_totals.answered)
                .with("internal_errors", outcome_totals.internal_errors)
                .with("deadline_sheds", outcome_totals.deadline_sheds)
                .with("cost_units", outcome_totals.cost_units),
        )
        .with(
            "spans",
            Json::obj()
                .with("traces_completed", ring.completed())
                .with("dropped", ring.dropped_spans())
                .with("total", spans_total)
                .with("eval_size", eval_size)
                .with("eval_power", eval_power)
                .with(
                    "outcomes",
                    Json::obj()
                        .with("ok", ok)
                        .with("internal_error", internal)
                        .with("deadline_exceeded", shed),
                ),
        )
        .with(
            "cache_attribution",
            Json::obj()
                .with("span_hits", hits)
                .with("span_coalesced", coalesced)
                .with("span_misses", misses)
                .with("engine_hits", engine_hits)
                .with("engine_misses", engine_misses)
                .with("hits_match", hits + coalesced == engine_hits)
                .with("misses_match", misses == engine_misses),
        )
        .with("per_trace", per_trace)
        .with(
            "example_trace",
            traces
                .first()
                .expect("campaign traces")
                .deterministic_json(),
        )
        .with("reply_digest", digest.clone());

    let mut text = format!(
        "phase A — deterministic span-tree campaign ({threads}-thread engine, sim clock)\n"
    );
    text.push_str(&format!(
        "  {} requests ({} ok, {} internal_error, {} deadline_exceeded), {} traces, {} spans, 0 dropped\n",
        lines.len(),
        outcome_totals.answered,
        outcome_totals.internal_errors,
        outcome_totals.deadline_sheds,
        ring.completed(),
        spans_total,
    ));
    let mut table = Table::new(vec!["stage", "spans", "engine counter", "match"]);
    table.row(vec![
        "cache hit (+coalesced)".into(),
        f((hits + coalesced) as f64, 0),
        f(engine_hits as f64, 0),
        (hits + coalesced == engine_hits).to_string(),
    ]);
    table.row(vec![
        "cache miss".into(),
        f(misses as f64, 0),
        f(engine_misses as f64, 0),
        (misses == engine_misses).to_string(),
    ]);
    table.row(vec![
        "eval.size leaves".into(),
        f(eval_size as f64, 0),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "eval.power leaves".into(),
        f(eval_power as f64, 0),
        "-".into(),
        "-".into(),
    ]);
    text.push_str(&table.render());
    text.push_str(&format!("  reply digest: {digest}\n"));
    (metrics, text)
}

/// Phase B: a live loopback server answering `stats` and `trace` wire
/// requests mid-workload, traced end to end from resilient clients.
fn live_introspection() -> (Json, String) {
    let registry = Registry::with_wall_clock();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(&registry);
    let config = ServerConfig {
        workers: 2,
        trace_seed: SEED,
        trace_capacity: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, config, &registry).expect("bind loopback server");
    let addr = server.addr();

    let clients: Vec<std::thread::JoinHandle<Vec<String>>> = (0..PHASE_B_CLIENTS)
        .map(|c| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                // Distinct trace seeds keep the clients' trace ids
                // disjoint while staying derivable by the artifact.
                let mut client = Client::new(
                    addr,
                    ClientConfig {
                        trace_seed: SEED ^ c,
                        ..ClientConfig::default()
                    },
                    &registry,
                );
                let mut workload = Workload::new(SEED, c);
                (0..PHASE_B_REQUESTS)
                    .map(|_| {
                        let success = client.call(&workload.next_query()).expect("traced call");
                        success.reply.render()
                    })
                    .collect()
            })
        })
        .collect();

    // The introspection plane, probed from the side mid-workload.
    let mut probe = Client::new(addr, ClientConfig::default(), &registry);
    let mut probes_ok = 0usize;
    for _ in 0..PHASE_B_PROBE_ROUNDS {
        let stats = probe.stats().expect("stats mid-workload");
        assert_eq!(stats.reply.get("ok"), Some(&Json::Bool(true)));
        let fetched = probe.fetch_trace(derive_trace_id(SEED, 1)).expect("trace");
        assert_eq!(fetched.reply.get("ok"), Some(&Json::Bool(true)));
        probes_ok += 2;
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut replies: Vec<String> = Vec::new();
    for client in clients {
        replies.extend(client.join().expect("client thread"));
    }
    let mut cost_units_total = 0u64;
    for line in &replies {
        let doc = Json::parse(line).expect("reply is JSON");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
        cost_units_total += doc
            .get("answer")
            .and_then(|a| a.get("cost_units"))
            .and_then(Json::as_f64)
            .expect("cost units") as u64;
    }

    // After the workload: fetch client 0's first span tree back by its
    // stamped id (client 0's trace seed is SEED ^ 0 == SEED), then take
    // the final stats snapshot.
    let wanted = derive_trace_id(SEED, 1);
    let fetched = probe.fetch_trace(wanted).expect("fetch by id");
    let traces = fetched
        .reply
        .get("traces")
        .and_then(Json::as_arr)
        .expect("traces array");
    assert_eq!(traces.len(), 1, "stamped trace must be retained");
    let fetched_spans = traces[0]
        .get("spans")
        .and_then(Json::as_f64)
        .expect("span count");
    let final_stats = probe.stats().expect("final stats");
    let wall_batches = registry.histogram("serve.request.latency_s").snapshot();
    probes_ok += 2;

    let drain = server.drain();
    let requests = registry.counter("serve.requests").get();
    let admin = registry.counter("serve.admin_requests").get();
    let panics = registry.counter("serve.panics_caught").get();
    let digest = fnv_digest(&mut replies);

    let metrics = Json::obj()
        .with(
            "workload",
            Json::obj()
                .with("seed", SEED)
                .with("clients", PHASE_B_CLIENTS)
                .with("requests_per_client", PHASE_B_REQUESTS),
        )
        .with(
            "requests",
            Json::obj()
                .with("total", requests)
                .with("answered", replies.len())
                .with("admin", admin)
                .with("panics_caught", panics)
                .with("cost_units", cost_units_total),
        )
        .with(
            "fetched_trace",
            Json::obj()
                .with("trace_id", id_hex(wanted))
                .with("spans", fetched_spans),
        )
        .with(
            "drain",
            Json::obj()
                .with("threads_joined", drain.threads_joined)
                .with("abandoned_connections", drain.abandoned_connections)
                .with("clean", drain.clean),
        )
        .with("reply_digest", digest.clone());

    let queue_depth = final_stats
        .reply
        .get("stats")
        .and_then(|s| s.get("queue_depth"))
        .and_then(Json::as_f64)
        .unwrap_or(-1.0);
    let mut text = format!(
        "phase B — live introspection plane ({} clients x {} requests, {} workers)\n",
        PHASE_B_CLIENTS, PHASE_B_REQUESTS, 2
    );
    text.push_str(&format!(
        "  {requests} requests served ({} answered, {admin} introspection, {panics} panics); {probes_ok} probes all ok\n",
        replies.len(),
    ));
    text.push_str(&format!(
        "  trace {} fetched back: {fetched_spans} spans; final queue depth {queue_depth}\n",
        id_hex(wanted),
    ));
    text.push_str(&format!(
        "  wall-clock: {} batches timed (values in telemetry, not in the artifact)\n",
        wall_batches.count()
    ));
    text.push_str(&format!(
        "  drain: {} thread(s) joined, clean={}\n",
        drain.threads_joined, drain.clean
    ));
    text.push_str(&format!("  reply digest: {digest}\n"));
    (metrics, text)
}

/// Runs both phases and reports the deterministic tracing facts.
pub fn trace() -> Report {
    let (phase_a, text_a) = deterministic_campaign();
    let (phase_b, text_b) = live_introspection();
    let text = format!(
        "causal tracing + live introspection across the serving stack\n\n{text_a}\n{text_b}"
    );
    let metrics = Json::obj()
        .with("phase_a", phase_a)
        .with("phase_b", phase_b);
    Report::new(text, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(doc: &Json, path: &[&str]) -> f64 {
        let mut cursor = doc;
        for key in path {
            cursor = cursor.get(key).unwrap_or_else(|| panic!("missing {key}"));
        }
        cursor
            .as_f64()
            .unwrap_or_else(|| panic!("{path:?} not a number"))
    }

    #[test]
    fn trace_campaign_attributes_every_span_and_outcome() {
        let report = trace();
        let m = &report.metrics;
        let total = (PHASE_A_CLIENTS as usize * PHASE_A_REQUESTS + 2) as f64;
        assert_eq!(num(m, &["phase_a", "requests", "total"]), total);
        assert_eq!(num(m, &["phase_a", "requests", "internal_errors"]), 1.0);
        assert_eq!(num(m, &["phase_a", "requests", "deadline_sheds"]), 1.0);
        assert_eq!(num(m, &["phase_a", "spans", "traces_completed"]), total);
        assert_eq!(num(m, &["phase_a", "spans", "dropped"]), 0.0);
        assert!(num(m, &["phase_a", "spans", "total"]) > total);
        assert_eq!(num(m, &["phase_a", "spans", "outcomes", "ok"]), total - 2.0);
        let attribution = m.get("phase_a").unwrap().get("cache_attribution").unwrap();
        assert_eq!(attribution.get("hits_match"), Some(&Json::Bool(true)));
        assert_eq!(attribution.get("misses_match"), Some(&Json::Bool(true)));

        let answered = (PHASE_B_CLIENTS as usize * PHASE_B_REQUESTS) as f64;
        assert_eq!(num(m, &["phase_b", "requests", "answered"]), answered);
        assert_eq!(num(m, &["phase_b", "requests", "panics_caught"]), 0.0);
        assert_eq!(num(m, &["phase_b", "requests", "admin"]), 8.0);
        assert!(num(m, &["phase_b", "fetched_trace", "spans"]) > 1.0);
        assert_eq!(
            m.get("phase_b").unwrap().get("drain").unwrap().get("clean"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn trace_metrics_are_thread_count_invariant() {
        drone_explorer::set_default_threads(1);
        let serial = trace().metrics.render_pretty();
        drone_explorer::set_default_threads(3);
        let parallel = trace().metrics.render_pretty();
        drone_explorer::set_default_threads(0);
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
    }
}
