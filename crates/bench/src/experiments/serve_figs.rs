//! The `serve` experiment: the batched DSE query server under a
//! deterministic multi-client workload, plus a staged overload drill.
//!
//! Two phases against one live loopback server:
//!
//! 1. **Overload drill** — workers paused, connections opened until
//!    the bounded queue fills; the surplus must be shed with a
//!    structured `overloaded` reply, then the admitted backlog drains
//!    once workers resume. Accept order is FIFO, so the shed count is
//!    exact, not statistical.
//! 2. **Throughput run** — N client threads each pipeline a seeded
//!    [`Workload`] stream and read back one reply per request.
//!
//! The JSON artifact holds only scheduling-independent numbers:
//! request counts, per-request *cost units* (grid points dispatched —
//! the sim-deterministic latency proxy), the exact shed/error
//! counters, drain stats and an FNV digest of the sorted ok replies.
//! `BENCH_serve.json` is therefore byte-identical at `--threads 1`
//! and `--threads 4`; CI diffs exactly that. Wall-clock latency lives
//! in the `serve.request.latency_s` histogram and is reported as a
//! count only.

use crate::experiments::Report;
use crate::table::{f, Table};
use drone_explorer::Explorer;
use drone_serve::{Server, ServerConfig, Workload};
use drone_telemetry::{Histogram, Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const SEED: u64 = 7;
const CLIENTS: u64 = 3;
const REQUESTS_PER_CLIENT: usize = 12;
const DRILL_QUEUE_CAPACITY: usize = 4;
const DRILL_OVERFLOW: usize = 3;

/// FNV-1a over the sorted reply lines: a strong, order-independent
/// fingerprint that any two runs (at any thread count) must share.
/// Shared with the chaos campaign (`chaos_figs`).
pub(crate) fn fnv_digest(lines: &mut [String]) -> String {
    lines.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for byte in line.bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// One pipelined client: write every request, half-close, read every
/// reply line back.
fn run_client(addr: std::net::SocketAddr, client: u64) -> Vec<String> {
    let mut workload = Workload::new(SEED, client);
    let mut stream = TcpStream::connect(addr).expect("connect to serve benchmark server");
    let mut payload = String::new();
    for _ in 0..REQUESTS_PER_CLIENT {
        payload.push_str(&workload.next_request_line());
    }
    stream
        .write_all(payload.as_bytes())
        .expect("write workload");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read reply line"))
        .collect()
}

/// Workers paused, the queue admits exactly `queue_capacity`
/// connections and sheds the rest with structured replies; resuming
/// drains the backlog. Returns (admitted, shed) counts.
fn overload_drill(server: &Server) -> (usize, usize) {
    server.pause_workers();
    let mut admitted: Vec<TcpStream> = Vec::new();
    let mut shed = 0usize;
    for i in 0..DRILL_QUEUE_CAPACITY + DRILL_OVERFLOW {
        let stream = TcpStream::connect(server.addr()).expect("connect during drill");
        if i < DRILL_QUEUE_CAPACITY {
            let mut workload = Workload::new(SEED + 1, i as u64);
            let mut stream = stream;
            stream
                .write_all(workload.next_request_line().as_bytes())
                .expect("write drill request");
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close drill connection");
            admitted.push(stream);
        } else {
            // Overflow connections are shed at accept: one overloaded
            // line, then close. Block until that reply arrives so the
            // drill stays in lockstep with the acceptor.
            let mut line = String::new();
            BufReader::new(stream)
                .read_line(&mut line)
                .expect("read shed reply");
            let doc = Json::parse(&line).expect("shed reply is JSON");
            assert_eq!(
                doc.get("error").and_then(|e| e.get("kind")),
                Some(&Json::Str("overloaded".into())),
                "shed reply must be structured: {line}"
            );
            shed += 1;
        }
    }
    server.resume_workers();
    let drained = admitted.len();
    for stream in admitted {
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("read drill reply");
        let doc = Json::parse(&line).expect("drill reply is JSON");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
    }
    (drained, shed)
}

/// Runs the server benchmark and reports deterministic throughput,
/// cost-unit latency quantiles, shed and drain behaviour.
pub fn serve() -> Report {
    let registry = Registry::with_wall_clock();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(&registry);
    let engine_threads = engine.threads();
    let config = ServerConfig {
        workers: 2,
        queue_capacity: DRILL_QUEUE_CAPACITY,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, config, &registry).expect("bind loopback server");

    let (drill_admitted, drill_shed) = overload_drill(&server);

    let clients: Vec<std::thread::JoinHandle<Vec<String>>> = (0..CLIENTS)
        .map(|c| {
            let addr = server.addr();
            std::thread::spawn(move || run_client(addr, c))
        })
        .collect();
    let mut replies: Vec<String> = Vec::new();
    for client in clients {
        replies.extend(client.join().expect("client thread"));
    }

    // Per-request cost units come from the replies themselves (keyed
    // by the globally unique request ids), so the latency histogram is
    // identical however the server interleaved the work.
    let mut by_id: Vec<(u64, u64)> = replies
        .iter()
        .map(|line| {
            let doc = Json::parse(line).expect("reply is JSON");
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
            let id = doc.get("id").and_then(Json::as_f64).expect("reply id") as u64;
            let cost = doc
                .get("answer")
                .and_then(|a| a.get("cost_units"))
                .and_then(Json::as_f64)
                .expect("reply cost units") as u64;
            (id, cost)
        })
        .collect();
    by_id.sort();
    let mut latency_units = Histogram::new();
    let mut cost_total = 0u64;
    for &(_, cost) in &by_id {
        latency_units.record(cost as f64);
        cost_total += cost;
    }
    let digest = fnv_digest(&mut replies);

    let stats = server.drain();
    let requests = registry.counter("serve.requests").get();
    let sheds = registry.counter("serve.sheds").get();
    let protocol_errors = registry.counter("serve.errors.protocol").get();
    let query_errors = registry.counter("serve.errors.query").get();
    let wall_latency = registry.histogram("serve.request.latency_s").snapshot();

    let quantile = |q: f64| latency_units.quantile(q).unwrap_or(0.0);
    let mut out = format!(
        "DSE query server — {} worker(s) over a {}-thread engine\n\n",
        config.workers, engine_threads
    );
    out.push_str(&format!(
        "overload drill: {drill_admitted} admitted, {drill_shed} shed with structured replies\n"
    ));
    out.push_str(&format!(
        "throughput run: {CLIENTS} clients x {REQUESTS_PER_CLIENT} pipelined requests, {} replies\n",
        by_id.len()
    ));
    out.push_str(&format!(
        "served {requests} requests total; {protocol_errors} protocol errors, {query_errors} query errors\n\n"
    ));
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["requests answered".into(), f(by_id.len() as f64, 0)]);
    table.row(vec!["cost units total".into(), f(cost_total as f64, 0)]);
    table.row(vec!["cost units p50".into(), f(quantile(0.5), 0)]);
    table.row(vec!["cost units p99".into(), f(quantile(0.99), 0)]);
    table.row(vec![
        "cost units max".into(),
        f(latency_units.max().unwrap_or(0.0), 0),
    ]);
    table.row(vec!["connections shed".into(), f(drill_shed as f64, 0)]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nwall-clock latency histogram: {} batches timed (values in telemetry, not printed)\n",
        wall_latency.count()
    ));
    out.push_str(&format!(
        "drain: {} thread(s) joined, clean={}\n",
        stats.threads_joined, stats.clean
    ));
    out.push_str(&format!("reply digest: {digest}\n"));

    let metrics = Json::obj()
        .with(
            "workload",
            Json::obj()
                .with("seed", SEED)
                .with("clients", CLIENTS)
                .with("requests_per_client", REQUESTS_PER_CLIENT),
        )
        .with(
            "throughput",
            Json::obj()
                .with("requests", requests)
                .with("cost_units_total", cost_total),
        )
        .with(
            "latency_units",
            Json::obj()
                .with("count", latency_units.count())
                .with("p50", quantile(0.5))
                .with("p99", quantile(0.99))
                .with("max", latency_units.max().unwrap_or(0.0)),
        )
        .with(
            "shed",
            Json::obj()
                .with("admitted", drill_admitted)
                .with("connections_shed", drill_shed)
                .with("sheds_counter", sheds),
        )
        .with(
            "errors",
            Json::obj()
                .with("protocol", protocol_errors)
                .with("query", query_errors),
        )
        .with(
            "drain",
            Json::obj()
                .with("threads_joined", stats.threads_joined)
                .with("abandoned_connections", stats.abandoned_connections)
                .with("clean", stats.clean),
        )
        .with("reply_digest", digest);
    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_answers_everything_and_sheds_exactly_the_overflow() {
        let report = serve();
        let m = &report.metrics;
        let num = |path: &[&str]| {
            let mut doc = m;
            for key in path {
                doc = doc.get(key).unwrap();
            }
            doc.as_f64().unwrap()
        };
        assert_eq!(
            num(&["throughput", "requests"]),
            (CLIENTS as usize * REQUESTS_PER_CLIENT + DRILL_QUEUE_CAPACITY) as f64
        );
        assert_eq!(
            num(&["latency_units", "count"]),
            (CLIENTS as usize * REQUESTS_PER_CLIENT) as f64
        );
        assert!(num(&["latency_units", "p99"]) >= num(&["latency_units", "p50"]));
        assert_eq!(num(&["shed", "connections_shed"]), DRILL_OVERFLOW as f64);
        assert_eq!(num(&["shed", "sheds_counter"]), DRILL_OVERFLOW as f64);
        assert_eq!(num(&["errors", "protocol"]), 0.0);
        assert_eq!(num(&["errors", "query"]), 0.0);
        assert_eq!(
            num(&["drain", "threads_joined"]),
            3.0,
            "2 workers + acceptor"
        );
        assert_eq!(
            m.get("drain").unwrap().get("clean"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn serve_metrics_are_thread_count_invariant() {
        drone_explorer::set_default_threads(1);
        let serial = serve().metrics.render_pretty();
        drone_explorer::set_default_threads(3);
        let parallel = serve().metrics.render_pretty();
        drone_explorer::set_default_threads(0);
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
    }
}
