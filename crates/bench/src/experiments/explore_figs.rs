//! The `explore` experiment: the batch query service over the paper's
//! design space, exercised end to end.
//!
//! Four queries run through one memoizing [`Explorer`]: the ISSUE's
//! running example (max flight time at ≤ 450 mm with ≥ 200 g payload
//! and a ≥ 20 W computer), a lightest-drone search under a flight-time
//! floor, a compute-share query whose grid is a strict subset of the
//! previous one (every point a cache hit), and a warm re-run of the
//! first query (every point, including its refinement rounds, a hit).
//!
//! The JSON metrics contain only thread-count-independent numbers —
//! frontier members, incumbents, evaluation/cache counters — so the
//! `BENCH_explore.json` artifact is byte-identical at `--threads 1`
//! and `--threads 4`; CI diffs exactly that. Wall-clock latency lives
//! in the text report only.

use crate::experiments::Report;
use crate::table::{f, pct, Table};
use drone_components::battery::CellCount;
use drone_dse::eval::DesignEval;
use drone_explorer::{
    Constraints, Explorer, GridRange, Objective, Query, QueryAnswer, QueryRanges,
};
use drone_telemetry::{Json, Registry};

fn max_flight_query() -> Query {
    // "Max flight time for wheelbase <= 450 mm, payload >= 200 g,
    // compute >= 20 W."
    Query::new(
        "max-flight-450",
        QueryRanges {
            wheelbase_mm: GridRange::new(250.0, 450.0, 3),
            cells: vec![CellCount::S3, CellCount::S6],
            capacity_mah: GridRange::new(2000.0, 8000.0, 7),
            compute_power_w: GridRange::new(20.0, 30.0, 3),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::new(200.0, 400.0, 3),
        },
        Objective::MaxFlightTime,
    )
}

fn lightest_query() -> Query {
    Query::new(
        "lightest-15min",
        QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 800.0, 8),
            cells: vec![CellCount::S1, CellCount::S3, CellCount::S6],
            capacity_mah: GridRange::new(1000.0, 8000.0, 8),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MinWeight,
    )
    .with_constraints(Constraints {
        min_flight_time_min: Some(15.0),
        ..Constraints::default()
    })
}

fn lean_compute_query() -> Query {
    // Deliberately a strict subset of `lightest_query`'s grid (3S only,
    // same wheelbase/capacity lattice): every point is a cache hit.
    Query::new(
        "lean-compute-20min",
        QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 800.0, 8),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(1000.0, 8000.0, 8),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MinComputeShare,
    )
    .with_constraints(Constraints {
        min_flight_time_min: Some(20.0),
        ..Constraints::default()
    })
    .with_refinement(0, 0)
}

fn eval_json(eval: &DesignEval) -> Json {
    Json::obj()
        .with("wheelbase_mm", eval.query.wheelbase_mm)
        .with("cells", eval.query.cells.to_string())
        .with("capacity_mah", eval.query.capacity_mah)
        .with("compute_w", eval.query.compute_power_w)
        .with("payload_g", eval.query.payload_g)
        .with("weight_g", eval.weight_g)
        .with("flight_min", eval.flight_time_min)
        .with("hover_w", eval.hover_power_w)
        .with("compute_share_hover", eval.compute_share_hover)
}

fn frontier_sorted(answer: &QueryAnswer) -> Vec<&DesignEval> {
    let mut members: Vec<&DesignEval> = answer.frontier.iter().collect();
    members.sort_by(|a, b| {
        b.flight_time_min
            .total_cmp(&a.flight_time_min)
            .then(a.weight_g.total_cmp(&b.weight_g))
    });
    members
}

/// Runs the batch service and reports frontiers, incumbents and cache
/// behaviour.
pub fn explore() -> Report {
    let registry = Registry::with_wall_clock();
    let mut explorer = Explorer::with_default_threads();
    explorer.attach_telemetry(&registry);

    let mut warm = max_flight_query();
    warm.name = "max-flight-450-warm".to_owned();
    let queries = [
        max_flight_query(),
        lightest_query(),
        lean_compute_query(),
        warm,
    ];
    let answers = explorer.run_batch(&queries);

    let mut out = format!(
        "Design-space exploration service — {} worker thread(s)\n",
        explorer.threads()
    );
    let mut metrics = Json::obj();
    let mut queries_json = Json::arr();
    for answer in &answers {
        out.push_str(&format!(
            "\nquery {}: {} points over {} round(s), {} feasible / {} infeasible\n",
            answer.name, answer.evaluated, answer.rounds, answer.feasible, answer.infeasible
        ));
        match &answer.best {
            Some(best) => out.push_str(&format!(
                "  best: {} -> {:.1} min, {:.0} g, {} compute\n",
                best.query,
                best.flight_time_min,
                best.weight_g,
                pct(best.compute_share_hover)
            )),
            None => out.push_str("  best: no feasible design in range\n"),
        }
        out.push_str(&format!(
            "  Pareto frontier: {} design(s)\n",
            answer.frontier.len()
        ));

        let mut query_json = Json::obj()
            .with("name", answer.name.as_str())
            .with("evaluated", answer.evaluated)
            .with("feasible", answer.feasible)
            .with("infeasible", answer.infeasible)
            .with("rounds", answer.rounds)
            .with("frontier_size", answer.frontier.len());
        if let Some(best) = &answer.best {
            query_json.insert("best", eval_json(best));
        }
        let mut frontier_json = Json::arr();
        for member in frontier_sorted(answer) {
            frontier_json.push(eval_json(member));
        }
        query_json.insert("frontier", frontier_json);
        queries_json.push(query_json);
    }
    metrics.insert("queries", queries_json);

    // The headline Pareto table: the ISSUE query's frontier.
    out.push_str("\nPareto frontier of max-flight-450 (flight ^, weight v, compute share v):\n");
    let mut table = Table::new(vec![
        "wheelbase (mm)",
        "cells",
        "capacity (mAh)",
        "compute (W)",
        "payload (g)",
        "weight (g)",
        "flight (min)",
        "compute share",
    ]);
    for member in frontier_sorted(&answers[0]) {
        table.row(vec![
            f(member.query.wheelbase_mm, 0),
            member.query.cells.to_string(),
            f(member.query.capacity_mah, 0),
            f(member.query.compute_power_w, 0),
            f(member.query.payload_g, 0),
            f(member.weight_g, 0),
            f(member.flight_time_min, 1),
            pct(member.compute_share_hover),
        ]);
    }
    out.push_str(&table.render());

    let cache = explorer.cache();
    out.push_str(&format!(
        "\ncache: {} hits / {} misses / {} evictions, {} resident entries\n",
        cache.hit_count(),
        cache.miss_count(),
        cache.eviction_count(),
        cache.len()
    ));
    // Latency *values* are wall clock and would break the repo's
    // byte-identical-stdout determinism check; report counts here and
    // leave the timings in the `explorer.query.latency_s` histogram.
    let latency = registry.histogram("explorer.query.latency_s").snapshot();
    out.push_str(&format!(
        "query latency histogram: {} queries timed (values in telemetry, not printed)\n",
        latency.count()
    ));
    metrics.insert(
        "cache",
        Json::obj()
            .with("hits", cache.hit_count())
            .with("misses", cache.miss_count())
            .with("evictions", cache.eviction_count())
            .with("entries", cache.len()),
    );
    // Deterministic slice of the query histograms (counts, not times).
    metrics.insert(
        "query_histograms",
        Json::obj().with("latency_count", latency.count()).with(
            "points_total",
            registry.histogram("explorer.query.points").snapshot().sum(),
        ),
    );

    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_reports_frontier_and_cache_hits() {
        let report = explore();
        let queries = report
            .metrics
            .get("queries")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(queries.len(), 4);
        let first = &queries[0];
        assert!(first.get("frontier_size").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(
            first.get("best").is_some(),
            "ISSUE query must be satisfiable"
        );
        // The warm re-run answers identically to the cold run.
        let warm = &queries[3];
        assert_eq!(
            first.get("best").unwrap().render(),
            warm.get("best").unwrap().render()
        );
        assert_eq!(
            first.get("frontier").unwrap().render(),
            warm.get("frontier").unwrap().render()
        );
        let cache = report.metrics.get("cache").unwrap();
        assert!(cache.get("hits").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(cache.get("evictions").and_then(Json::as_f64).unwrap() == 0.0);
    }

    #[test]
    fn explore_metrics_are_thread_count_invariant() {
        drone_explorer::set_default_threads(1);
        let serial = explore().metrics.render_pretty();
        drone_explorer::set_default_threads(3);
        let parallel = explore().metrics.render_pretty();
        drone_explorer::set_default_threads(0);
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
    }
}
