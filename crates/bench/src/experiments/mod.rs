//! One module per group of paper artifacts.

mod arch_figs;
mod catalog_figs;
mod chaos_figs;
mod control_figs;
mod explore_figs;
mod extension_figs;
pub mod fault_figs;
mod optimize_figs;
mod roofline_figs;
mod serve_figs;
mod serve_scale_figs;
mod slam_figs;
mod space_figs;
mod trace_figs;

pub use arch_figs::{figure15, figure16};
pub use catalog_figs::{figure7, figure8a, figure8b, figure9};
pub use chaos_figs::chaos;
pub use control_figs::{
    deadlines, gust_rejection, inner_loop, roll_overshoot, roll_rise_time, table2,
};
pub use explore_figs::explore;
pub use extension_figs::{fixed_point, lidar_payload, twr_sweep};
pub use fault_figs::faults;
pub use optimize_figs::optimize;
pub use roofline_figs::roofline;
pub use serve_figs::serve;
pub use serve_scale_figs::{serve_scale, set_serve_scale_shards};
pub use slam_figs::{figure17, profile_sequence, table5};
pub use space_figs::{claims, figure10_footprint, figure10_power, figure11, figure14};
pub use trace_figs::trace;

use crate::table::Table;
use drone_telemetry::Json;

/// The result of one experiment run: the human-readable report the
/// `repro` binary prints, plus the same numbers as a JSON document for
/// the `BENCH_<name>.json` artifacts (`repro --json <dir>`).
#[derive(Debug, Clone)]
pub struct Report {
    /// The plain-text report (tables, commentary).
    pub text: String,
    /// Machine-readable metrics; an insertion-ordered [`Json`] object,
    /// so rendering is byte-stable run to run.
    pub metrics: Json,
}

impl Report {
    /// A report whose metrics are a single table.
    pub fn from_table(text: String, table: &Table) -> Report {
        Report {
            text,
            metrics: Json::obj().with("table", table.to_json()),
        }
    }

    /// A report with explicit metrics.
    pub fn new(text: String, metrics: Json) -> Report {
        Report { text, metrics }
    }
}

/// An experiment entry: name, one-line description, runner.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// CLI name (`repro <name>`), also the `BENCH_<name>.json` stem.
    pub name: &'static str,
    /// One-line description for `repro list`.
    pub description: &'static str,
    /// Runs the experiment.
    pub run: fn() -> Report,
}

/// Every experiment in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    fn e(name: &'static str, description: &'static str, run: fn() -> Report) -> Experiment {
        Experiment {
            name,
            description,
            run,
        }
    }
    vec![
        e(
            "fig7",
            "LiPo capacity-to-weight fits per cell configuration",
            figure7,
        ),
        e(
            "fig8a",
            "ESC current-to-weight fits by thermal class",
            figure8a,
        ),
        e(
            "fig8b",
            "frame wheelbase-to-weight fit above 200 mm",
            figure8b,
        ),
        e(
            "fig9",
            "per-motor max current vs basic weight at TWR 2",
            figure9,
        ),
        e(
            "fig10_power",
            "total hover power vs weight per wheelbase sweep",
            figure10_power,
        ),
        e(
            "fig10_footprint",
            "computation share of total power (3 W / 20 W chips)",
            figure10_footprint,
        ),
        e(
            "fig11",
            "commercial small drones: heavy-compute power share",
            figure11,
        ),
        e(
            "fig14",
            "the paper drone's weight breakdown, re-derived",
            figure14,
        ),
        e(
            "fig15",
            "autopilot/SLAM perf-counter interference study",
            figure15,
        ),
        e(
            "fig16",
            "companion-computer and whole-drone power traces",
            figure16,
        ),
        e(
            "fig17",
            "SLAM speedup over RPi per EuRoC sequence (TX2/FPGA)",
            figure17,
        ),
        e(
            "table2",
            "sensor data rates and controller update frequencies",
            table2,
        ),
        e(
            "table5",
            "platform cost comparison for SLAM offload",
            table5,
        ),
        e(
            "claims",
            "the paper's S3.2 headline claims, measured",
            claims,
        ),
        e(
            "inner_loop",
            "inner-loop rate saturation (rise time vs Hz)",
            inner_loop,
        ),
        e(
            "deadlines",
            "deadline misses with SLAM co-located (S5.1)",
            deadlines,
        ),
        e(
            "gust_rejection",
            "PID vs INDI rate-loop gust rejection ablation",
            gust_rejection,
        ),
        e(
            "twr_sweep",
            "TWR sensitivity of the compute power share (S7)",
            twr_sweep,
        ),
        e(
            "lidar",
            "LiDAR payloads shrink the compute share (S3.1)",
            lidar_payload,
        ),
        e(
            "fixed_point",
            "Q16.16 vs f64 Cholesky on BA normal equations",
            fixed_point,
        ),
        e(
            "faults",
            "fault campaign with black-box flight recorder and task histograms",
            faults,
        ),
        e(
            "explore",
            "parallel design-space queries: Pareto frontiers, memoized evaluation",
            explore,
        ),
        e(
            "serve",
            "batched DSE query server: throughput, shed drill, graceful drain",
            serve,
        ),
        e(
            "serve_scale",
            "epoll reactor + sharded scatter/gather: capacity, shard-invariant replies",
            serve_scale,
        ),
        e(
            "optimize",
            "seeded sampling + multi-fidelity search vs the exhaustive grid",
            optimize,
        ),
        e(
            "chaos",
            "seeded network-fault campaign: survival, retries, sheds, panic isolation",
            chaos,
        ),
        e(
            "trace",
            "causal span trees + live stats/trace introspection over the serving stack",
            trace,
        ),
        e(
            "roofline",
            "batched-vs-scalar kernel roofline: arithmetic intensity, GFLOP/s, ceilings",
            roofline,
        ),
    ]
}
