//! One module per group of paper artifacts.

mod arch_figs;
mod catalog_figs;
mod control_figs;
mod extension_figs;
pub mod fault_figs;
mod slam_figs;
mod space_figs;

pub use arch_figs::{figure15, figure16};
pub use catalog_figs::{figure7, figure8a, figure8b, figure9};
pub use control_figs::{
    deadlines, gust_rejection, inner_loop, roll_overshoot, roll_rise_time, table2,
};
pub use extension_figs::{fixed_point, lidar_payload, twr_sweep};
pub use fault_figs::faults;
pub use slam_figs::{figure17, profile_sequence, table5};
pub use space_figs::{claims, figure10_footprint, figure10_power, figure11, figure14};

/// An experiment entry: `(name, runner)`.
pub type Experiment = (&'static str, fn() -> String);

/// Every experiment in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig7", figure7 as fn() -> String),
        ("fig8a", figure8a),
        ("fig8b", figure8b),
        ("fig9", figure9),
        ("fig10_power", figure10_power),
        ("fig10_footprint", figure10_footprint),
        ("fig11", figure11),
        ("fig14", figure14),
        ("fig15", figure15),
        ("fig16", figure16),
        ("fig17", figure17),
        ("table2", table2),
        ("table5", table5),
        ("claims", claims),
        ("inner_loop", inner_loop),
        ("deadlines", deadlines),
        ("gust_rejection", gust_rejection),
        ("twr_sweep", twr_sweep),
        ("lidar", lidar_payload),
        ("fixed_point", fixed_point),
        ("faults", faults),
    ]
}
