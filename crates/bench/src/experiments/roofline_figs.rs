//! The `roofline` experiment: where does the batched evaluation kernel
//! sit relative to the machine's ceilings, and what explains the gap?
//!
//! Four routes evaluate the same 10k-point Figure 10-style grid:
//!
//! * `kernel_serial` — the scalar reference kernel, one
//!   [`drone_dse::eval::evaluate`] call per point;
//! * `kernel_batched` — the struct-of-arrays
//!   [`drone_dse::eval::evaluate_many`] kernel;
//! * `engine_serial_cold` — the pre-batching engine route: one
//!   [`EvalCache::get_or_evaluate`] per point against a cold cache;
//! * `engine_batched_cold` / `engine_batched_threads` — the current
//!   engine path (cache partition + batched kernel) on a cold cache,
//!   single-threaded and at the `--threads` worker count.
//!
//! The artifact splits into a **deterministic core** and a `measured`
//! subsection. The core — batch profile counters, the documented
//! nominal operation model, the derived arithmetic intensity, and an
//! FNV digest proving the serial and batched routes return bit-identical
//! results — is a pure function of the grid, byte-identical at
//! `--threads 1` and `--threads 4` (CI strips `measured` and diffs
//! exactly that). `measured` carries the wall-clock numbers: ns/point,
//! achieved GFLOP/s and GB/s per route, speedups, and a `powf`
//! throughput microprobe that locates the kernel's transcendental
//! ceiling on the host.
//!
//! The operation model is a *nominal* convention, not a hardware
//! counter: each sizing iteration is billed with the FLOPs visible in
//! the source (`powf` at a fixed 25-FLOP convention for its exp/log
//! polynomial core) and each lane touch with its bytes. That is what a
//! whiteboard roofline needs — consistent units on both axes — and it
//! keeps the artifact independent of CPU model and compiler version.

use super::serve_figs::fnv_digest;
use crate::experiments::Report;
use crate::table::{f, Table};
use drone_components::battery::CellCount;
use drone_dse::eval::{evaluate, BatchProfile, DesignQuery, EvalBatch};
use drone_dse::power::PowerModel;
use drone_explorer::{EvalCache, Explorer, GridRange, QueryRanges};
use drone_telemetry::Json;
use std::hint::black_box;
use std::time::Instant;

/// Nominal FLOPs billed per `powf` call (exp/log polynomial core).
const POWF_NOMINAL_FLOPS: u64 = 25;
/// Pass 1 (weight → thrust → shaft → torque): adds, muls, one divide,
/// one sqrt, `powi(3)` as two muls — counted off the source.
const PASS1_FLOPS: u64 = 16;
/// Pass 2 (motor weight): one `powf` plus a mul and a max.
const PASS2_FLOPS: u64 = POWF_NOMINAL_FLOPS + 2;
/// Pass 3 (ESC fit, Eq. 1 update, convergence test).
const PASS3_FLOPS: u64 = 12;
/// One Eq. 1–2 sizing iteration across all three passes.
const FLOPS_PER_SIZING_ITER: u64 = PASS1_FLOPS + PASS2_FLOPS + PASS3_FLOPS;
/// The Eq. 3–7 epilogue per sized lane (power, flight time, shares).
const FLOPS_PER_DERIVE: u64 = 25;
/// Lane bytes touched per sizing iteration: pass 1 reads six f64 lanes
/// and writes two scratch lanes, pass 2 rewrites one, pass 3 reads four
/// and writes two f64 lanes plus two mask bytes.
const BYTES_PER_SIZING_ITER: u64 = (6 + 2 + 2 + 4 + 2) * 8 + 2;
/// Lane bytes to set a point up (13 lanes) and read it back out (~6).
const BYTES_PER_POINT: u64 = 19 * 8;

/// The same grid `benches/explorer.rs` sweeps: 24 wheelbases x 3 cell
/// counts x 24 capacities x 3 compute powers x 2 payloads.
fn sweep_grid() -> Vec<DesignQuery> {
    QueryRanges {
        wheelbase_mm: GridRange::new(100.0, 800.0, 24),
        cells: vec![CellCount::S1, CellCount::S3, CellCount::S6],
        capacity_mah: GridRange::new(1000.0, 8000.0, 24),
        compute_power_w: GridRange::new(3.0, 20.0, 3),
        twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
        payload_g: GridRange::new(0.0, 200.0, 2),
    }
    .grid()
}

/// Renders one evaluation outcome to an exact, order-independent line
/// for the lockstep digest (`f64` bits, not decimal formatting).
fn outcome_line(i: usize, result: &drone_explorer::EvalResult) -> String {
    match result {
        Ok(e) => format!(
            "{i}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}:{:016x}",
            e.weight_g.to_bits(),
            e.hover_power_w.to_bits(),
            e.maneuver_power_w.to_bits(),
            e.flight_time_min.to_bits(),
            e.compute_share_hover.to_bits(),
            e.compute_share_maneuver.to_bits(),
        ),
        Err(err) => format!("{i}:{err}"),
    }
}

/// Best-of-`reps` wall time of `run`, in nanoseconds.
fn best_ns(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// The nominal FLOP/byte totals for one pass over the grid.
fn op_totals(profile: &BatchProfile) -> (u64, u64) {
    let sized = (profile.points - profile.invalid_parameter) as u64;
    let flops = profile.sizing_iterations * FLOPS_PER_SIZING_ITER + sized * FLOPS_PER_DERIVE;
    let bytes = profile.sizing_iterations * BYTES_PER_SIZING_ITER + sized * BYTES_PER_POINT;
    (flops, bytes)
}

/// One measured route: wall time plus the achieved-rate coordinates.
fn mode_json(ns: u64, points: usize, flops: u64, bytes: u64, serial_ns: u64) -> Json {
    let secs = ns as f64 * 1e-9;
    Json::obj()
        .with("ns", ns)
        .with("ns_per_point", ns as f64 / points as f64)
        .with("gflops", flops as f64 * 1e-9 / secs)
        .with("gb_per_s", bytes as f64 * 1e-9 / secs)
        .with("speedup_vs_kernel_serial", serial_ns as f64 / ns as f64)
}

/// Runs the roofline study. See the module docs for the artifact shape.
pub fn roofline() -> Report {
    let grid = sweep_grid();
    let points = grid.len();
    let model = PowerModel::paper_defaults();

    // Deterministic core: profile counters + lockstep digest.
    let batch = EvalBatch::new(&grid);
    let (batched_results, profile) = batch.run_profiled(&model);
    let serial_results: Vec<drone_explorer::EvalResult> = grid.iter().map(evaluate).collect();
    let mut serial_lines: Vec<String> = serial_results
        .iter()
        .enumerate()
        .map(|(i, r)| outcome_line(i, r))
        .collect();
    let mut batched_lines: Vec<String> = batched_results
        .iter()
        .enumerate()
        .map(|(i, r)| outcome_line(i, r))
        .collect();
    let serial_digest = fnv_digest(&mut serial_lines);
    let batched_digest = fnv_digest(&mut batched_lines);
    let (flops, bytes) = op_totals(&profile);
    let iters_per_point = profile.sizing_iterations as f64 / profile.points as f64;
    let intensity = flops as f64 / bytes as f64;

    // Measured routes (wall clock; `measured` is stripped before CI's
    // thread-count byte comparison).
    let serial_ns = best_ns(5, || {
        black_box(grid.iter().map(evaluate).collect::<Vec<_>>());
    });
    let batched_ns = best_ns(5, || {
        black_box(EvalBatch::new(black_box(&grid)).run(&model));
    });
    let engine_serial_ns = best_ns(3, || {
        let cache = EvalCache::with_defaults();
        black_box(
            grid.iter()
                .map(|q| cache.get_or_evaluate(q))
                .collect::<Vec<_>>(),
        );
    });
    let engine_batched_ns = best_ns(3, || {
        black_box(Explorer::new(1).evaluate_points(black_box(&grid)));
    });
    let threads = drone_explorer::default_threads();
    let engine_threads_ns = best_ns(3, || {
        black_box(Explorer::with_default_threads().evaluate_points(black_box(&grid)));
    });

    // `powf` throughput microprobe: independent calls at batch-like
    // argument magnitudes, so the floor reflects pipelined throughput
    // (the batched kernel's pass 2), not the scalar kernel's
    // loop-carried latency chain.
    let torques: Vec<f64> = (0..profile.sizing_iterations)
        .map(|i| 1e-4 + (i % 1000) as f64 * 1e-5)
        .collect();
    let powf_ns = best_ns(5, || {
        let mut acc = 0.0f64;
        for &t in &torques {
            acc += t.powf(0.407);
        }
        black_box(acc);
    });
    let powf_per_call = powf_ns as f64 / profile.sizing_iterations as f64;
    let powf_floor_per_point = powf_ns as f64 / points as f64;

    let metrics = Json::obj()
        .with(
            "grid",
            Json::obj()
                .with("points", points)
                .with("unique_wheelbases", batch.tables().unique_wheelbases()),
        )
        .with(
            "profile",
            Json::obj()
                .with("feasible", profile.feasible)
                .with("invalid_parameter", profile.invalid_parameter)
                .with("diverged", profile.diverged)
                .with("discharge_limited", profile.discharge_limited)
                .with("sizing_iterations", profile.sizing_iterations)
                .with("fixed_point_rounds", profile.fixed_point_rounds)
                .with("iters_per_point", iters_per_point),
        )
        .with(
            "op_model",
            Json::obj()
                .with("flops_per_sizing_iter", FLOPS_PER_SIZING_ITER)
                .with("powf_nominal_flops", POWF_NOMINAL_FLOPS)
                .with("flops_per_derive", FLOPS_PER_DERIVE)
                .with("bytes_per_sizing_iter", BYTES_PER_SIZING_ITER)
                .with("bytes_per_point", BYTES_PER_POINT)
                .with("total_flops", flops)
                .with("total_bytes", bytes)
                .with("arithmetic_intensity_flops_per_byte", intensity),
        )
        .with(
            "lockstep",
            Json::obj()
                .with("serial_digest", serial_digest.clone())
                .with("batched_digest", batched_digest.clone())
                .with("identical", serial_digest == batched_digest),
        )
        .with(
            "measured",
            Json::obj()
                .with("threads", threads)
                .with(
                    "modes",
                    Json::obj()
                        .with(
                            "kernel_serial",
                            mode_json(serial_ns, points, flops, bytes, serial_ns),
                        )
                        .with(
                            "kernel_batched",
                            mode_json(batched_ns, points, flops, bytes, serial_ns),
                        )
                        .with(
                            "engine_serial_cold",
                            mode_json(engine_serial_ns, points, flops, bytes, serial_ns),
                        )
                        .with(
                            "engine_batched_cold",
                            mode_json(engine_batched_ns, points, flops, bytes, serial_ns),
                        )
                        .with(
                            "engine_batched_threads",
                            mode_json(engine_threads_ns, points, flops, bytes, serial_ns),
                        ),
                )
                .with(
                    "powf_ceiling",
                    Json::obj()
                        .with("ns_per_call", powf_per_call)
                        .with("floor_ns_per_point", powf_floor_per_point),
                ),
        );

    let mut text = format!(
        "evaluation-kernel roofline — {points} grid points, {:.2} sizing iterations/point\n\
         nominal work: {:.1} MFLOP / {:.1} MB -> arithmetic intensity {:.2} FLOP/byte\n\
         lockstep: serial and batched digests {} ({serial_digest})\n\n",
        iters_per_point,
        flops as f64 * 1e-6,
        bytes as f64 * 1e-6,
        intensity,
        if serial_digest == batched_digest {
            "match"
        } else {
            "DIFFER"
        },
    );
    let mut table = Table::new(vec![
        "route",
        "ns/point",
        "GFLOP/s",
        "GB/s",
        "speedup vs kernel_serial",
    ]);
    for (name, ns) in [
        ("kernel_serial", serial_ns),
        ("kernel_batched", batched_ns),
        ("engine_serial_cold", engine_serial_ns),
        ("engine_batched_cold", engine_batched_ns),
        (
            match threads {
                1 => "engine_batched_threads (1)",
                _ => "engine_batched_threads",
            },
            engine_threads_ns,
        ),
    ] {
        let secs = ns as f64 * 1e-9;
        table.row(vec![
            name.into(),
            f(ns as f64 / points as f64, 0),
            f(flops as f64 * 1e-9 / secs, 2),
            f(bytes as f64 * 1e-9 / secs, 2),
            f(serial_ns as f64 / ns as f64, 2),
        ]);
    }
    text.push_str(&table.render());
    text.push_str(&format!(
        "\npowf ceiling: {:.0} ns/call at throughput -> {:.0} ns/point floor \
         ({:.2} iterations x one powf each).\n\
         The batched kernel sits {:.1}x above that floor; the remainder is the\n\
         polynomial passes, lane setup and the result gather. The scalar kernel\n\
         cannot approach the floor at all: its fixed point feeds each powf's\n\
         result into the next iteration, so the calls serialize at latency\n\
         instead of pipelining at throughput.\n",
        powf_per_call,
        powf_floor_per_point,
        iters_per_point,
        batched_ns as f64 / points as f64 / powf_floor_per_point,
    ));
    Report::new(text, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deterministic core (everything but `measured`) must be a
    /// pure function of the grid — identical at any thread count.
    #[test]
    fn roofline_core_is_thread_count_invariant() {
        let core = |report: &Report| {
            let m = &report.metrics;
            ["grid", "profile", "op_model", "lockstep"]
                .map(|key| m.get(key).expect(key).render())
                .join("\n")
        };
        drone_explorer::set_default_threads(1);
        let serial = roofline();
        drone_explorer::set_default_threads(3);
        let parallel = roofline();
        drone_explorer::set_default_threads(0);
        assert_eq!(
            core(&serial),
            core(&parallel),
            "deterministic core must not depend on thread count"
        );
    }

    #[test]
    fn roofline_proves_lockstep_and_meaningful_rates() {
        let report = roofline();
        let m = &report.metrics;
        assert_eq!(
            m.get("lockstep").unwrap().get("identical"),
            Some(&Json::Bool(true)),
            "batched kernel drifted from the scalar reference"
        );
        let intensity = m
            .get("op_model")
            .unwrap()
            .get("arithmetic_intensity_flops_per_byte")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(intensity > 0.1 && intensity < 10.0, "{intensity}");
        let modes = m.get("measured").unwrap().get("modes").unwrap();
        let ns = |mode: &str| {
            modes
                .get(mode)
                .unwrap()
                .get("ns")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert!(
            ns("kernel_batched") <= ns("kernel_serial"),
            "batched kernel slower than scalar: {} vs {}",
            ns("kernel_batched"),
            ns("kernel_serial"),
        );
        let gflops = modes
            .get("kernel_batched")
            .unwrap()
            .get("gflops")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(gflops > 0.0, "degenerate GFLOP/s");
    }
}
