//! The `chaos` experiment: the serving stack under a seeded network
//! fault campaign.
//!
//! Nine fault classes run in a fixed order, each against a fresh
//! server + [`ChaosProxy`] + resilient [`Client`] triple with its own
//! telemetry registry, four requests per class, issued sequentially so
//! every counter is exact:
//!
//! | class           | injection                                    |
//! |-----------------|----------------------------------------------|
//! | `clean`         | faithful relay (control)                     |
//! | `coalesce`      | 4 pipelined requests delivered as one write  |
//! | `split`         | request bytes re-chunked into 7-byte writes  |
//! | `garbage`       | seeded garbage line ahead of each request    |
//! | `reset`         | connection reset 20 bytes into the request   |
//! | `truncate`      | reply cut off after 20 bytes                 |
//! | `slow_loris`    | 10 bytes then silence past the idle deadline |
//! | `deadline_shed` | over-budget queries vs a cost-unit deadline  |
//! | `panic`         | a poisoned design point panicking the eval   |
//!
//! Connection-scoped faults use an every-other schedule: the first
//! attempt fails, the client's retry lands on a clean connection —
//! so survival, retry and shed counts are exact, not statistical.
//!
//! The artifact holds only scheduling-independent numbers (cost-unit
//! quantiles, not wall time), so `BENCH_chaos.json` is byte-identical
//! at `--threads 1` and `--threads 4`. CI diffs exactly that and
//! asserts zero uncaught panics and zero leaked threads.

use crate::experiments::serve_figs::fnv_digest;
use crate::experiments::Report;
use crate::table::{f, Table};
use drone_components::battery::CellCount;
use drone_explorer::{Explorer, GridRange, Objective, Query, QueryRanges};
use drone_serve::{
    CallError, ChaosProxy, Client, ClientConfig, ErrorKind, Fault, FaultSchedule, Server,
    ServerConfig,
};
use drone_telemetry::{Histogram, Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 42;
const REQUESTS_PER_CLASS: usize = 4;
/// Cut points stay well below any request or reply line length, so a
/// truncated fragment can never parse as a complete document.
const RESET_AT: usize = 20;
const TRUNCATE_AT: usize = 20;
const SPLIT_EVERY: usize = 7;
const GARBAGE_LEN: usize = 24;
/// Server idle deadline 100 ms vs a 400 ms proxy stall: 4x margin.
const IDLE_TIMEOUT_MS: u64 = 100;
const STALL_MS: u64 = 400;
/// Cost-unit deadline for the shed class: passes 15-point queries,
/// sheds 125-point ones.
const COST_DEADLINE: u64 = 100;

/// A 15-point query, comfortably under every deadline.
fn small_query(name: &str) -> Query {
    Query::new(
        name,
        QueryRanges {
            wheelbase_mm: GridRange::new(250.0, 450.0, 3),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(2000.0, 6000.0, 5),
            compute_power_w: GridRange::fixed(20.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MaxFlightTime,
    )
}

/// A 125-point query: valid, but over the shed class's cost deadline.
fn big_query(name: &str) -> Query {
    Query::new(
        name,
        QueryRanges {
            wheelbase_mm: GridRange::new(250.0, 450.0, 5),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(2000.0, 6000.0, 5),
            compute_power_w: GridRange::fixed(20.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::new(0.0, 200.0, 5),
        },
        Objective::MaxFlightTime,
    )
}

/// A query whose every grid point hits the poisoned 350 mm wheelbase.
fn poisoned_query(name: &str) -> Query {
    Query::new(
        name,
        QueryRanges {
            wheelbase_mm: GridRange::fixed(350.0),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(2000.0, 6000.0, 5),
            compute_power_w: GridRange::fixed(20.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        },
        Objective::MaxFlightTime,
    )
}

/// Typed outcome tallies for one class: every request must land in
/// exactly one bucket — the "no hang, no silent drop" invariant.
#[derive(Default)]
struct Outcomes {
    ok: usize,
    shed: usize,
    rejected: usize,
    exhausted: usize,
    breaker_open: usize,
}

struct ClassResult {
    name: &'static str,
    outcomes: Outcomes,
    attempts: u64,
    survived_replies: Vec<String>,
    registry: Registry,
    server_threads_joined: usize,
    server_clean: bool,
    proxy_connections: u64,
    proxy_faults: u64,
    proxy_threads_joined: usize,
}

impl ClassResult {
    fn requests(&self) -> usize {
        let o = &self.outcomes;
        o.ok + o.shed + o.rejected + o.exhausted + o.breaker_open
    }

    /// Expected thread count: the proxy joins its acceptor plus one
    /// relay per accepted connection; the server joins 2 workers + 1
    /// acceptor. Any deviation is a leak.
    fn threads_leaked(&self) -> i64 {
        let expected_proxy = 1 + self.proxy_connections as i64;
        let expected_server = 3;
        (expected_proxy - self.proxy_threads_joined as i64).abs()
            + (expected_server - self.server_threads_joined as i64).abs()
    }

    fn to_json(&self) -> Json {
        let registry = &self.registry;
        let counter = |name: &str| registry.counter(name).get();
        let mut replies = self.survived_replies.clone();
        let mut latency = Histogram::new();
        for line in &replies {
            let cost = Json::parse(line)
                .ok()
                .and_then(|doc| {
                    doc.get("answer")
                        .and_then(|a| a.get("cost_units"))
                        .and_then(Json::as_f64)
                })
                .unwrap_or(0.0);
            latency.record(cost);
        }
        let quantile = |q: f64| latency.quantile(q).unwrap_or(0.0);
        Json::obj()
            .with(
                "outcomes",
                Json::obj()
                    .with("ok", self.outcomes.ok)
                    .with("deadline_shed", self.outcomes.shed)
                    .with("rejected", self.outcomes.rejected)
                    .with("exhausted", self.outcomes.exhausted)
                    .with("breaker_open", self.outcomes.breaker_open),
            )
            .with("requests", self.requests())
            .with("attempts", self.attempts)
            .with(
                "client",
                Json::obj()
                    .with("retries", counter("client.retries"))
                    .with("breaker_opens", counter("client.breaker_opens"))
                    .with("breaker_fast_fails", counter("client.breaker_fast_fails")),
            )
            .with(
                "server",
                Json::obj()
                    .with("requests", counter("serve.requests"))
                    .with("panics_caught", counter("serve.panics_caught"))
                    .with("deadline_sheds", counter("serve.deadline_sheds"))
                    .with("idle_timeouts", counter("serve.idle_timeouts"))
                    .with("protocol_errors", counter("serve.errors.protocol")),
            )
            .with(
                "latency_units",
                Json::obj()
                    .with("count", latency.count())
                    .with("p50", quantile(0.5))
                    .with("p99", quantile(0.99))
                    .with("max", latency.max().unwrap_or(0.0)),
            )
            .with(
                "proxy",
                Json::obj()
                    .with("connections", self.proxy_connections)
                    .with("faults_injected", self.proxy_faults)
                    .with("threads_joined", self.proxy_threads_joined),
            )
            .with(
                "drain",
                Json::obj()
                    .with("threads_joined", self.server_threads_joined)
                    .with("clean", self.server_clean),
            )
            .with("threads_leaked", self.threads_leaked() as f64)
            .with("reply_digest", fnv_digest(&mut replies))
    }
}

/// The per-class serving stack: a fresh registry, server (optionally
/// hooked for panics), and proxy under the given schedule.
struct Stack {
    registry: Registry,
    server: Server,
    proxy: ChaosProxy,
}

fn stack(schedule: FaultSchedule, server_config: ServerConfig, poison: bool) -> Stack {
    let registry = Registry::with_wall_clock();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(&registry);
    let engine = if poison {
        engine.with_eval_hook(Arc::new(|q| {
            assert!(
                (q.wheelbase_mm - 350.0).abs() > 1e-9,
                "chaos campaign: poisoned wheelbase"
            );
        }))
    } else {
        engine
    };
    let server = Server::start(engine, server_config, &registry).expect("bind chaos server");
    let proxy = ChaosProxy::start(server.addr(), schedule, SEED).expect("bind chaos proxy");
    Stack {
        registry,
        server,
        proxy,
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        retries: 2,
        backoff_initial_ms: 2,
        backoff_max_ms: 8,
        jitter_seed: SEED,
        breaker_threshold: 0,
        breaker_cooldown: 0,
        reply_timeout: Duration::from_millis(2000),
        trace_seed: SEED,
    }
}

/// Runs one class through the resilient client, one call per query,
/// sequentially.
fn run_class(
    name: &'static str,
    schedule: FaultSchedule,
    server_config: ServerConfig,
    client_config: ClientConfig,
    poison: bool,
    queries: &[Query],
) -> ClassResult {
    let stack = stack(schedule, server_config, poison);
    let mut client = Client::new(stack.proxy.addr(), client_config, &stack.registry);
    let mut outcomes = Outcomes::default();
    let mut attempts = 0u64;
    let mut survived = Vec::new();
    for query in queries {
        match client.call(query) {
            Ok(success) => {
                outcomes.ok += 1;
                attempts += u64::from(success.attempts);
                survived.push(success.reply.render());
            }
            Err(CallError::Rejected { error, attempts: a }) => {
                attempts += u64::from(a);
                if error.kind == ErrorKind::DeadlineExceeded {
                    outcomes.shed += 1;
                } else {
                    outcomes.rejected += 1;
                }
            }
            Err(CallError::Exhausted { attempts: a, .. }) => {
                attempts += u64::from(a);
                outcomes.exhausted += 1;
            }
            Err(CallError::BreakerOpen) => outcomes.breaker_open += 1,
        }
    }
    let proxy_stats = stack.proxy.stop();
    let drain = stack.server.drain();
    ClassResult {
        name,
        outcomes,
        attempts,
        survived_replies: survived,
        registry: stack.registry,
        server_threads_joined: drain.threads_joined,
        server_clean: drain.clean,
        proxy_connections: proxy_stats.connections,
        proxy_faults: proxy_stats.faults_injected,
        proxy_threads_joined: proxy_stats.threads_joined,
    }
}

/// The coalesce class bypasses the client: four requests pipelined in
/// one raw write, delivered to the server as one giant chunk.
fn run_coalesce_class() -> ClassResult {
    let stack = stack(
        FaultSchedule::Always(Fault::Coalesce),
        ServerConfig::default(),
        false,
    );
    let mut payload = String::new();
    for id in 0..REQUESTS_PER_CLASS {
        let query = small_query(&format!("coalesce-{id}"));
        payload.push_str(&drone_serve::request_to_json(id as u64, &query).render());
        payload.push('\n');
    }
    let mut stream = TcpStream::connect(stack.proxy.addr()).expect("connect through proxy");
    stream
        .write_all(payload.as_bytes())
        .expect("write pipelined payload");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let replies: Vec<String> = BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read reply"))
        .collect();
    let mut outcomes = Outcomes::default();
    let mut survived = Vec::new();
    for line in replies {
        let doc = Json::parse(&line).expect("reply is JSON");
        if doc.get("ok") == Some(&Json::Bool(true)) {
            outcomes.ok += 1;
            survived.push(line);
        } else {
            outcomes.rejected += 1;
        }
    }
    let proxy_stats = stack.proxy.stop();
    let drain = stack.server.drain();
    ClassResult {
        name: "coalesce",
        outcomes,
        attempts: 1,
        survived_replies: survived,
        registry: stack.registry,
        server_threads_joined: drain.threads_joined,
        server_clean: drain.clean,
        proxy_connections: proxy_stats.connections,
        proxy_faults: proxy_stats.faults_injected,
        proxy_threads_joined: proxy_stats.threads_joined,
    }
}

fn queries(class: &str) -> Vec<Query> {
    (0..REQUESTS_PER_CLASS)
        .map(|i| small_query(&format!("{class}-{i}")))
        .collect()
}

/// Silences the default panic hook's stderr spew for *intentional*
/// poison panics only (shared with the `trace` campaign); every other
/// panic still reports. Installed once and never restored, so
/// concurrent campaign runs (the tests) cannot race on the global
/// hook.
pub(crate) fn silence_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("poisoned wheelbase") {
                previous(info);
            }
        }));
    });
}

/// Runs the full fault campaign and reports per-class survival.
pub fn chaos() -> Report {
    silence_poison_panics();
    let defaults = ServerConfig::default();
    let classes: Vec<ClassResult> = vec![
        run_class(
            "clean",
            FaultSchedule::Always(Fault::None),
            defaults,
            client_config(),
            false,
            &queries("clean"),
        ),
        run_coalesce_class(),
        run_class(
            "split",
            FaultSchedule::Always(Fault::SplitEvery(SPLIT_EVERY)),
            defaults,
            client_config(),
            false,
            &queries("split"),
        ),
        run_class(
            "garbage",
            FaultSchedule::Always(Fault::GarbagePrefix(GARBAGE_LEN)),
            defaults,
            client_config(),
            false,
            &queries("garbage"),
        ),
        run_class(
            "reset",
            FaultSchedule::EveryOther(Fault::ResetAfter(RESET_AT)),
            defaults,
            client_config(),
            false,
            &queries("reset"),
        ),
        run_class(
            "truncate",
            FaultSchedule::EveryOther(Fault::TruncateReplyAfter(TRUNCATE_AT)),
            defaults,
            client_config(),
            false,
            &queries("truncate"),
        ),
        run_class(
            "slow_loris",
            FaultSchedule::EveryOther(Fault::StallAfter {
                bytes: 10,
                millis: STALL_MS,
            }),
            ServerConfig {
                idle_timeout: Some(Duration::from_millis(IDLE_TIMEOUT_MS)),
                ..defaults
            },
            client_config(),
            false,
            &queries("slow_loris"),
        ),
        run_class(
            "deadline_shed",
            FaultSchedule::Always(Fault::None),
            ServerConfig {
                cost_deadline: Some(COST_DEADLINE),
                ..defaults
            },
            client_config(),
            false,
            // Alternate under/over budget: 2 answered, 2 shed.
            &[
                small_query("shed-0"),
                big_query("shed-1"),
                small_query("shed-2"),
                big_query("shed-3"),
            ],
        ),
        run_class(
            "panic",
            FaultSchedule::Always(Fault::None),
            defaults,
            ClientConfig {
                retries: 0,
                breaker_threshold: 2,
                breaker_cooldown: 2,
                ..client_config()
            },
            true,
            &(0..REQUESTS_PER_CLASS)
                .map(|i| poisoned_query(&format!("panic-{i}")))
                .collect::<Vec<_>>(),
        ),
    ];

    let mut out =
        String::from("chaos campaign — seeded network faults against the serving stack\n\n");
    let mut table = Table::new(vec![
        "class",
        "requests",
        "ok",
        "shed",
        "exhausted",
        "breaker",
        "retries",
        "panics",
    ]);
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut classes_json = Json::obj();
    let mut uncaught = 0i64;
    let mut leaked = 0i64;
    for class in &classes {
        let retries = class.registry.counter("client.retries").get();
        let panics = class.registry.counter("serve.panics_caught").get();
        let sheds = class.registry.counter("serve.deadline_sheds").get()
            + class.registry.counter("serve.idle_timeouts").get();
        table.row(vec![
            class.name.into(),
            f(class.requests() as f64, 0),
            f(class.outcomes.ok as f64, 0),
            f(class.outcomes.shed as f64, 0),
            f(class.outcomes.exhausted as f64, 0),
            f(class.outcomes.breaker_open as f64, 0),
            f(retries as f64, 0),
            f(panics as f64, 0),
        ]);
        totals.0 += class.requests() as u64;
        totals.1 += class.outcomes.ok as u64;
        totals.2 += retries;
        totals.3 += sheds;
        totals.4 += panics;
        if !class.server_clean {
            uncaught += 1;
        }
        leaked += class.threads_leaked();
        classes_json.insert(class.name, class.to_json());
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n{} requests total: {} answered, {} retries, {} sheds, {} panics caught\n",
        totals.0, totals.1, totals.2, totals.3, totals.4
    ));
    out.push_str(&format!(
        "uncaught panics: {uncaught}; leaked threads: {leaked}\n"
    ));

    let metrics = Json::obj()
        .with("seed", SEED)
        .with("requests_per_class", REQUESTS_PER_CLASS)
        .with("classes", classes_json)
        .with(
            "totals",
            Json::obj()
                .with("requests", totals.0)
                .with("survived", totals.1)
                .with("retries", totals.2)
                .with("sheds", totals.3)
                .with("panics_caught", totals.4)
                .with("uncaught_panics", uncaught as f64)
                .with("threads_leaked", leaked as f64),
        );
    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(doc: &Json, path: &[&str]) -> f64 {
        let mut cursor = doc;
        for key in path {
            cursor = cursor.get(key).unwrap_or_else(|| panic!("missing {key}"));
        }
        cursor.as_f64().unwrap()
    }

    #[test]
    fn every_fault_resolves_to_a_typed_outcome() {
        let report = chaos();
        let m = &report.metrics;
        // The hard acceptance criteria: nothing uncaught, nothing
        // leaked, and the retry/shed machinery actually exercised.
        assert_eq!(num(m, &["totals", "uncaught_panics"]), 0.0);
        assert_eq!(num(m, &["totals", "threads_leaked"]), 0.0);
        assert!(num(m, &["totals", "retries"]) > 0.0);
        assert!(num(m, &["totals", "sheds"]) > 0.0);
        assert!(num(m, &["totals", "panics_caught"]) > 0.0);

        // Exact per-class survival: connection faults are survived by
        // retry, policy faults shed, the poisoned class trips the
        // breaker.
        for class in ["clean", "coalesce", "split", "garbage"] {
            assert_eq!(
                num(m, &["classes", class, "outcomes", "ok"]),
                4.0,
                "{class}"
            );
        }
        for class in ["reset", "truncate", "slow_loris"] {
            assert_eq!(
                num(m, &["classes", class, "outcomes", "ok"]),
                4.0,
                "{class}"
            );
            assert_eq!(
                num(m, &["classes", class, "client", "retries"]),
                4.0,
                "{class}"
            );
        }
        assert_eq!(num(m, &["classes", "deadline_shed", "outcomes", "ok"]), 2.0);
        assert_eq!(
            num(
                m,
                &["classes", "deadline_shed", "outcomes", "deadline_shed"]
            ),
            2.0
        );
        assert_eq!(
            num(m, &["classes", "slow_loris", "server", "idle_timeouts"]),
            4.0
        );
        assert_eq!(num(m, &["classes", "panic", "outcomes", "exhausted"]), 2.0);
        assert_eq!(
            num(m, &["classes", "panic", "outcomes", "breaker_open"]),
            2.0
        );
        assert_eq!(
            num(m, &["classes", "panic", "server", "panics_caught"]),
            2.0
        );
        assert_eq!(
            num(m, &["classes", "panic", "client", "breaker_opens"]),
            1.0
        );
        // The garbage class rejects exactly its injected lines.
        assert_eq!(
            num(m, &["classes", "garbage", "server", "protocol_errors"]),
            4.0
        );
    }

    #[test]
    fn chaos_metrics_are_thread_count_invariant() {
        drone_explorer::set_default_threads(1);
        let serial = chaos().metrics.render_pretty();
        drone_explorer::set_default_threads(3);
        let parallel = chaos().metrics.render_pretty();
        drone_explorer::set_default_threads(0);
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
    }
}
