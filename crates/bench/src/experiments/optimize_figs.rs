//! The `optimize` experiment: seeded sampling + multi-fidelity search
//! against the exhaustive grid, points-evaluated vs frontier quality.
//!
//! Two phases:
//!
//! 1. **In-process comparison** — one exhaustive grid sweep over a
//!    dense reference region (the ground truth), then each strategy
//!    (seeded Monte Carlo, Latin Hypercube, Sobol, successive halving)
//!    optimizing the same region under one shared engine. Recovered
//!    frontier fraction counts cache-key-identical members, which the
//!    lattice snapping makes meaningful; the best-objective gap is the
//!    grid optimum minus the strategy's optimum.
//! 2. **Wire run** — one `optimize` request per strategy through the
//!    resilient [`Client`] against a live loopback server, proving the
//!    wire kind end to end and that reply bytes are deterministic.
//!
//! The JSON artifact holds only scheduling-independent numbers (point
//! counts, fractions, gaps, counters, drain stats, a reply digest), so
//! `BENCH_optimize.json` is byte-identical at `--threads 1` and
//! `--threads 4`; CI diffs exactly that and asserts the acceptance
//! band: every strategy recovers >=80 % of the grid frontier at <=25 %
//! of its points, with the multi-fidelity loop cheapest.

use crate::experiments::serve_figs::fnv_digest;
use crate::experiments::Report;
use crate::table::{f, Table};
use drone_components::battery::CellCount;
use drone_explorer::cache::CacheKey;
use drone_explorer::{
    Constraints, Explorer, GridRange, Objective, OptimizeRequest, Query, QueryRanges, Strategy,
};
use drone_serve::{Client, ClientConfig, Server, ServerConfig};
use drone_telemetry::{Json, Registry};
use std::collections::HashSet;
use std::time::Duration;

const SEED: u64 = 42;
const BUDGET: usize = 4096;
const WIRE_BUDGET: usize = 16;

/// The dense reference region. The compute axis matters: more compute
/// is worse on all three objectives at once (heavier, shorter flight,
/// bigger share), so sweeping it grows the grid eightfold while the
/// frontier stays on the low-compute face — exactly the kind of
/// mostly-dominated volume sampling should refuse to pay for.
fn reference_region() -> (QueryRanges, Constraints) {
    let ranges = QueryRanges {
        wheelbase_mm: GridRange::new(150.0, 750.0, 25),
        cells: vec![CellCount::S3, CellCount::S4, CellCount::S6],
        capacity_mah: GridRange::new(1000.0, 9000.0, 33),
        compute_power_w: GridRange::new(5.0, 40.0, 8),
        twr: GridRange::fixed(2.0),
        payload_g: GridRange::fixed(100.0),
    };
    let constraints = Constraints {
        max_weight_g: Some(2200.0),
        min_flight_time_min: Some(5.0),
        ..Constraints::default()
    };
    (ranges, constraints)
}

/// The small region the wire phase optimizes per strategy.
fn wire_region() -> QueryRanges {
    QueryRanges {
        wheelbase_mm: GridRange::new(250.0, 450.0, 5),
        cells: vec![CellCount::S3],
        capacity_mah: GridRange::new(2000.0, 6000.0, 9),
        compute_power_w: GridRange::fixed(10.0),
        twr: GridRange::fixed(2.0),
        payload_g: GridRange::fixed(0.0),
    }
}

struct StrategyRow {
    strategy: Strategy,
    evaluated: usize,
    grid_fraction: f64,
    coarse_evals: usize,
    prefiltered: usize,
    frontier: usize,
    recovered: usize,
    recovery: f64,
    best_gap: f64,
    refine_waves: usize,
    rounds: usize,
}

/// Runs the in-process comparison: grid ground truth, then every
/// strategy over the same shared engine (warm-cache refinement is the
/// point — `evaluated` counts unique dispatches, not cache state).
fn compare_strategies(registry: &Registry) -> (usize, usize, f64, Vec<StrategyRow>) {
    let (ranges, constraints) = reference_region();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(registry);
    // Pure exhaustive sweep — no refinement rounds, so the ground
    // truth is exactly the lattice the strategies sample.
    let grid_query = Query::new("optimize_grid", ranges.clone(), Objective::MaxFlightTime)
        .with_constraints(constraints)
        .with_refinement(0, 3);
    let grid = engine.run(&grid_query);
    let grid_points = ranges.point_count();
    let grid_best = grid
        .best
        .as_ref()
        .map(|b| b.flight_time_min)
        .expect("reference region has feasible designs");
    let grid_keys: HashSet<CacheKey> = grid
        .frontier
        .iter()
        .map(|e| CacheKey::quantize(&e.query))
        .collect();

    let rows = Strategy::ALL
        .iter()
        .map(|&strategy| {
            let req = OptimizeRequest::new(
                "optimize_bench",
                ranges.clone(),
                Objective::MaxFlightTime,
                strategy,
                BUDGET,
            )
            .with_constraints(constraints)
            .with_seed(SEED);
            let answer = engine.optimize(&req);
            let recovered = answer
                .frontier
                .iter()
                .filter(|e| grid_keys.contains(&CacheKey::quantize(&e.query)))
                .count();
            let best_gap = grid_best
                - answer
                    .best
                    .as_ref()
                    .map(|b| b.flight_time_min)
                    .unwrap_or(0.0);
            StrategyRow {
                strategy,
                evaluated: answer.evaluated,
                grid_fraction: answer.evaluated as f64 / grid_points as f64,
                coarse_evals: answer.coarse_evals,
                prefiltered: answer.prefiltered,
                frontier: answer.frontier.len(),
                recovered,
                recovery: recovered as f64 / grid_keys.len() as f64,
                best_gap,
                refine_waves: answer.refine_waves,
                rounds: answer.rounds,
            }
        })
        .collect();
    (grid_points, grid_keys.len(), grid_best, rows)
}

/// One optimize call per strategy over the wire; returns the reply
/// digest, per-strategy evaluated counts from the replies, and the
/// server's drain stats (thread-leak accounting for the artifact).
fn wire_phase(registry: &Registry) -> (String, Vec<(Strategy, u64)>, drone_serve::DrainStats) {
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(registry);
    let server =
        Server::start(engine, ServerConfig::default(), registry).expect("bind loopback server");
    let config = ClientConfig {
        reply_timeout: Duration::from_secs(10),
        trace_seed: SEED,
        ..ClientConfig::default()
    };
    let mut client = Client::new(server.addr(), config, registry);
    let mut lines = Vec::new();
    let mut evaluated = Vec::new();
    for strategy in Strategy::ALL {
        let req = OptimizeRequest::new(
            "wire",
            wire_region(),
            Objective::MaxFlightTime,
            strategy,
            WIRE_BUDGET,
        )
        .with_seed(SEED);
        let success = client.optimize(&req).expect("optimize call answers");
        assert_eq!(success.attempts, 1, "loopback call needs no retries");
        let answer = success.reply.get("answer").expect("ok reply has answer");
        assert_eq!(
            answer.get("strategy").and_then(Json::as_str),
            Some(strategy.as_str())
        );
        let points = answer
            .get("evaluated")
            .and_then(Json::as_f64)
            .expect("evaluated count") as u64;
        evaluated.push((strategy, points));
        lines.push(success.reply.render());
    }
    let stats = server.drain();
    assert!(stats.clean, "server drain must be clean");
    let digest = fnv_digest(&mut lines);
    (digest, evaluated, stats)
}

/// Runs the optimizer benchmark: per-strategy points-evaluated vs
/// frontier quality against the exhaustive grid, plus the wire phase.
pub fn optimize() -> Report {
    let registry = Registry::with_wall_clock();
    let (grid_points, grid_frontier, grid_best, rows) = compare_strategies(&registry);
    let wire_registry = Registry::with_wall_clock();
    let (digest, wire_evaluated, drain) = wire_phase(&wire_registry);

    let optimize_counter = wire_registry.counter("serve.optimize_requests").get();
    let protocol_errors = wire_registry.counter("serve.errors.protocol").get();
    let query_errors = wire_registry.counter("serve.errors.query").get();
    let panics = wire_registry.counter("serve.panics_caught").get();
    let prefiltered_total = registry.counter("optimizer.prefiltered").get();

    let mut out = format!(
        "drone-optimizer — seeded search vs the exhaustive grid\n\n\
         reference grid: {grid_points} points, {grid_frontier} frontier members, \
         best flight {grid_best:.2} min\n\
         per-strategy budget: {BUDGET} points ({:.1} % of the grid)\n\n",
        100.0 * BUDGET as f64 / grid_points as f64
    );
    let mut table = Table::new(vec![
        "strategy",
        "points",
        "% of grid",
        "coarse",
        "frontier",
        "recovered",
        "recovery %",
        "best gap (min)",
        "waves",
    ]);
    for row in &rows {
        table.row(vec![
            row.strategy.to_string(),
            f(row.evaluated as f64, 0),
            f(100.0 * row.grid_fraction, 1),
            f(row.coarse_evals as f64, 0),
            f(row.frontier as f64, 0),
            f(row.recovered as f64, 0),
            f(100.0 * row.recovery, 1),
            f(row.best_gap, 3),
            f(row.refine_waves as f64, 0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nwire phase: {} optimize requests answered ({} per strategy), digest {digest}\n",
        optimize_counter,
        optimize_counter / Strategy::ALL.len() as u64,
    ));

    let mut strategies = Json::arr();
    for row in &rows {
        strategies.push(
            Json::obj()
                .with("strategy", row.strategy.as_str())
                .with("evaluated", row.evaluated)
                .with("grid_fraction", row.grid_fraction)
                .with("coarse_evals", row.coarse_evals)
                .with("prefiltered", row.prefiltered)
                .with("frontier", row.frontier)
                .with("recovered", row.recovered)
                .with("recovery", row.recovery)
                .with("best_gap_min", row.best_gap)
                .with("refine_waves", row.refine_waves)
                .with("rounds", row.rounds),
        );
    }
    let mut wire = Json::arr();
    for (strategy, points) in &wire_evaluated {
        wire.push(
            Json::obj()
                .with("strategy", strategy.as_str())
                .with("evaluated", *points),
        );
    }
    let metrics = Json::obj()
        .with(
            "grid",
            Json::obj()
                .with("points", grid_points)
                .with("frontier", grid_frontier)
                .with("best_flight_min", grid_best),
        )
        .with("budget", BUDGET)
        .with("seed", SEED)
        .with("strategies", strategies)
        .with("prefiltered_total", prefiltered_total)
        .with(
            "wire",
            Json::obj()
                .with("optimize_requests", optimize_counter)
                .with("per_strategy", wire)
                .with(
                    "errors",
                    Json::obj()
                        .with("protocol", protocol_errors)
                        .with("query", query_errors)
                        .with("panics_caught", panics),
                )
                .with(
                    "drain",
                    Json::obj()
                        .with("threads_joined", drain.threads_joined)
                        .with("clean", drain.clean),
                )
                .with("reply_digest", digest),
        );
    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_meets_the_acceptance_band() {
        let report = optimize();
        let m = &report.metrics;
        let strategies = m.get("strategies").and_then(Json::as_arr).unwrap();
        assert_eq!(strategies.len(), 4);
        let mut halving_points = None;
        let mut cheapest = u64::MAX;
        for s in strategies {
            let name = s.get("strategy").and_then(Json::as_str).unwrap();
            let evaluated = s.get("evaluated").and_then(Json::as_f64).unwrap() as u64;
            let fraction = s.get("grid_fraction").and_then(Json::as_f64).unwrap();
            let recovery = s.get("recovery").and_then(Json::as_f64).unwrap();
            let gap = s.get("best_gap_min").and_then(Json::as_f64).unwrap();
            assert!(fraction <= 0.25, "{name}: {fraction} of the grid");
            assert!(recovery >= 0.8, "{name}: recovered only {recovery}");
            assert!(gap.abs() < 1.0, "{name}: best gap {gap} min");
            cheapest = cheapest.min(evaluated);
            if name == "halving" {
                halving_points = Some(evaluated);
            }
        }
        assert_eq!(
            halving_points.expect("halving row present"),
            cheapest,
            "the multi-fidelity loop must evaluate the fewest points"
        );
        let wire = m.get("wire").unwrap();
        let errors = wire.get("errors").unwrap();
        for key in ["protocol", "query", "panics_caught"] {
            assert_eq!(errors.get(key), Some(&Json::Num(0.0)), "{key}");
        }
        let drain = wire.get("drain").unwrap();
        assert_eq!(drain.get("clean"), Some(&Json::Bool(true)));
        assert!(
            drain.get("threads_joined").and_then(Json::as_f64).unwrap() > 0.0,
            "drain joined no threads"
        );
    }

    #[test]
    fn optimize_metrics_are_thread_count_invariant() {
        drone_explorer::set_default_threads(1);
        let serial = optimize().metrics.render_pretty();
        drone_explorer::set_default_threads(3);
        let parallel = optimize().metrics.render_pretty();
        drone_explorer::set_default_threads(0);
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
    }
}
