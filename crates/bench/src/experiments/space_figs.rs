//! Figures 10, 11 and 14 plus the §3.2 headline claims: the design-space
//! sweeps, commercial validation and the paper drone's weight breakdown.

use crate::experiments::Report;
use crate::table::{f, pct, Table};
use drone_components::battery::CellCount;
use drone_components::paper;
use drone_dse::commercial::{figure11_points, validate_against_sweep};
use drone_dse::reference_drone::{figure14_shares, model_papers_drone, paper_drone_total};
use drone_dse::sweep::WheelbaseSweep;
use drone_telemetry::Json;

/// Figure 10a–c: total power vs take-off weight per wheelbase and cell
/// configuration, with the best-configuration flight time and the
/// commercial validation points.
pub fn figure10_power() -> Report {
    let mut metrics = Json::obj();
    let mut out = String::from("Figure 10a-c — total hover power vs weight (1S/3S/6S)\n");
    for sweep in WheelbaseSweep::paper_figure10() {
        out.push_str(&format!("\n{} mm wheelbase:\n", sweep.wheelbase_mm));
        let mut t = Table::new(vec![
            "cells",
            "capacity (mAh)",
            "weight (g)",
            "power (W)",
            "flight (min)",
        ]);
        for p in &sweep.points {
            t.row(vec![
                p.cells.to_string(),
                f(p.capacity_mah, 0),
                f(p.weight_g, 0),
                f(p.hover_power_w, 0),
                f(p.flight_time_min, 1),
            ]);
        }
        out.push_str(&t.render());
        metrics.insert(&format!("wheelbase_{}mm", sweep.wheelbase_mm), t.to_json());
        if let Some(best) = sweep.best_configuration() {
            let expect = paper::best_flight_time_minutes(sweep.wheelbase_mm)
                .map(|m| format!(" (paper best: {m:.0} min)"))
                .unwrap_or_default();
            out.push_str(&format!(
                "best configuration: {:.1} min @ {} {:.0} mAh{expect}\n",
                best.flight_time_min, best.cells, best.capacity_mah
            ));
        }
        // Commercial validation diamonds within this wheelbase class
        // (a Phantom does not belong on the 100 mm panel even when a
        // heavy 100 mm design matches its weight).
        for d in paper::commercial_drones() {
            let class_ratio = d.wheelbase_mm / sweep.wheelbase_mm;
            if !(0.5..=2.0).contains(&class_ratio) {
                continue;
            }
            if let Some((inferred, model, rel)) = validate_against_sweep(&d, &sweep) {
                out.push_str(&format!(
                    "  validation {}: spec-inferred {inferred:.0} W vs model {model:.0} W (rel err {rel:.2})\n",
                    d.name
                ));
            }
        }
    }
    Report::new(out, metrics)
}

/// Figure 10d–f: computation power share for 3 W and 20 W chips at hover
/// and maneuver, per wheelbase.
pub fn figure10_footprint() -> Report {
    let mut metrics = Json::obj();
    let mut out = String::from("Figure 10d-f — computation share of total power\n");
    for sweep in WheelbaseSweep::paper_figure10() {
        out.push_str(&format!("\n{} mm wheelbase:\n", sweep.wheelbase_mm));
        let mut t = Table::new(vec![
            "weight (g)",
            "3W hover",
            "3W maneuver",
            "20W hover",
            "20W maneuver",
        ]);
        for p in sweep.footprint.iter().step_by(3) {
            t.row(vec![
                f(p.weight_g, 0),
                pct(p.basic_hover),
                pct(p.basic_maneuver),
                pct(p.advanced_hover),
                pct(p.advanced_maneuver),
            ]);
        }
        out.push_str(&t.render());
        metrics.insert(&format!("wheelbase_{}mm", sweep.wheelbase_mm), t.to_json());
    }
    out.push_str("\npaper claims: 3W chip <5%; 20W drops to ~10% when maneuvering\n");
    Report::new(out, metrics)
}

/// Figure 11: nano/micro commercial drones — hover and maneuver power,
/// heavy-computation share, flight time.
pub fn figure11() -> Report {
    let mut t = Table::new(vec![
        "drone",
        "hover (W)",
        "maneuver (W)",
        "heavy compute share",
        "flight (min)",
    ]);
    for p in figure11_points() {
        t.row(vec![
            p.name.clone(),
            f(p.flight_power_w, 0),
            f(p.maneuver_power_w, 0),
            pct(p.heavy_compute_share),
            f(p.flight_time_min, 0),
        ]);
    }
    Report::from_table(
        format!(
            "Figure 11 — commercial small drones: heavy computation contribution\n{}\npaper: hover compute 2-7%, heavy computation reaches 10-20%\n",
            t.render()
        ),
        &t,
    )
}

/// Figure 14: the paper drone's weight breakdown, plus the general
/// model's re-derivation of the same build.
pub fn figure14() -> Report {
    let mut t = Table::new(vec!["component", "grams", "share"]);
    for s in figure14_shares() {
        t.row(vec![s.component.clone(), f(s.grams, 0), pct(s.share)]);
    }
    let modeled = model_papers_drone();
    Report::new(
        format!(
            "Figure 14 — our drone weight breakdown (total {})\n{}\nmodel re-derivation: {} (real {})\n",
            paper_drone_total(),
            t.render(),
            modeled.total_weight,
            paper_drone_total()
        ),
        Json::obj()
            .with("table", t.to_json())
            .with("modeled_total_g", modeled.total_weight.0),
    )
}

/// §3.2 headline claims, measured over the full sweep.
pub fn claims() -> Report {
    let sweeps = WheelbaseSweep::paper_figure10();
    let mut shares = Vec::new();
    for sweep in &sweeps {
        for p in &sweep.footprint {
            shares.push(p.basic_maneuver);
            shares.push(p.basic_hover);
            shares.push(p.advanced_hover);
            shares.push(p.advanced_maneuver);
        }
    }
    let min = shares.iter().copied().fold(f64::INFINITY, f64::min);
    let max = shares.iter().copied().fold(0.0f64, f64::max);

    // Gained flight time for a small drone by eliminating heavy compute
    // (an Anafi-class 240 mm folder with a long-endurance 2S pack).
    let small = drone_dse::design::DesignSpec::new(
        240.0,
        CellCount::S2,
        drone_components::units::MilliampHours(5200.0),
    )
    .with_compute_power(drone_components::units::Watts(5.0))
    .size();
    let gained_small = small
        .map(|drone| {
            drone_dse::power::PowerModel::paper_defaults().gained_flight_time(
                &drone,
                drone_dse::power::FlyingLoad::Hover,
                drone_components::units::Watts(4.5),
            )
        })
        .map(|m| m.0)
        .unwrap_or(f64::NAN);

    Report::new(
        format!(
            "S3.2 claims, measured:\n\
             - computation share across the sweep: {} .. {} (paper: 2-30%)\n\
             - 3W chip stays under 5% hovering: see fig10_footprint\n\
             - small-drone gained flight time by removing ~4.5 W of heavy compute: {:.1} min (paper: up to +5 min)\n",
            pct(min),
            pct(max),
            gained_small
        ),
        Json::obj()
            .with("share_min", min)
            .with("share_max", max)
            .with("gained_minutes_small", gained_small),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_reports_cover_wheelbases() {
        let power = figure10_power();
        for wb in ["100 mm", "450 mm", "800 mm"] {
            assert!(power.text.contains(wb), "missing {wb}");
        }
        assert!(power.text.contains("best configuration"));
        assert!(power.metrics.get("wheelbase_450mm").is_some());
        let fp = figure10_footprint();
        assert!(fp.text.contains("20W hover"));
    }

    #[test]
    fn figure11_lists_six_drones() {
        let r = figure11();
        for name in [
            "Mambo",
            "Anafi",
            "Spark",
            "Mavic Air",
            "Bebop 2",
            "Skydio 2",
        ] {
            assert!(r.text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn figure14_totals_render() {
        let r = figure14();
        assert!(r.text.contains("Frame"));
        assert!(r.text.contains("PPM Encoder"));
    }

    #[test]
    fn claims_report_renders() {
        let r = claims();
        assert!(r.text.contains("computation share"));
    }
}
