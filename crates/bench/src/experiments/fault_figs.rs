//! The fault-injection campaign (robustness study).
//!
//! The paper's design-space arguments assume components can fail: the
//! 85 % LiPo drain limit bounds every flight (§2.1.1), gusts disturb the
//! inner loop (§2.1.3, Table 1), and a co-located SLAM workload starves
//! the outer loop (§5.1). This experiment closes the loop on those
//! assumptions by flying the *same* scripted mission through a matrix of
//! fault scenarios × airframe design points, with every failsafe armed,
//! and reporting how each flight ended:
//!
//! * **survived** — the mission completed and the vehicle landed itself;
//! * **safe landing** — a failsafe cut the mission short but the vehicle
//!   still reached the ground under control;
//! * **CRASH** — attitude was lost, the vehicle hit the ground hard, or
//!   it flew away.
//!
//! Everything is seeded through the workspace's deterministic [`Pcg32`]
//! streams (sensors, wind, fault draws), so one seed reproduces the
//! entire outcome table bit-for-bit.
//!
//! [`Pcg32`]: drone_math::Pcg32

use crate::table::{f, Table};
use drone_estimation::{SensorChannel, SensorFault, SensorFaultKind, SensorSuite};
use drone_firmware::{Autopilot, FlightMode, Message, Mission};
use drone_math::Vec3;
use drone_sim::{FaultEvent, FaultKind, FaultSchedule, Quadcopter, QuadcopterParams, WindModel};
use std::fmt;

/// The campaign's base RNG seed (sensors, wind).
pub const CAMPAIGN_SEED: u64 = 2021;

/// How one fault-injected flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Mission completed; the vehicle landed itself on plan.
    Survived,
    /// A failsafe ended the mission early but the vehicle reached the
    /// ground under control.
    SafeLanding,
    /// Attitude lost, hard ground impact, or fly-away.
    Crash,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Survived => "survived",
            Outcome::SafeLanding => "safe landing",
            Outcome::Crash => "CRASH",
        })
    }
}

/// Everything measured from one scenario flight.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightReport {
    /// How the flight ended.
    pub outcome: Outcome,
    /// Seconds from arm to touchdown (or crash, or the horizon).
    pub flight_time: f64,
    /// The first failsafe announcement, if any fired.
    pub failsafe_reason: Option<String>,
    /// Worst roll/pitch excursion seen, degrees.
    pub max_tilt_deg: f64,
    /// Energy consumed over the usable (85 % drain limit) budget at the
    /// end of the flight; ≤ 1.0 means the limit was respected.
    pub drain_ratio: f64,
}

/// One campaign scenario: what breaks, and when.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short scenario name for the outcome table.
    pub name: &'static str,
    /// Physical component faults fed to the simulation.
    pub faults: Vec<FaultEvent>,
    /// Sensor faults fed to the sensor suite.
    pub sensor_faults: Vec<SensorFault>,
    /// When the ground station stops heartbeating (None = never).
    pub gcs_silence_after: Option<f64>,
}

impl Scenario {
    fn clean(name: &'static str) -> Scenario {
        Scenario {
            name,
            faults: Vec::new(),
            sensor_faults: Vec::new(),
            gcs_silence_after: None,
        }
    }
}

/// The campaign's scenario matrix, mission-time ordered faults.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::clean("nominal"),
        Scenario {
            faults: vec![FaultEvent {
                at: 10.0,
                kind: FaultKind::MotorDegradation {
                    rotor: 1,
                    effectiveness: 0.7,
                },
            }],
            ..Scenario::clean("motor-degraded")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 12.0,
                kind: FaultKind::RotorOut { rotor: 2 },
            }],
            ..Scenario::clean("rotor-out")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 15.0,
                kind: FaultKind::GustBurst {
                    velocity: Vec3::new(9.0, 6.0, 0.0),
                    duration: 3.0,
                },
            }],
            ..Scenario::clean("gust-burst")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 12.0,
                kind: FaultKind::CapacityLoss { fraction: 0.995 },
            }],
            ..Scenario::clean("battery-limit")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 10.0,
                kind: FaultKind::BatterySag { volts: 2.5 },
            }],
            ..Scenario::clean("cell-sag")
        },
        Scenario {
            gcs_silence_after: Some(12.0),
            ..Scenario::clean("link-loss")
        },
        Scenario {
            sensor_faults: vec![SensorFault {
                channel: SensorChannel::Gps,
                kind: SensorFaultKind::Dropout,
                start: 10.0,
                duration: 15.0,
            }],
            ..Scenario::clean("gps-dropout")
        },
    ]
}

/// Flies one scenario closed-loop (truth sim + sensors + full autopilot
/// with failsafes armed) and classifies the ending. Deterministic per
/// `(params, scenario, seed)`.
pub fn fly_scenario(params: &QuadcopterParams, scenario: &Scenario, seed: u64) -> FlightReport {
    let mut quad = Quadcopter::new(params.clone());
    quad.inject_faults(FaultSchedule::scripted(scenario.faults.clone()));
    let mut sensors = SensorSuite::with_defaults(seed);
    for fault in &scenario.sensor_faults {
        sensors.inject_fault(*fault);
    }
    let mut ap = Autopilot::new(params);
    ap.align(quad.state());
    ap.upload_mission(Mission::hover_test(8.0, 10.0))
        .expect("hover mission is valid");
    ap.arm().expect("arming with a mission succeeds");
    let mut wind = WindModel::gusty(Vec3::new(1.0, 0.5, 0.0), 0.5, seed ^ 0x57ED);

    let dt = 1e-3;
    let horizon = 60.0;
    let mut prev_vel = quad.state().velocity;
    let mut next_heartbeat = 0.0;
    let mut max_tilt = 0.0f64;
    let mut crashed = false;
    let mut end_time = horizon;
    for step in 0..(horizon / dt) as usize {
        let t = step as f64 * dt;
        let gcs_alive = scenario.gcs_silence_after.is_none_or(|s| t < s);
        if gcs_alive && t >= next_heartbeat {
            ap.handle_message(&Message::Heartbeat {
                mode: 0,
                armed: false,
            });
            next_heartbeat += 1.0;
        }
        ap.report_battery(quad.battery().voltage().0, quad.battery().at_drain_limit());
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = ap.update(&readings, quad.battery().remaining_fraction(), dt);
        quad.step(throttle, wind.sample(dt), dt);

        let s = quad.state();
        let (roll, pitch, _) = s.euler();
        let tilt = roll.abs().max(pitch.abs());
        max_tilt = max_tilt.max(tilt);
        let lost_attitude = s.position.z > 0.3 && tilt > 1.2;
        let hard_impact = s.position.z < 0.05 && s.velocity.z < -2.0;
        let flyaway = s.position.norm() > 200.0;
        if lost_attitude || hard_impact || flyaway {
            crashed = true;
            end_time = t;
            break;
        }
        if ap.mode() == FlightMode::Disarmed && s.position.z < 0.2 {
            end_time = t;
            break;
        }
    }

    let failsafe_reason = ap.drain_outbox().into_iter().find_map(|m| match m {
        Message::StatusText { severity: 1, text } => Some(text),
        _ => None,
    });
    let failsafed = failsafe_reason.is_some()
        || ap
            .telemetry()
            .iter()
            .any(|t| t.mode == FlightMode::Failsafe);
    let outcome = if crashed {
        Outcome::Crash
    } else if ap.mode() == FlightMode::Disarmed && failsafed {
        Outcome::SafeLanding
    } else if ap.mode() == FlightMode::Disarmed {
        Outcome::Survived
    } else if failsafed {
        // Horizon expired mid-failsafe-descent: still controlled.
        Outcome::SafeLanding
    } else {
        Outcome::Survived
    };
    FlightReport {
        outcome,
        flight_time: end_time,
        failsafe_reason,
        max_tilt_deg: max_tilt.to_degrees(),
        drain_ratio: quad.battery().consumed().0 / quad.battery().effective_usable_energy().0,
    }
}

/// The design points the campaign sweeps: the paper's experimental
/// 450 mm airframe plus the catalog's extremes.
pub fn design_points() -> Vec<(&'static str, QuadcopterParams)> {
    vec![
        ("450mm", QuadcopterParams::default_450mm()),
        ("800mm", QuadcopterParams::default_800mm()),
    ]
}

/// Robustness campaign: fault scenarios × design points, deterministic
/// outcome table (same seed → same table, bit for bit).
pub fn faults() -> String {
    let mut t = Table::new(vec![
        "design point",
        "scenario",
        "outcome",
        "flight time (s)",
        "vs nominal (s)",
        "max tilt (deg)",
        "drain ratio",
        "failsafe reason",
    ]);
    let mut survived = 0usize;
    let mut safe = 0usize;
    let mut crashed = 0usize;
    for (name, params) in design_points() {
        let mut nominal_time = None;
        for scenario in scenarios() {
            let report = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            if scenario.name == "nominal" {
                nominal_time = Some(report.flight_time);
            }
            match report.outcome {
                Outcome::Survived => survived += 1,
                Outcome::SafeLanding => safe += 1,
                Outcome::Crash => crashed += 1,
            }
            t.row(vec![
                name.to_owned(),
                scenario.name.to_owned(),
                report.outcome.to_string(),
                f(report.flight_time, 1),
                nominal_time
                    .map(|n| f(report.flight_time - n, 1))
                    .unwrap_or_else(|| "-".into()),
                f(report.max_tilt_deg, 1),
                f(report.drain_ratio, 2),
                report.failsafe_reason.unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    format!(
        "Fault-injection campaign — scripted faults x design points, all failsafes armed\n\
         (seed {CAMPAIGN_SEED}: sensors, wind and fault draws all run on deterministic PCG streams)\n\
         {}\n\
         totals: {survived} survived, {safe} safe landings, {crashed} crashes\n\
         link loss and battery exhaustion must end in a safe landing — the 85% drain limit\n\
         (S2.1.1) and the heartbeat watchdog bound every flight; losing a whole rotor does not:\n\
         a quadrotor has no control authority margin for it (the paper's hexacopter aside).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_mission_survives() {
        let report = fly_scenario(&QuadcopterParams::default_450mm(), &scenarios()[0], 7);
        assert_eq!(report.outcome, Outcome::Survived, "{report:?}");
        assert!(report.failsafe_reason.is_none(), "{report:?}");
    }

    #[test]
    fn link_loss_and_battery_limit_land_safely() {
        let params = QuadcopterParams::default_450mm();
        for name in ["link-loss", "battery-limit", "cell-sag"] {
            let scenario = scenarios().into_iter().find(|s| s.name == name).unwrap();
            let report = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            assert_eq!(report.outcome, Outcome::SafeLanding, "{name}: {report:?}");
            assert!(
                report.failsafe_reason.is_some(),
                "{name}: no failsafe reason"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let params = QuadcopterParams::default_450mm();
        for scenario in scenarios() {
            let a = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            let b = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            assert_eq!(a, b, "{} not reproducible", scenario.name);
        }
    }

    #[test]
    fn campaign_has_at_least_six_scenarios() {
        assert!(scenarios().len() >= 6);
        let names: Vec<_> = scenarios().iter().map(|s| s.name).collect();
        assert!(names.contains(&"link-loss"));
        assert!(names.contains(&"battery-limit"));
    }
}
