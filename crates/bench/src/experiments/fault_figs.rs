//! The fault-injection campaign (robustness study).
//!
//! The paper's design-space arguments assume components can fail: the
//! 85 % LiPo drain limit bounds every flight (§2.1.1), gusts disturb the
//! inner loop (§2.1.3, Table 1), and a co-located SLAM workload starves
//! the outer loop (§5.1). This experiment closes the loop on those
//! assumptions by flying the *same* scripted mission through a matrix of
//! fault scenarios × airframe design points, with every failsafe armed,
//! and reporting how each flight ended:
//!
//! * **survived** — the mission completed and the vehicle landed itself;
//! * **safe landing** — a failsafe cut the mission short but the vehicle
//!   still reached the ground under control;
//! * **CRASH** — attitude was lost, the vehicle hit the ground hard, or
//!   it flew away.
//!
//! Everything is seeded through the workspace's deterministic [`Pcg32`]
//! streams (sensors, wind, fault draws), so one seed reproduces the
//! entire outcome table bit-for-bit.
//!
//! [`Pcg32`]: drone_math::Pcg32

use crate::experiments::Report;
use crate::table::{f, Table};
use drone_estimation::{SensorChannel, SensorFault, SensorFaultKind, SensorSuite};
use drone_firmware::scheduler::{autopilot_task_set, slam_task};
use drone_firmware::{Autopilot, FlightMode, Message, Mission, RateScheduler};
use drone_math::Vec3;
use drone_sim::{FaultEvent, FaultKind, FaultSchedule, Quadcopter, QuadcopterParams, WindModel};
use drone_telemetry::{Clock, DumpReason, FlightRecorder, Json, Registry};
use std::fmt;

/// The campaign's base RNG seed (sensors, wind).
pub const CAMPAIGN_SEED: u64 = 2021;

/// Black-box decimation: one sample every 10th 1 kHz sim tick (100 Hz).
const RECORD_EVERY: usize = 10;

/// Black-box ring capacity: 300 samples × 10 ms = the last 3 s of
/// flight leading up to (and including) the trigger.
const RECORDER_CAPACITY: usize = 300;

/// How one fault-injected flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Mission completed; the vehicle landed itself on plan.
    Survived,
    /// A failsafe ended the mission early but the vehicle reached the
    /// ground under control.
    SafeLanding,
    /// Attitude lost, hard ground impact, or fly-away.
    Crash,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Survived => "survived",
            Outcome::SafeLanding => "safe landing",
            Outcome::Crash => "CRASH",
        })
    }
}

/// Everything measured from one scenario flight.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightReport {
    /// How the flight ended.
    pub outcome: Outcome,
    /// Seconds from arm to touchdown (or crash, or the horizon).
    pub flight_time: f64,
    /// The first failsafe announcement, if any fired.
    pub failsafe_reason: Option<String>,
    /// Worst roll/pitch excursion seen, degrees.
    pub max_tilt_deg: f64,
    /// Energy consumed over the usable (85 % drain limit) budget at the
    /// end of the flight; ≤ 1.0 means the limit was respected.
    pub drain_ratio: f64,
}

/// One campaign scenario: what breaks, and when.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short scenario name for the outcome table.
    pub name: &'static str,
    /// Physical component faults fed to the simulation.
    pub faults: Vec<FaultEvent>,
    /// Sensor faults fed to the sensor suite.
    pub sensor_faults: Vec<SensorFault>,
    /// When the ground station stops heartbeating (None = never).
    pub gcs_silence_after: Option<f64>,
}

impl Scenario {
    fn clean(name: &'static str) -> Scenario {
        Scenario {
            name,
            faults: Vec::new(),
            sensor_faults: Vec::new(),
            gcs_silence_after: None,
        }
    }
}

/// The campaign's scenario matrix, mission-time ordered faults.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::clean("nominal"),
        Scenario {
            faults: vec![FaultEvent {
                at: 10.0,
                kind: FaultKind::MotorDegradation {
                    rotor: 1,
                    effectiveness: 0.7,
                },
            }],
            ..Scenario::clean("motor-degraded")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 12.0,
                kind: FaultKind::RotorOut { rotor: 2 },
            }],
            ..Scenario::clean("rotor-out")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 15.0,
                kind: FaultKind::GustBurst {
                    velocity: Vec3::new(9.0, 6.0, 0.0),
                    duration: 3.0,
                },
            }],
            ..Scenario::clean("gust-burst")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 12.0,
                kind: FaultKind::CapacityLoss { fraction: 0.995 },
            }],
            ..Scenario::clean("battery-limit")
        },
        Scenario {
            faults: vec![FaultEvent {
                at: 10.0,
                kind: FaultKind::BatterySag { volts: 2.5 },
            }],
            ..Scenario::clean("cell-sag")
        },
        Scenario {
            gcs_silence_after: Some(12.0),
            ..Scenario::clean("link-loss")
        },
        Scenario {
            sensor_faults: vec![SensorFault {
                channel: SensorChannel::Gps,
                kind: SensorFaultKind::Dropout,
                start: 10.0,
                duration: 15.0,
            }],
            ..Scenario::clean("gps-dropout")
        },
    ]
}

/// One scenario flight plus its forensic evidence: the black-box dump
/// captured at the first failsafe/crash (if any fired) and the registry
/// snapshot of the whole instrumented stack.
#[derive(Debug, Clone)]
pub struct RecordedFlight {
    /// The flight classification (what [`fly_scenario`] returns).
    pub report: FlightReport,
    /// [`FlightRecorder::dump_json`] taken at the first failsafe or
    /// crash trigger — the retained window ends at the trigger tick.
    /// `None` when the flight stayed nominal.
    pub black_box: Option<Json>,
    /// Registry snapshot: sim step/fault counters, EKF phase timings and
    /// NIS histogram, cascade level timings, failsafe counter.
    pub metrics: Json,
}

/// Flies one scenario closed-loop (truth sim + sensors + full autopilot
/// with failsafes armed) and classifies the ending. Deterministic per
/// `(params, scenario, seed)`.
///
/// Telemetry is observability, not physics: this is
/// [`fly_scenario_recorded`] with the evidence discarded, and produces
/// bit-identical flights.
pub fn fly_scenario(params: &QuadcopterParams, scenario: &Scenario, seed: u64) -> FlightReport {
    fly_scenario_recorded(params, scenario, seed).report
}

/// [`fly_scenario`] with the full telemetry stack attached: a sim-clock
/// registry over every layer and a 13-channel black-box recorder
/// (attitude, altitude, motor commands, battery V/I/SoC, EKF NIS,
/// failsafe flag) sampled at 100 Hz, dumped at the first failsafe or
/// crash.
pub fn fly_scenario_recorded(
    params: &QuadcopterParams,
    scenario: &Scenario,
    seed: u64,
) -> RecordedFlight {
    let registry = Registry::new(Clock::sim());
    let mut quad = Quadcopter::new(params.clone());
    quad.inject_faults(FaultSchedule::scripted(scenario.faults.clone()));
    quad.attach_telemetry(&registry);
    let mut sensors = SensorSuite::with_defaults(seed);
    for fault in &scenario.sensor_faults {
        sensors.inject_fault(*fault);
    }
    let mut ap = Autopilot::new(params);
    ap.attach_telemetry(&registry);
    ap.align(quad.state());
    ap.upload_mission(Mission::hover_test(8.0, 10.0))
        .expect("hover mission is valid");
    ap.arm().expect("arming with a mission succeeds");
    let mut wind = WindModel::gusty(Vec3::new(1.0, 0.5, 0.0), 0.5, seed ^ 0x57ED);

    // Black box: all channels registered up front, so the per-tick
    // sampling path below never allocates.
    let mut recorder = FlightRecorder::new(RECORDER_CAPACITY);
    let ch_roll = recorder.channel("attitude.roll_rad");
    let ch_pitch = recorder.channel("attitude.pitch_rad");
    let ch_yaw = recorder.channel("attitude.yaw_rad");
    let ch_alt = recorder.channel("position.z_m");
    let ch_m: Vec<_> = (1..=4)
        .map(|i| recorder.channel(&format!("motor.m{i}")))
        .collect();
    let ch_batt_v = recorder.channel("battery.volts");
    let ch_batt_i = recorder.channel("battery.amps");
    let ch_batt_soc = recorder.channel("battery.soc");
    let ch_nis = recorder.channel("ekf.nis");
    let ch_failsafe = recorder.channel("failsafe.active");

    let dt = 1e-3;
    let horizon = 60.0;
    let mut prev_vel = quad.state().velocity;
    let mut next_heartbeat = 0.0;
    let mut max_tilt = 0.0f64;
    let mut crashed = false;
    let mut end_time = horizon;
    let mut black_box = None;
    for step in 0..(horizon / dt) as usize {
        let t = step as f64 * dt;
        let gcs_alive = scenario.gcs_silence_after.is_none_or(|s| t < s);
        if gcs_alive && t >= next_heartbeat {
            ap.handle_message(&Message::Heartbeat {
                mode: 0,
                armed: false,
            });
            next_heartbeat += 1.0;
        }
        ap.report_battery(quad.battery().voltage().0, quad.battery().at_drain_limit());
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = ap.update(&readings, quad.battery().remaining_fraction(), dt);
        let out = quad.step(throttle, wind.sample(dt), dt);

        let s = quad.state();
        let (roll, pitch, yaw) = s.euler();
        let tilt = roll.abs().max(pitch.abs());
        max_tilt = max_tilt.max(tilt);
        let lost_attitude = s.position.z > 0.3 && tilt > 1.2;
        let hard_impact = s.position.z < 0.05 && s.velocity.z < -2.0;
        let flyaway = s.position.norm() > 200.0;
        let failsafe_now = ap.mode() == FlightMode::Failsafe;
        let trigger =
            black_box.is_none() && (lost_attitude || hard_impact || flyaway || failsafe_now);

        // Sample on the decimated cadence, plus the trigger tick itself
        // so the dump always ends on the state that tripped it.
        if step % RECORD_EVERY == 0 || trigger {
            let volts = quad.battery().voltage().0;
            recorder.begin_tick(t);
            recorder.set(ch_roll, roll);
            recorder.set(ch_pitch, pitch);
            recorder.set(ch_yaw, yaw);
            recorder.set(ch_alt, s.position.z);
            for (ch, cmd) in ch_m.iter().zip(throttle) {
                recorder.set(*ch, cmd);
            }
            recorder.set(ch_batt_v, volts);
            recorder.set(ch_batt_i, out.total_power.0 / volts.max(1e-6));
            recorder.set(ch_batt_soc, quad.battery().remaining_fraction());
            recorder.set(ch_nis, ap.estimator().last_nis());
            recorder.set(ch_failsafe, f64::from(u8::from(failsafe_now)));
            recorder.commit_tick();
        }
        if trigger {
            let reason = if lost_attitude || hard_impact || flyaway {
                let what = if flyaway {
                    "fly-away"
                } else if hard_impact {
                    "hard ground impact"
                } else {
                    "attitude lost"
                };
                DumpReason::Crash(format!("{what} at t={t:.2} s"))
            } else {
                DumpReason::Failsafe(format!("failsafe engaged at t={t:.2} s"))
            };
            black_box = Some(recorder.dump_json(&reason));
        }
        if lost_attitude || hard_impact || flyaway {
            crashed = true;
            end_time = t;
            break;
        }
        if ap.mode() == FlightMode::Disarmed && s.position.z < 0.2 {
            end_time = t;
            break;
        }
    }

    let failsafe_reason = ap.drain_outbox().into_iter().find_map(|m| match m {
        Message::StatusText { severity: 1, text } => Some(text),
        _ => None,
    });
    let failsafed = failsafe_reason.is_some()
        || ap
            .telemetry()
            .iter()
            .any(|t| t.mode == FlightMode::Failsafe);
    let outcome = if crashed {
        Outcome::Crash
    } else if ap.mode() == FlightMode::Disarmed && failsafed {
        Outcome::SafeLanding
    } else if ap.mode() == FlightMode::Disarmed {
        Outcome::Survived
    } else if failsafed {
        // Horizon expired mid-failsafe-descent: still controlled.
        Outcome::SafeLanding
    } else {
        Outcome::Survived
    };
    RecordedFlight {
        report: FlightReport {
            outcome,
            flight_time: end_time,
            failsafe_reason,
            max_tilt_deg: max_tilt.to_degrees(),
            drain_ratio: quad.battery().consumed().0 / quad.battery().effective_usable_energy().0,
        },
        black_box,
        metrics: registry.snapshot(),
    }
}

/// The design points the campaign sweeps: the paper's experimental
/// 450 mm airframe plus the catalog's extremes.
pub fn design_points() -> Vec<(&'static str, QuadcopterParams)> {
    vec![
        ("450mm", QuadcopterParams::default_450mm()),
        ("800mm", QuadcopterParams::default_800mm()),
    ]
}

/// Robustness campaign: fault scenarios × design points, deterministic
/// outcome table (same seed → same table, bit for bit). The JSON
/// metrics additionally carry one representative black-box dump per
/// design point (the first scenario whose flight tripped the recorder),
/// the registry snapshot of that flight, and the per-task response-time
/// histograms of the autopilot+SLAM scheduler co-simulation.
pub fn faults() -> Report {
    let mut t = Table::new(vec![
        "design point",
        "scenario",
        "outcome",
        "flight time (s)",
        "vs nominal (s)",
        "max tilt (deg)",
        "drain ratio",
        "failsafe reason",
    ]);
    let mut survived = 0usize;
    let mut safe = 0usize;
    let mut crashed = 0usize;
    let mut black_boxes = Json::obj();
    for (name, params) in design_points() {
        let mut nominal_time = None;
        let mut representative: Option<Json> = None;
        for scenario in scenarios() {
            let flight = fly_scenario_recorded(&params, &scenario, CAMPAIGN_SEED);
            let report = flight.report;
            if representative.is_none() {
                if let Some(dump) = flight.black_box {
                    representative = Some(
                        Json::obj()
                            .with("scenario", scenario.name)
                            .with("registry", flight.metrics)
                            .with("dump", dump),
                    );
                }
            }
            if scenario.name == "nominal" {
                nominal_time = Some(report.flight_time);
            }
            match report.outcome {
                Outcome::Survived => survived += 1,
                Outcome::SafeLanding => safe += 1,
                Outcome::Crash => crashed += 1,
            }
            t.row(vec![
                name.to_owned(),
                scenario.name.to_owned(),
                report.outcome.to_string(),
                f(report.flight_time, 1),
                nominal_time
                    .map(|n| f(report.flight_time - n, 1))
                    .unwrap_or_else(|| "-".into()),
                f(report.max_tilt_deg, 1),
                f(report.drain_ratio, 2),
                report.failsafe_reason.unwrap_or_else(|| "-".into()),
            ]);
        }
        if let Some(bb) = representative {
            black_boxes.insert(name, bb);
        }
    }

    // The firmware task set co-simulated with SLAM (the §5.1 derating):
    // where the per-task response-time histograms come from.
    let mut tasks = autopilot_task_set();
    tasks.push(slam_task());
    let mut sched = RateScheduler::new(tasks);
    let sched_report = sched.simulate(30.0, 1.0 / 1.7);

    Report::new(
        format!(
            "Fault-injection campaign — scripted faults x design points, all failsafes armed\n\
             (seed {CAMPAIGN_SEED}: sensors, wind and fault draws all run on deterministic PCG streams)\n\
             {}\n\
             totals: {survived} survived, {safe} safe landings, {crashed} crashes\n\
             link loss and battery exhaustion must end in a safe landing — the 85% drain limit\n\
             (S2.1.1) and the heartbeat watchdog bound every flight; losing a whole rotor does not:\n\
             a quadrotor has no control authority margin for it (the paper's hexacopter aside).\n\
             \n\
             black-box dumps (one per design point, JSON artifact only) retain the last\n\
             {RECORDER_CAPACITY} samples at 100 Hz — attitude, altitude, motor commands,\n\
             battery V/I/SoC, EKF NIS and the failsafe flag — ending at the trigger tick.\n",
            t.render()
        ),
        Json::obj()
            .with("seed", CAMPAIGN_SEED)
            .with("table", t.to_json())
            .with(
                "totals",
                Json::obj()
                    .with("survived", survived)
                    .with("safe_landings", safe)
                    .with("crashes", crashed),
            )
            .with("scheduler_with_slam", sched_report.to_json())
            .with("black_boxes", black_boxes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_mission_survives() {
        let report = fly_scenario(&QuadcopterParams::default_450mm(), &scenarios()[0], 7);
        assert_eq!(report.outcome, Outcome::Survived, "{report:?}");
        assert!(report.failsafe_reason.is_none(), "{report:?}");
    }

    #[test]
    fn link_loss_and_battery_limit_land_safely() {
        let params = QuadcopterParams::default_450mm();
        for name in ["link-loss", "battery-limit", "cell-sag"] {
            let scenario = scenarios().into_iter().find(|s| s.name == name).unwrap();
            let report = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            assert_eq!(report.outcome, Outcome::SafeLanding, "{name}: {report:?}");
            assert!(
                report.failsafe_reason.is_some(),
                "{name}: no failsafe reason"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let params = QuadcopterParams::default_450mm();
        for scenario in scenarios() {
            let a = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            let b = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
            assert_eq!(a, b, "{} not reproducible", scenario.name);
        }
    }

    #[test]
    fn campaign_has_at_least_six_scenarios() {
        assert!(scenarios().len() >= 6);
        let names: Vec<_> = scenarios().iter().map(|s| s.name).collect();
        assert!(names.contains(&"link-loss"));
        assert!(names.contains(&"battery-limit"));
    }

    #[test]
    fn failsafe_flight_produces_a_black_box_dump() {
        let params = QuadcopterParams::default_450mm();
        let scenario = scenarios()
            .into_iter()
            .find(|s| s.name == "battery-limit")
            .unwrap();
        let flight = fly_scenario_recorded(&params, &scenario, CAMPAIGN_SEED);
        assert_eq!(flight.report.outcome, Outcome::SafeLanding);
        let dump = flight.black_box.expect("failsafe must trip the recorder");
        assert_eq!(dump.get("reason").unwrap().as_str(), Some("failsafe"));
        let channels: Vec<&str> = dump
            .get("channels")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|c| c.as_str().unwrap())
            .collect();
        for ch in ["ekf.nis", "battery.volts", "battery.soc", "failsafe.active"] {
            assert!(channels.contains(&ch), "missing channel {ch}");
        }
        let ticks = dump.get("ticks").unwrap().as_arr().unwrap();
        assert!(ticks.len() > 10, "only {} ticks retained", ticks.len());
        // The final retained tick is the trigger: failsafe flag set.
        let fs_idx = channels
            .iter()
            .position(|c| *c == "failsafe.active")
            .unwrap();
        let last = ticks.last().unwrap().get("v").unwrap().as_arr().unwrap();
        assert_eq!(last[fs_idx].as_f64(), Some(1.0));
        // Ticks leading up to the trigger are retained too (pre-trigger
        // history, not just the trigger sample).
        let first = ticks.first().unwrap().get("v").unwrap().as_arr().unwrap();
        assert_eq!(first[fs_idx].as_f64(), Some(0.0));
    }

    #[test]
    fn nominal_flight_keeps_recording_without_a_dump() {
        let params = QuadcopterParams::default_450mm();
        let flight = fly_scenario_recorded(&params, &scenarios()[0], 7);
        assert!(flight.black_box.is_none());
        // The registry still saw the whole flight.
        let steps = flight
            .metrics
            .get("counters")
            .and_then(|c| c.get("sim.steps"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        assert!(steps > 1000.0, "sim.steps = {steps}");
    }

    #[test]
    fn recorded_and_plain_flights_agree() {
        let params = QuadcopterParams::default_450mm();
        let scenario = scenarios()
            .into_iter()
            .find(|s| s.name == "cell-sag")
            .unwrap();
        let plain = fly_scenario(&params, &scenario, CAMPAIGN_SEED);
        let recorded = fly_scenario_recorded(&params, &scenario, CAMPAIGN_SEED);
        assert_eq!(plain, recorded.report);
    }
}
