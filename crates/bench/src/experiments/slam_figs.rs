//! Figure 17 and Table 5: the SLAM offload landscape.

use crate::experiments::Report;
use crate::table::{f, Table};
use drone_dse::offload;
use drone_math::stats::geometric_mean;
use drone_platform::model::Platform;
use drone_slam::euroc::Sequence;
use drone_slam::{Pipeline, PipelineConfig, StageProfile};
use drone_telemetry::Json;

/// Frames per sequence for the figure runs (full EuRoC sequences are
/// thousands of frames; 150 keeps the repro run under a minute while
/// preserving the stage profile).
const FRAMES: usize = 150;

/// Runs the pipeline on one sequence and returns its stage profile.
pub fn profile_sequence(seq: Sequence, frames: usize) -> StageProfile {
    let dataset = seq.generate_with_frames(frames);
    Pipeline::new(PipelineConfig::default())
        .run(&dataset)
        .profile
}

/// Figure 17: per-sequence speedup of TX2 and FPGA over the RPi, by
/// stage composition, with the GMean the paper reports (2.16× / 30.7×).
pub fn figure17() -> Report {
    let tx2 = Platform::jetson_tx2();
    let fpga = Platform::zynq_fpga();
    let mut t = Table::new(vec![
        "sequence",
        "BA share",
        "TX2 speedup",
        "FPGA speedup",
        "ATE (m)",
    ]);
    let mut tx2_speedups = Vec::new();
    let mut fpga_speedups = Vec::new();
    for seq in Sequence::ALL {
        let dataset = seq.generate_with_frames(FRAMES);
        let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
        let s_tx2 = offload::platform_speedup(&tx2, &result.profile);
        let s_fpga = offload::platform_speedup(&fpga, &result.profile);
        tx2_speedups.push(s_tx2);
        fpga_speedups.push(s_fpga);
        t.row(vec![
            seq.to_string(),
            crate::table::pct(result.profile.ba_fraction()),
            f(s_tx2, 2),
            f(s_fpga, 1),
            f(result.ate_meters, 2),
        ]);
    }
    let g_tx2 = geometric_mean(&tx2_speedups).unwrap_or(f64::NAN);
    let g_fpga = geometric_mean(&fpga_speedups).unwrap_or(f64::NAN);
    Report::new(
        format!(
            "Figure 17 — ORB-SLAM speedup over RPi per EuRoC sequence\n{}\n\
             GMean: TX2 {g_tx2:.2}x (paper 2.16x), FPGA {g_fpga:.1}x (paper 30.7x)\n",
            t.render()
        ),
        Json::obj()
            .with("table", t.to_json())
            .with("gmean_tx2", g_tx2)
            .with("gmean_fpga", g_fpga),
    )
}

/// Table 5: platform comparison for SLAM, computed from a measured
/// pipeline profile.
pub fn table5() -> Report {
    let profile = profile_sequence(Sequence::MH01, FRAMES);
    let rows = offload::table5(&profile);
    let mut t = Table::new(vec![
        "platform",
        "speedup",
        "power ovh (W)",
        "weight ovh (g)",
        "gain small (min)",
        "gain large (min)",
        "integration",
        "fabrication",
    ]);
    let lineup = Platform::table5_lineup();
    for row in &rows {
        let p = lineup
            .iter()
            .find(|p| p.name == row.platform)
            .expect("platform known");
        t.row(vec![
            row.platform.clone(),
            f(row.slam_speedup, 2),
            f(row.power_overhead_w, 3),
            f(row.weight_overhead_g, 0),
            f(row.gained_minutes_small, 1),
            f(row.gained_minutes_large, 1),
            p.integration_cost.to_string(),
            p.fabrication_cost.to_string(),
        ]);
    }
    let winner = offload::most_cost_effective(&rows).map(|r| r.platform.clone());
    Report::new(
        format!(
            "Table 5 — platform cost comparison for SLAM (15 min baseline)\n{}\n\
             measured profile: {profile}\n\
             most cost-effective (excluding fabrication): {}\n\
             paper: FPGA wins — TX2 loses flight time, ASIC gains only seconds over FPGA\n",
            t.render(),
            winner.as_deref().unwrap_or("n/a"),
        ),
        Json::obj()
            .with("table", t.to_json())
            .with("winner", winner.as_deref().unwrap_or("n/a")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure17_gmeans_near_paper() {
        let r = figure17();
        assert!(r.text.contains("GMean"), "{}", r.text);
        // All 11 sequences present.
        for seq in Sequence::ALL {
            assert!(r.text.contains(seq.name()), "missing {seq}");
        }
        assert!(r.metrics.get("gmean_fpga").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn table5_report_has_all_platforms() {
        let r = table5();
        for p in ["RPi", "TX2", "FPGA", "ASIC"] {
            assert!(r.text.contains(p), "missing {p}");
        }
        assert!(r.text.contains("FPGA wins"));
    }
}
