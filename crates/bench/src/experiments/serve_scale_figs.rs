//! The `serve_scale` experiment: the epoll reactor front-end and the
//! sharded scatter/gather router under load, measured against the
//! threaded front-end they replace.
//!
//! Three phases:
//!
//! 1. **Capacity drill** — the same held-connection workload against
//!    both front-ends. Every client opens a connection, sends one
//!    request and then *keeps the connection open*. The threaded
//!    server parks one worker per connection, so it sustains exactly
//!    `workers` concurrent connections; the reactor multiplexes every
//!    connection onto its event loops and answers all of them. The
//!    drill also pins the no-busy-polling invariant: with connections
//!    held open but idle, the reactors' `epoll_wait` counter must not
//!    move over the observation window.
//! 2. **Router sweep** — a scatter/gather [`Router`] at each shard
//!    count, with seeded clients running sequential request/reply
//!    rounds. The FNV digest of the sorted replies must be identical
//!    at every shard count (the gather merge is input-ordered and the
//!    quantized-FNV partition is exact), so the artifact pins one
//!    digest for all counts.
//! 3. **Wall-clock measurement** — per-request latency quantiles and
//!    throughput per shard count. These are scheduling-dependent and
//!    live only under the `measured` key (CI strips it, together with
//!    the shard-count-dependent `sharding` key, before diffing
//!    artifacts across `--threads` and `--shards` values).

use crate::experiments::serve_figs::fnv_digest;
use crate::experiments::Report;
use crate::table::{f, Table};
use drone_explorer::Explorer;
use drone_serve::{
    ReactorConfig, ReactorServer, Router, RouterConfig, RouterStats, Server, ServerConfig, Workload,
};
use drone_telemetry::{Histogram, Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const SEED: u64 = 11;
/// Connections held open simultaneously during the capacity drill.
const HELD_CONNECTIONS: usize = 24;
/// Worker threads for the threaded baseline; its concurrency ceiling.
const THREADED_WORKERS: usize = 2;
/// Event-loop threads for the reactor front-end and every shard.
const REACTORS: usize = 2;
/// How long a drill reader waits before declaring its connection
/// starved. Served connections answer in milliseconds; only the
/// starved ones pay this.
const HOLD_READ_TIMEOUT: Duration = Duration::from_millis(2500);
/// Idle observation window for the zero-wakeup invariant.
const IDLE_WINDOW: Duration = Duration::from_millis(500);
/// Router sweep: clients x sequential request/reply rounds each.
const CLIENTS: u64 = 3;
const REQUESTS_PER_CLIENT: usize = 8;
/// Shard counts swept by default; `--shards N` narrows to one.
const DEFAULT_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// `--shards N` override: 0 means "sweep the default counts".
static SHARD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the router sweep to a single shard count (the `repro
/// --shards N` flag). Passing 0 restores the default sweep.
pub fn set_serve_scale_shards(shards: usize) {
    SHARD_OVERRIDE.store(shards, Ordering::SeqCst);
}

fn shard_counts() -> Vec<usize> {
    match SHARD_OVERRIDE.load(Ordering::SeqCst) {
        0 => DEFAULT_SHARD_COUNTS.to_vec(),
        n => vec![n],
    }
}

/// Opens [`HELD_CONNECTIONS`] connections, sends one request on each
/// and keeps every connection open. Returns the held streams plus how
/// many connections were actually answered while all of them stayed
/// open — the front-end's sustained-connection capacity.
fn hold_and_count(addr: SocketAddr, seed: u64) -> (Vec<TcpStream>, usize) {
    let mut streams = Vec::with_capacity(HELD_CONNECTIONS);
    for i in 0..HELD_CONNECTIONS {
        let mut stream = TcpStream::connect(addr).expect("connect during capacity drill");
        let mut workload = Workload::new(seed, i as u64);
        stream
            .write_all(workload.next_request_line().as_bytes())
            .expect("write drill request");
        streams.push(stream);
    }
    let readers: Vec<_> = streams
        .iter()
        .map(|stream| {
            let clone = stream.try_clone().expect("clone drill stream");
            std::thread::spawn(move || {
                clone
                    .set_read_timeout(Some(HOLD_READ_TIMEOUT))
                    .expect("set drill read timeout");
                let mut line = String::new();
                match BufReader::new(clone).read_line(&mut line) {
                    Ok(n) if n > 0 => {
                        let doc = Json::parse(&line).expect("drill reply is JSON");
                        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
                        true
                    }
                    _ => false,
                }
            })
        })
        .collect();
    let served = readers
        .into_iter()
        .map(|r| r.join().expect("drill reader thread"))
        .filter(|&served| served)
        .count();
    (streams, served)
}

/// Spin-waits (10 ms granularity) for `cond`, panicking after 5 s.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct CapacityDrill {
    threaded_concurrent: usize,
    reactor_concurrent: usize,
    idle_wakeups: u64,
    threaded_drain: drone_serve::DrainStats,
    reactor_drain: drone_serve::DrainStats,
}

/// Runs the held-connection drill against both front-ends.
fn capacity_drill() -> CapacityDrill {
    // Threaded baseline: a parked worker per connection.
    let registry = Registry::with_wall_clock();
    let config = ServerConfig {
        workers: THREADED_WORKERS,
        queue_capacity: HELD_CONNECTIONS + 8,
        ..ServerConfig::default()
    };
    let server =
        Server::start(Explorer::with_default_threads(), config, &registry).expect("bind threaded");
    let (streams, threaded_concurrent) = hold_and_count(server.addr(), SEED);
    // Release the held connections; the parked workers hit EOF, return
    // to the queue and answer the starved backlog, so the drain below
    // is deterministic (every request served, nothing abandoned).
    for stream in &streams {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let requests = registry.counter("serve.requests");
    wait_until("threaded backlog drain", || {
        requests.get() == HELD_CONNECTIONS as u64
    });
    drop(streams);
    let threaded_drain = server.drain();

    // Reactor: every connection multiplexed onto REACTORS event loops.
    let registry = Registry::with_wall_clock();
    let config = ReactorConfig {
        reactors: REACTORS,
        ..ReactorConfig::default()
    };
    let server = ReactorServer::start(Explorer::with_default_threads(), config, &registry)
        .expect("bind reactor");
    let (streams, reactor_concurrent) = hold_and_count(server.addr(), SEED + 1);
    // All replies are in; the connections stay open but idle, and no
    // progress deadline is armed, so the reactors must sleep in
    // epoll_wait indefinitely: zero wakeups over the window.
    let before = server.wakeups();
    std::thread::sleep(IDLE_WINDOW);
    let idle_wakeups = server.wakeups() - before;
    drop(streams);
    wait_until("reactor connection teardown", || {
        server.live_connections() == 0
    });
    let reactor_drain = server.drain();

    CapacityDrill {
        threaded_concurrent,
        reactor_concurrent,
        idle_wakeups,
        threaded_drain,
        reactor_drain,
    }
}

struct RouterRun {
    shards: usize,
    replies: Vec<String>,
    latencies: Histogram,
    elapsed: Duration,
    requests: u64,
    errors: u64,
    protocol_errors: u64,
    stats: RouterStats,
}

/// One router sweep leg: a scatter/gather router over `shards` engine
/// shards, driven by [`CLIENTS`] sequential request/reply clients.
fn router_run(shards: usize) -> RouterRun {
    let registry = Registry::with_wall_clock();
    let config = RouterConfig {
        shards,
        reactor: ReactorConfig {
            reactors: REACTORS,
            ..ReactorConfig::default()
        },
    };
    let router =
        Router::start(Explorer::with_default_threads, config, &registry).expect("bind router");
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let addr = router.addr();
            std::thread::spawn(move || {
                let mut workload = Workload::new(SEED + 2, client);
                let mut stream =
                    BufReader::new(TcpStream::connect(addr).expect("connect to router"));
                let mut replies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let request = workload.next_request_line();
                    let sent = Instant::now();
                    stream
                        .get_mut()
                        .write_all(request.as_bytes())
                        .expect("write router request");
                    let mut line = String::new();
                    stream.read_line(&mut line).expect("read router reply");
                    latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    let doc = Json::parse(&line).expect("router reply is JSON");
                    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
                    replies.push(line.trim_end().to_string());
                }
                (replies, latencies)
            })
        })
        .collect();
    let mut replies = Vec::new();
    let mut latencies = Histogram::new();
    for client in clients {
        let (lines, times) = client.join().expect("router client thread");
        replies.extend(lines);
        for ms in times {
            latencies.record(ms);
        }
    }
    let elapsed = started.elapsed();
    let requests = registry.counter("router.requests").get();
    let errors = registry.counter("router.errors").get();
    let protocol_errors = registry.counter("router.errors.protocol").get();
    let stats = router.drain();
    RouterRun {
        shards,
        replies,
        latencies,
        elapsed,
        requests,
        errors,
        protocol_errors,
        stats,
    }
}

/// Runs the capacity drill and the shard sweep; reports deterministic
/// capacity/parity numbers plus wall-clock throughput under `measured`.
pub fn serve_scale() -> Report {
    let drill = capacity_drill();
    assert!(
        drill.reactor_concurrent >= 4 * drill.threaded_concurrent,
        "reactor must sustain >= 4x the threaded connection count \
         (got {} vs {})",
        drill.reactor_concurrent,
        drill.threaded_concurrent
    );
    assert_eq!(
        drill.idle_wakeups, 0,
        "idle reactors must not busy-poll during the observation window"
    );

    let counts = shard_counts();
    let runs: Vec<RouterRun> = counts.iter().map(|&shards| router_run(shards)).collect();
    let expected = (CLIENTS as usize * REQUESTS_PER_CLIENT) as u64;
    let mut digest: Option<String> = None;
    for run in &runs {
        assert_eq!(run.requests, expected, "router must answer every request");
        assert_eq!(run.errors, 0, "router sweep must be error-free");
        assert_eq!(run.protocol_errors, 0, "router sweep must parse cleanly");
        let mut replies = run.replies.clone();
        let d = fnv_digest(&mut replies);
        match &digest {
            None => digest = Some(d),
            Some(first) => assert_eq!(
                first, &d,
                "merged replies must be byte-identical at every shard count"
            ),
        }
    }
    let digest = digest.expect("at least one shard count");

    let ratio = drill.reactor_concurrent as f64 / drill.threaded_concurrent.max(1) as f64;
    let mut out = format!(
        "serve at scale — epoll reactor + sharded scatter/gather vs the threaded front-end\n\n\
         capacity drill: {HELD_CONNECTIONS} held connections; threaded ({THREADED_WORKERS} \
         workers) sustained {}, reactor ({REACTORS} reactors) sustained {} ({:.1}x)\n\
         idle reactors over {} ms: {} epoll wakeups\n\n",
        drill.threaded_concurrent,
        drill.reactor_concurrent,
        ratio,
        IDLE_WINDOW.as_millis(),
        drill.idle_wakeups,
    );
    out.push_str(&format!(
        "router sweep: {CLIENTS} clients x {REQUESTS_PER_CLIENT} sequential requests per shard count\n"
    ));
    let mut table = Table::new(vec![
        "shards",
        "requests",
        "throughput rps",
        "p50 ms",
        "p99 ms",
        "threads joined",
        "clean",
    ]);
    for run in &runs {
        let rps = run.requests as f64 / run.elapsed.as_secs_f64().max(1e-9);
        table.row(vec![
            f(run.shards as f64, 0),
            f(run.requests as f64, 0),
            f(rps, 0),
            f(run.latencies.quantile(0.5).unwrap_or(0.0), 2),
            f(run.latencies.quantile(0.99).unwrap_or(0.0), 2),
            f(run.stats.threads_joined as f64, 0),
            run.stats.clean.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nreply digest (shard-count invariant): {digest}\n"
    ));

    let drain_json = |stats: &drone_serve::DrainStats| {
        Json::obj()
            .with("threads_joined", stats.threads_joined)
            .with("abandoned_connections", stats.abandoned_connections)
            .with("clean", stats.clean)
    };
    let metrics = Json::obj()
        .with(
            "workload",
            Json::obj()
                .with("seed", SEED)
                .with("held_connections", HELD_CONNECTIONS)
                .with("clients", CLIENTS)
                .with("requests_per_client", REQUESTS_PER_CLIENT),
        )
        .with(
            "capacity",
            Json::obj()
                .with("threaded_workers", THREADED_WORKERS)
                .with("threaded_concurrent", drill.threaded_concurrent)
                .with("reactors", REACTORS)
                .with("reactor_concurrent", drill.reactor_concurrent)
                .with("ratio", ratio)
                .with("idle_window_ms", IDLE_WINDOW.as_millis() as u64)
                .with("idle_wakeups", drill.idle_wakeups)
                .with("threaded_drain", drain_json(&drill.threaded_drain))
                .with("reactor_drain", drain_json(&drill.reactor_drain)),
        )
        .with(
            "router",
            Json::obj()
                .with("requests_per_count", expected)
                .with("errors", 0u64)
                .with("protocol_errors", 0u64)
                .with("reply_digest", digest),
        )
        .with(
            "sharding",
            Json::obj()
                .with(
                    "counts",
                    Json::Arr(counts.iter().map(|&c| Json::from(c)).collect()),
                )
                .with(
                    "per_count",
                    Json::Arr(
                        runs.iter()
                            .map(|run| {
                                Json::obj()
                                    .with("shards", run.shards)
                                    .with("threads_joined", run.stats.threads_joined)
                                    .with("shard_threads_joined", run.stats.shard_threads_joined)
                                    .with("clean", run.stats.clean)
                            })
                            .collect(),
                    ),
                ),
        )
        .with(
            "measured",
            Json::obj().with(
                "per_count",
                Json::Arr(
                    runs.iter()
                        .map(|run| {
                            Json::obj()
                                .with("shards", run.shards)
                                .with(
                                    "throughput_rps",
                                    run.requests as f64 / run.elapsed.as_secs_f64().max(1e-9),
                                )
                                .with("p50_ms", run.latencies.quantile(0.5).unwrap_or(0.0))
                                .with("p99_ms", run.latencies.quantile(0.99).unwrap_or(0.0))
                        })
                        .collect(),
                ),
            ),
        );
    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders only the sections that must not depend on thread or
    /// shard counts (everything except `sharding` and `measured`).
    fn deterministic_section(metrics: &Json) -> String {
        let mut out = String::new();
        for key in ["workload", "capacity", "router"] {
            out.push_str(&metrics.get(key).expect("section present").render_pretty());
            out.push('\n');
        }
        out
    }

    #[test]
    fn reactor_sustains_at_least_four_times_the_threaded_capacity() {
        let report = serve_scale();
        let m = &report.metrics;
        let num = |path: &[&str]| {
            let mut doc = m;
            for key in path {
                doc = doc.get(key).unwrap();
            }
            doc.as_f64().unwrap()
        };
        assert_eq!(
            num(&["capacity", "threaded_concurrent"]),
            THREADED_WORKERS as f64,
            "the threaded front-end parks one worker per held connection"
        );
        assert_eq!(
            num(&["capacity", "reactor_concurrent"]),
            HELD_CONNECTIONS as f64,
            "the reactor must answer every held connection"
        );
        assert!(num(&["capacity", "ratio"]) >= 4.0);
        assert_eq!(num(&["capacity", "idle_wakeups"]), 0.0);
        assert_eq!(
            num(&["router", "requests_per_count"]),
            (CLIENTS as usize * REQUESTS_PER_CLIENT) as f64
        );
        assert_eq!(num(&["router", "errors"]), 0.0);
        for stats in ["threaded_drain", "reactor_drain"] {
            assert_eq!(
                m.get("capacity").unwrap().get(stats).unwrap().get("clean"),
                Some(&Json::Bool(true))
            );
            assert_eq!(
                num(&["capacity", stats, "abandoned_connections"]),
                0.0,
                "the drill must leave no abandoned connections"
            );
        }
    }

    #[test]
    fn deterministic_sections_are_shard_count_invariant() {
        set_serve_scale_shards(1);
        let one = deterministic_section(&serve_scale().metrics);
        set_serve_scale_shards(2);
        let two = deterministic_section(&serve_scale().metrics);
        set_serve_scale_shards(0);
        assert_eq!(one, two, "artifact must not depend on the shard count");
    }
}
