//! Figures 7, 8a, 8b and 9: the component-catalog regressions and the
//! motor-sizing landscape.

use crate::experiments::Report;
use crate::table::{f, Table};
use drone_components::battery::CellCount;
use drone_components::catalog::Catalog;
use drone_components::esc::{Esc, EscClass};
use drone_components::frame::Frame;
use drone_components::motor::Motor;
use drone_components::paper;
use drone_components::propeller::Propeller;
use drone_components::units::{Grams, Millimeters};
use drone_telemetry::Json;

const CATALOG_SEED: u64 = 42;

/// Figure 7: battery capacity→weight fits per cell configuration,
/// re-derived from the synthetic 250-battery catalog and compared to the
/// published coefficients.
pub fn figure7() -> Report {
    let catalog = Catalog::synthesize_default(CATALOG_SEED);
    let mut t = Table::new(vec![
        "config",
        "fitted slope",
        "paper slope",
        "fitted intercept",
        "paper intercept",
        "R^2",
        "n",
    ]);
    for cells in CellCount::ALL {
        let Some(fit) = catalog.battery_fit(cells) else {
            continue;
        };
        let reference = paper::battery_weight_fit(cells);
        t.row(vec![
            cells.to_string(),
            f(fit.slope, 4),
            f(reference.slope, 4),
            f(fit.intercept, 1),
            f(reference.intercept, 1),
            f(fit.r_squared, 3),
            fit.n.to_string(),
        ]);
    }
    Report::from_table(
        format!(
            "Figure 7 — LiPo capacity vs weight per configuration (250 synthetic batteries)\n{}",
            t.render()
        ),
        &t,
    )
}

/// Figure 8a: ESC max continuous current → weight of four ESCs, by
/// thermal class.
pub fn figure8a() -> Report {
    let catalog = Catalog::synthesize_default(CATALOG_SEED);
    let mut t = Table::new(vec![
        "class",
        "fitted slope",
        "paper slope",
        "fitted intercept",
        "paper intercept",
        "n",
    ]);
    for (class, reference) in [
        (EscClass::LongFlight, paper::esc_long_flight_fit()),
        (EscClass::ShortFlight, paper::esc_short_flight_fit()),
    ] {
        let Some(fit) = catalog.esc_fit(class) else {
            continue;
        };
        t.row(vec![
            class.to_string(),
            f(fit.slope, 4),
            f(reference.slope, 4),
            f(fit.intercept, 1),
            f(reference.intercept, 1),
            fit.n.to_string(),
        ]);
    }
    Report::from_table(
        format!(
            "Figure 8a — ESC current vs weight of 4x ESCs (40 synthetic ESCs)\n{}",
            t.render()
        ),
        &t,
    )
}

/// Figure 8b: frame wheelbase → weight fit above 200 mm.
pub fn figure8b() -> Report {
    let catalog = Catalog::synthesize_default(CATALOG_SEED);
    let mut out = String::from("Figure 8b — frame wheelbase vs weight (25 synthetic frames)\n");
    let mut t = Table::new(vec!["", "slope", "intercept", "R^2"]);
    if let Some(fit) = catalog.frame_fit() {
        let reference = paper::frame_weight_fit();
        t.row(vec![
            "fitted".into(),
            f(fit.slope, 4),
            f(fit.intercept, 1),
            f(fit.r_squared, 3),
        ]);
        t.row(vec![
            "paper".into(),
            f(reference.slope, 4),
            f(reference.intercept, 1),
            "".into(),
        ]);
        out.push_str(&t.render());
    }
    out.push_str("small frames (<200 mm): 50-200 g scatter band, no linear trend (paper note)\n");
    Report::from_table(out, &t)
}

/// Figure 9: minimum per-motor max current draw vs basic weight, grouped
/// by wheelbase (propeller) and supply voltage, at TWR 2 — with the Kv
/// ratings the designs demand.
pub fn figure9() -> Report {
    let mut metrics = Json::obj();
    let mut out =
        String::from("Figure 9 — per-motor max current vs basic weight @ TWR 2 (Kv in brackets)\n");
    let configs = [
        (100.0, 200.0, 600.0),
        (200.0, 200.0, 1100.0),
        (450.0, 300.0, 1800.0),
        (800.0, 500.0, 2700.0),
    ];
    for (wheelbase, w_min, w_max) in configs {
        let frame = Frame::from_model(Millimeters(wheelbase));
        let prop = Propeller::standard(frame.max_propeller_inches());
        out.push_str(&format!(
            "\n{wheelbase:.0} mm wheelbase, {:.0}\" props:\n",
            prop.diameter_in
        ));
        let mut t = Table::new(vec!["basic weight (g)", "1S", "3S", "6S"]);
        let steps = 5;
        for i in 0..=steps {
            let basic = w_min + (w_max - w_min) * i as f64 / steps as f64;
            let mut cells_out = Vec::new();
            for cells in [CellCount::S1, CellCount::S3, CellCount::S6] {
                let voltage = cells.nominal_voltage();
                // Fixed point: motors+ESCs lift themselves on top of the
                // basic weight (battery excluded, as in the figure).
                let mut extra = Grams(0.0);
                let mut chosen = None;
                for _ in 0..16 {
                    let total = Grams(basic) + extra;
                    let thrust = total.weight_newtons() * paper::PAPER_TWR / 4.0;
                    let m = Motor::size_for(&prop, voltage, thrust);
                    let e = Esc::from_model(EscClass::LongFlight, m.max_current);
                    let new_extra = (m.weight + e.weight + prop.weight) * 4.0;
                    let done = (new_extra - extra).0.abs() < 0.01;
                    extra = new_extra;
                    chosen = Some(m);
                    if done {
                        break;
                    }
                }
                let m = chosen.expect("sizing ran");
                cells_out.push(format!(
                    "{:.1} A [{:.0}Kv]",
                    m.max_current.0, m.kv_rpm_per_volt
                ));
            }
            let mut row = vec![format!("{basic:.0}")];
            row.extend(cells_out);
            t.row(row);
        }
        out.push_str(&t.render());
        metrics.insert(&format!("wheelbase_{wheelbase:.0}mm"), t.to_json());
    }
    out.push_str(
        "\ntrends: current grows with weight; more cells -> less current & lower Kv;\n\
         larger props -> lower Kv, heavier motors (paper Figure 9 discussion)\n",
    );
    Report::new(out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_report_contains_all_configs() {
        let r = figure7();
        for c in ["1S", "2S", "3S", "4S", "5S", "6S"] {
            assert!(r.text.contains(c), "missing {c}:\n{}", r.text);
        }
    }

    #[test]
    fn figure8_reports_render() {
        assert!(figure8a().text.contains("long-flight"));
        assert!(figure8b().text.contains("1.2767"));
    }

    #[test]
    fn figure9_report_covers_wheelbases() {
        let r = figure9();
        for wb in ["100 mm", "200 mm", "450 mm", "800 mm"] {
            assert!(r.text.contains(wb), "missing {wb}");
        }
        assert!(r.text.contains("Kv"));
        assert!(r.metrics.get("wheelbase_450mm").is_some());
    }
}
