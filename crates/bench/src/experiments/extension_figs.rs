//! Extension experiments the paper describes but does not plot:
//! the §7 TWR sensitivity study ("A detailed evaluation for other TWR
//! values can be done in a similar way, released in our repository"),
//! the §3.1 LiDAR-payload study, and the fixed-point ablation behind the
//! FPGA bundle-adjustment rationale.

use crate::experiments::Report;
use crate::table::{f, pct, Table};
use drone_components::battery::CellCount;
use drone_components::compute::ExternalSensor;
use drone_components::units::{MilliampHours, Watts};
use drone_dse::design::DesignSpec;
use drone_dse::power::{FlyingLoad, PowerModel};
use drone_math::fixed::{solve_spd_q16, Q16};
use drone_math::{Matrix, Pcg32};

/// §7: the compute-power contribution shrinks as the target TWR grows —
/// TWR 2 is the paper's deliberate upper bound on the contribution.
pub fn twr_sweep() -> Report {
    let model = PowerModel::paper_defaults();
    let mut t = Table::new(vec![
        "TWR",
        "weight (g)",
        "hover power (W)",
        "20W compute share",
        "flight (min)",
    ]);
    for twr in [2.0, 3.0, 4.0, 5.0, 7.0] {
        let Ok(drone) = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
            .with_compute_power(Watts(20.0))
            .with_twr(twr)
            .size()
        else {
            t.row(vec![f(twr, 1), "infeasible".into()]);
            continue;
        };
        t.row(vec![
            f(twr, 1),
            f(drone.total_weight.0, 0),
            f(model.average_power(&drone, FlyingLoad::Hover).total().0, 0),
            pct(model.compute_share(&drone, FlyingLoad::Hover)),
            f(model.flight_time(&drone, FlyingLoad::Hover).0, 1),
        ]);
    }
    Report::from_table(
        format!(
            "S7 extension — TWR sensitivity (450 mm, 4 Ah 3S, 20 W chip)\n{}\n\
             paper: higher TWR values give 'a lower contribution of computation power consumption'\n",
            t.render()
        ),
        &t,
    )
}

/// §3.1: strapping a Table 4 LiDAR (self-powered, ~1-2 kg) onto a large
/// drone shrinks the main computer's share of total power — the payload
/// forces bigger motors whose draw dwarfs the chip.
pub fn lidar_payload() -> Report {
    let model = PowerModel::paper_defaults();
    let mut t = Table::new(vec![
        "payload",
        "payload (g)",
        "total weight (g)",
        "hover power (W)",
        "20W compute share",
    ]);
    let base_spec = || {
        DesignSpec::new(800.0, CellCount::S6, MilliampHours(8000.0)).with_compute_power(Watts(20.0))
    };
    let baseline = base_spec().size().expect("bare 800 mm design feasible");
    t.row(vec![
        "(none)".into(),
        "0".into(),
        f(baseline.total_weight.0, 0),
        f(
            model.average_power(&baseline, FlyingLoad::Hover).total().0,
            0,
        ),
        pct(model.compute_share(&baseline, FlyingLoad::Hover)),
    ]);
    for lidar in ExternalSensor::table4_lidars() {
        match base_spec().with_payload(lidar.weight).size() {
            Ok(drone) => t.row(vec![
                lidar.name.clone(),
                f(lidar.weight.0, 0),
                f(drone.total_weight.0, 0),
                f(model.average_power(&drone, FlyingLoad::Hover).total().0, 0),
                pct(model.compute_share(&drone, FlyingLoad::Hover)),
            ]),
            Err(e) => t.row(vec![
                lidar.name.clone(),
                f(lidar.weight.0, 0),
                format!("{e}"),
            ]),
        }
    }
    Report::from_table(
        format!(
            "S3.1 extension — LiDAR payloads on an 800 mm drone\n{}\n\
             paper: sensor weight 'reduces the contribution boundary of main computation power in large drones'\n",
            t.render()
        ),
        &t,
    )
}

/// Fixed-point ablation: solve BA-style SPD normal equations in Q16.16
/// (the FPGA datapath) vs f64, reporting the accuracy cost of the
/// hardware-friendly format.
pub fn fixed_point() -> Report {
    let mut rng = Pcg32::seed_from(20);
    let mut t = Table::new(vec![
        "system size",
        "f64 residual",
        "Q16.16 residual",
        "Q16.16 rel err",
    ]);
    for n in [4usize, 8, 12] {
        // A well-conditioned SPD system like a damped BA normal matrix.
        let mut j = Matrix::zeros(2 * n, n);
        for r in 0..2 * n {
            for c in 0..n {
                j[(r, c)] = rng.uniform(-1.0, 1.0);
            }
        }
        let a = j.transpose().matmul(&j).add_diagonal(1.0);
        let x_true: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let b = a.matmul(&Matrix::column(&x_true));

        let x_f64 = a.solve_spd(&b).expect("SPD");
        let res_f64: f64 = (0..n)
            .map(|i| (x_f64[(i, 0)] - x_true[i]).powi(2))
            .sum::<f64>()
            .sqrt();

        let a_q: Vec<Vec<Q16>> = (0..n)
            .map(|r| (0..n).map(|c| Q16::from_f64(a[(r, c)])).collect())
            .collect();
        let b_q: Vec<Q16> = (0..n).map(|i| Q16::from_f64(b[(i, 0)])).collect();
        match solve_spd_q16(&a_q, &b_q) {
            Some(x_q) => {
                let res_q: f64 = (0..n)
                    .map(|i| (x_q[i].to_f64() - x_true[i]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                let x_norm: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
                t.row(vec![
                    format!("{n}x{n}"),
                    format!("{res_f64:.2e}"),
                    format!("{res_q:.2e}"),
                    format!("{:.2e}", res_q / x_norm),
                ]);
            }
            None => t.row(vec![
                format!("{n}x{n}"),
                format!("{res_f64:.2e}"),
                "pivot underflow".into(),
            ]),
        }
    }
    Report::from_table(
        format!(
            "Ablation — fixed-point (Q16.16) vs f64 Cholesky on BA-style normal equations\n{}\n\
             the FPGA's fixed-point datapath costs ~1e-3 relative accuracy — irrelevant next to\n\
             pixel noise, which is why the paper's 'dense fixed-size matrix algebra' pipeline works\n",
            t.render()
        ),
        &t,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twr_sweep_shows_decreasing_share() {
        let r = twr_sweep();
        assert!(r.text.contains("TWR"), "{}", r.text);
        assert!(r.text.contains("lower contribution"));
    }

    #[test]
    fn lidar_payload_report_lists_table4_lidars() {
        let r = lidar_payload();
        for name in ["HoverMap", "YellowScan Surveyor", "Ultra Puck"] {
            assert!(r.text.contains(name), "missing {name}:\n{}", r.text);
        }
    }

    #[test]
    fn fixed_point_report_renders() {
        let r = fixed_point();
        assert!(r.text.contains("Q16.16"));
        assert!(r.text.contains("4x4"));
    }
}
