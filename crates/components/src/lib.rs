//! Component models for autonomous quadcopter drones.
//!
//! This crate is the workspace's substitute for the paper's survey of
//! **250 commercial batteries, 40 ESCs, 25 frames, and motor data from 150
//! manufacturers** (Hadidi et al., ASPLOS '21, §3.1). It provides:
//!
//! * Physical models of every fundamental subsystem component: LiPo
//!   [batteries](battery), [ESCs](esc), [frames](frame),
//!   [propellers](propeller), [BLDC motors](motor), and
//!   [compute boards & sensors](compute) (paper Table 4).
//! * A [synthetic commercial catalog](catalog) sampled around the paper's
//!   published regression lines with realistic scatter, from which the same
//!   linear relationships are **re-derived by least squares** — exercising
//!   the paper's extraction methodology end to end (Figures 7, 8a, 8b, 9).
//! * The paper's published constants and validation data in [`paper`].
//!
//! # Example
//!
//! ```
//! use drone_components::battery::CellCount;
//! use drone_components::catalog::Catalog;
//!
//! let catalog = Catalog::synthesize_default(42);
//! let fit = catalog.battery_fit(CellCount::S3).expect("enough 3S batteries");
//! // The paper's Figure 7 reports w = 0.074·mAh + 16.9 for 3S packs.
//! assert!((fit.slope - 0.074).abs() < 0.01);
//! ```

pub mod battery;
pub mod catalog;
pub mod compute;
pub mod esc;
pub mod frame;
pub mod motor;
pub mod paper;
pub mod propeller;
pub mod units;

pub use battery::{Battery, CellCount};
pub use catalog::Catalog;
pub use compute::{ComputeBoard, ComputeClass, ExternalSensor, SensorKind};
pub use esc::{Esc, EscClass};
pub use frame::Frame;
pub use motor::Motor;
pub use propeller::Propeller;
