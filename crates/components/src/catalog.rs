//! Synthetic commercial-component catalog (substitute for the paper's
//! survey of 250 batteries, 40 ESCs and 25 frames).
//!
//! The generators sample populations around the paper's published
//! regression lines with multiplicative scatter that mimics real product
//! spread (manufacturing variation, casing differences, discharge-rate
//! families). [`Catalog::battery_fit`] and friends then **re-derive** the
//! linear relationships by ordinary least squares — the same extraction
//! the paper performs on its survey — so the rest of the workspace can be
//! driven either by the published coefficients or by freshly fitted ones.

use crate::battery::{Battery, CellCount};
use crate::esc::{Esc, EscClass};
use crate::frame::Frame;
use crate::units::{Amps, Grams, MilliampHours, Millimeters};
use drone_math::{LinearFit, Pcg32};
use serde::{Deserialize, Serialize};

/// Population sizes for a synthesized catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogSize {
    /// Number of batteries (paper: 250 across all cell counts).
    pub batteries: usize,
    /// Number of ESCs (paper: 40).
    pub escs: usize,
    /// Number of frames (paper: 25).
    pub frames: usize,
}

impl Default for CatalogSize {
    /// The paper's survey sizes.
    fn default() -> Self {
        CatalogSize {
            batteries: 250,
            escs: 40,
            frames: 25,
        }
    }
}

/// A synthesized commercial-component population.
///
/// # Example
///
/// ```
/// use drone_components::catalog::Catalog;
/// use drone_components::battery::CellCount;
/// let catalog = Catalog::synthesize_default(7);
/// assert_eq!(catalog.batteries.len(), 250);
/// let fit = catalog.battery_fit(CellCount::S6).unwrap();
/// assert!(fit.r_squared > 0.8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    /// Battery population.
    pub batteries: Vec<Battery>,
    /// ESC population.
    pub escs: Vec<Esc>,
    /// Frame population.
    pub frames: Vec<Frame>,
}

impl Catalog {
    /// Synthesizes a catalog with the paper's survey sizes.
    pub fn synthesize_default(seed: u64) -> Catalog {
        Catalog::synthesize(seed, CatalogSize::default())
    }

    /// Synthesizes a catalog of the given size, deterministically per seed.
    pub fn synthesize(seed: u64, size: CatalogSize) -> Catalog {
        let mut rng = Pcg32::seed_from(seed);
        Catalog {
            batteries: synthesize_batteries(&mut rng, size.batteries),
            escs: synthesize_escs(&mut rng, size.escs),
            frames: synthesize_frames(&mut rng, size.frames),
        }
    }

    /// Batteries of one cell configuration.
    pub fn batteries_with(&self, cells: CellCount) -> impl Iterator<Item = &Battery> {
        self.batteries.iter().filter(move |b| b.cells == cells)
    }

    /// Least-squares weight-vs-capacity fit for one cell configuration
    /// (regenerates one Figure 7 line). `None` with fewer than 2 samples.
    pub fn battery_fit(&self, cells: CellCount) -> Option<LinearFit> {
        LinearFit::fit(
            self.batteries_with(cells)
                .map(|b| (b.capacity.0, b.weight.0)),
        )
    }

    /// Weight-of-four-ESCs vs per-ESC max current fit for one thermal
    /// class (regenerates one Figure 8a line).
    pub fn esc_fit(&self, class: EscClass) -> Option<LinearFit> {
        LinearFit::fit(
            self.escs
                .iter()
                .filter(|e| e.class == class)
                .map(|e| (e.max_continuous_current.0, e.set_of_four_weight().0)),
        )
    }

    /// Frame weight vs wheelbase fit for frames above 200 mm (regenerates
    /// the Figure 8b line).
    pub fn frame_fit(&self) -> Option<LinearFit> {
        LinearFit::fit(
            self.frames
                .iter()
                .filter(|f| f.wheelbase.0 > 200.0)
                .map(|f| (f.wheelbase.0, f.weight.0)),
        )
    }

    /// Validates every refitted line against the paper's published
    /// coefficients, returning `(label, slope_error, intercept_error)`
    /// triples of relative errors.
    pub fn validation_report(&self) -> Vec<(String, f64, f64)> {
        let mut out = Vec::new();
        for cells in CellCount::ALL {
            if let Some(fit) = self.battery_fit(cells) {
                let (se, ie) = fit.relative_error_to(&crate::paper::battery_weight_fit(cells));
                out.push((format!("battery {cells}"), se, ie));
            }
        }
        if let Some(fit) = self.esc_fit(EscClass::LongFlight) {
            let (se, ie) = fit.relative_error_to(&crate::paper::esc_long_flight_fit());
            out.push(("esc long-flight".to_owned(), se, ie));
        }
        if let Some(fit) = self.esc_fit(EscClass::ShortFlight) {
            let (se, ie) = fit.relative_error_to(&crate::paper::esc_short_flight_fit());
            out.push(("esc short-flight".to_owned(), se, ie));
        }
        if let Some(fit) = self.frame_fit() {
            let (se, ie) = fit.relative_error_to(&crate::paper::frame_weight_fit());
            out.push(("frame".to_owned(), se, ie));
        }
        out
    }
}

/// Capacity range the paper sweeps (Figure 7 x-axis), mAh.
const CAPACITY_RANGE: (f64, f64) = (100.0, 10_000.0);

/// Discharge-rate families on the market: 20C to 120C in steps of 5.
const DISCHARGE_C_RANGE: (f64, f64) = (20.0, 120.0);
const DISCHARGE_C_STEP: f64 = 5.0;

fn synthesize_batteries(rng: &mut Pcg32, count: usize) -> Vec<Battery> {
    let families = ((DISCHARGE_C_RANGE.1 - DISCHARGE_C_RANGE.0) / DISCHARGE_C_STEP) as u32 + 1;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let cells = CellCount::ALL[rng.below(CellCount::ALL.len() as u32) as usize];
        // Higher cell counts skew toward larger packs, as on the market.
        let lo = CAPACITY_RANGE.0 + 200.0 * f64::from(cells.cells());
        let capacity = rng.uniform(lo, CAPACITY_RANGE.1);
        let discharge_c = DISCHARGE_C_RANGE.0 + DISCHARGE_C_STEP * f64::from(rng.below(families));
        let line = crate::paper::battery_weight_fit(cells).predict(capacity);
        // Product scatter: ±8 % around the line plus heavier packs for
        // extreme discharge rates (the paper notes these do not deviate
        // from the per-configuration trend, so keep the effect small).
        let scatter = rng.normal_with(1.0, 0.05).clamp(0.85, 1.15);
        let c_penalty = 1.0 + 0.0004 * (discharge_c - 20.0);
        let weight = (line * scatter * c_penalty).max(3.0);
        out.push(Battery::new(
            cells,
            MilliampHours(capacity),
            discharge_c,
            Grams(weight),
        ));
    }
    out
}

fn synthesize_escs(rng: &mut Pcg32, count: usize) -> Vec<Esc> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        // Match the paper's mix: roughly half racing, half long-flight.
        let class = if i % 2 == 0 {
            EscClass::LongFlight
        } else {
            EscClass::ShortFlight
        };
        let current = rng.uniform(10.0, 90.0);
        let fit = match class {
            EscClass::LongFlight => crate::paper::esc_long_flight_fit(),
            EscClass::ShortFlight => crate::paper::esc_short_flight_fit(),
        };
        let four = (fit.predict(current) * rng.normal_with(1.0, 0.06).clamp(0.8, 1.2)).max(4.0);
        out.push(Esc::new(class, Amps(current), Grams(four / 4.0)));
    }
    out
}

fn synthesize_frames(rng: &mut Pcg32, count: usize) -> Vec<Frame> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let wheelbase = rng.uniform(80.0, 1000.0);
        let weight = if wheelbase > 200.0 {
            let line = crate::paper::frame_weight_fit().predict(wheelbase);
            (line * rng.normal_with(1.0, 0.08).clamp(0.75, 1.25)).max(30.0)
        } else {
            let (lo, hi) = crate::paper::SMALL_FRAME_WEIGHT_RANGE;
            rng.uniform(lo, hi)
        };
        out.push(Frame::new(Millimeters(wheelbase), Grams(weight)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Catalog::synthesize_default(11);
        let b = Catalog::synthesize_default(11);
        assert_eq!(a.batteries, b.batteries);
        assert_eq!(a.escs, b.escs);
        assert_eq!(a.frames, b.frames);
        let c = Catalog::synthesize_default(12);
        assert_ne!(a.batteries, c.batteries);
    }

    #[test]
    fn default_sizes_match_paper_survey() {
        let c = Catalog::synthesize_default(1);
        assert_eq!(c.batteries.len(), 250);
        assert_eq!(c.escs.len(), 40);
        assert_eq!(c.frames.len(), 25);
    }

    #[test]
    fn battery_fits_recover_published_lines() {
        let c = Catalog::synthesize_default(42);
        for cells in CellCount::ALL {
            let fit = c.battery_fit(cells).expect("population per config");
            let reference = crate::paper::battery_weight_fit(cells);
            let (slope_err, _) = fit.relative_error_to(&reference);
            assert!(
                slope_err < 0.10,
                "{cells}: fitted {fit} vs slope {}",
                reference.slope
            );
        }
    }

    #[test]
    fn esc_fits_recover_published_lines() {
        let c = Catalog::synthesize_default(42);
        let long = c.esc_fit(EscClass::LongFlight).unwrap();
        assert!((long.slope - 4.9678).abs() / 4.9678 < 0.15, "{long}");
        let short = c.esc_fit(EscClass::ShortFlight).unwrap();
        assert!((short.slope - 1.2269).abs() / 1.2269 < 0.25, "{short}");
    }

    #[test]
    fn frame_fit_recovers_published_line() {
        let c = Catalog::synthesize_default(42);
        let fit = c.frame_fit().unwrap();
        assert!((fit.slope - 1.2767).abs() / 1.2767 < 0.2, "{fit}");
    }

    #[test]
    fn validation_report_is_tight() {
        let c = Catalog::synthesize_default(7);
        let report = c.validation_report();
        assert!(report.len() >= 9, "6 battery + 2 esc + 1 frame entries");
        for (label, slope_err, _) in &report {
            assert!(*slope_err < 0.25, "{label}: slope error {slope_err}");
        }
    }

    #[test]
    fn larger_catalogs_fit_tighter() {
        // Ablation hook: regression stability improves with survey size.
        let small = Catalog::synthesize(
            3,
            CatalogSize {
                batteries: 30,
                escs: 10,
                frames: 10,
            },
        );
        let large = Catalog::synthesize(
            3,
            CatalogSize {
                batteries: 2500,
                escs: 400,
                frames: 250,
            },
        );
        let reference = crate::paper::battery_weight_fit(CellCount::S3);
        let err_of = |c: &Catalog| {
            c.battery_fit(CellCount::S3)
                .map(|f| f.relative_error_to(&reference).0)
                .unwrap_or(1.0)
        };
        assert!(err_of(&large) <= err_of(&small) + 0.02);
        assert!(err_of(&large) < 0.05);
    }

    #[test]
    fn synthesized_components_are_valid() {
        let c = Catalog::synthesize_default(5);
        for b in &c.batteries {
            assert!(b.weight.0 > 0.0 && b.capacity.0 > 0.0);
            let d = b.energy_density_wh_per_kg();
            assert!((30.0..400.0).contains(&d), "battery density {d}");
        }
        for e in &c.escs {
            assert!(e.weight.0 > 0.0 && e.max_continuous_current.0 >= 10.0);
        }
        for f in &c.frames {
            assert!(f.weight.0 >= 30.0 || f.wheelbase.0 <= 200.0);
        }
    }
}
