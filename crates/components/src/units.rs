//! Unit newtypes for the quantities the design-space model juggles.
//!
//! Weight, power, current, voltage, capacity and length all flow through
//! the same equations; newtypes keep grams from being added to watts
//! ([C-NEWTYPE]). Each type is a transparent wrapper with arithmetic
//! against itself and scalar scaling.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw numeric value in the type's unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// `true` when the value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise maximum.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Component-wise minimum.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.2} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Mass in grams (the paper quotes all component weights in grams).
    Grams,
    "g"
);
unit_newtype!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit_newtype!(
    /// Electrical current in amperes.
    Amps,
    "A"
);
unit_newtype!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
unit_newtype!(
    /// Battery charge capacity in milliamp-hours.
    MilliampHours,
    "mAh"
);
unit_newtype!(
    /// Length in millimetres (wheelbase sizes).
    Millimeters,
    "mm"
);
unit_newtype!(
    /// Energy in watt-hours.
    WattHours,
    "Wh"
);
unit_newtype!(
    /// Duration in minutes (flight times).
    Minutes,
    "min"
);

impl Volts {
    /// Power delivered at this voltage and the given current.
    pub fn power(self, current: Amps) -> Watts {
        Watts(self.0 * current.0)
    }
}

impl Watts {
    /// Current drawn at the given supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is zero or negative.
    pub fn current_at(self, volts: Volts) -> Amps {
        assert!(volts.0 > 0.0, "voltage must be positive, got {volts}");
        Amps(self.0 / volts.0)
    }
}

impl WattHours {
    /// How long this energy lasts at a constant power draw.
    ///
    /// # Panics
    ///
    /// Panics if `power` is zero or negative.
    pub fn duration_at(self, power: Watts) -> Minutes {
        assert!(power.0 > 0.0, "power must be positive, got {power}");
        Minutes(self.0 / power.0 * 60.0)
    }
}

impl Grams {
    /// Mass in kilograms.
    pub fn kilograms(self) -> f64 {
        self.0 / 1000.0
    }

    /// Weight force in newtons under standard gravity.
    pub fn weight_newtons(self) -> f64 {
        self.kilograms() * crate::units::STANDARD_GRAVITY
    }
}

impl Millimeters {
    /// Length in metres.
    pub fn meters(self) -> f64 {
        self.0 / 1000.0
    }

    /// Length in inches (propeller sizes are quoted in inches).
    pub fn inches(self) -> f64 {
        self.0 / 25.4
    }
}

/// Standard gravity, m/s².
pub const STANDARD_GRAVITY: f64 = 9.806_65;

/// Grams-force of thrust from newtons (hobby-grade thrust is quoted in g).
pub fn newtons_to_grams_force(newtons: f64) -> f64 {
    newtons / STANDARD_GRAVITY * 1000.0
}

/// Newtons from grams-force.
pub fn grams_force_to_newtons(grams: f64) -> f64 {
    grams / 1000.0 * STANDARD_GRAVITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_grams() {
        let a = Grams(100.0) + Grams(50.0);
        assert_eq!(a, Grams(150.0));
        assert_eq!(a - Grams(25.0), Grams(125.0));
        assert_eq!(a * 2.0, Grams(300.0));
        assert_eq!(2.0 * a, Grams(300.0));
        assert_eq!(a / 3.0, Grams(50.0));
        assert_eq!(Grams(100.0) / Grams(50.0), 2.0);
        assert_eq!(-Grams(1.0), Grams(-1.0));
    }

    #[test]
    fn sum_of_weights() {
        let total: Grams = [Grams(272.0), Grams(248.0), Grams(220.0)].into_iter().sum();
        assert_eq!(total, Grams(740.0));
    }

    #[test]
    fn electric_relations() {
        let p = Volts(11.1).power(Amps(10.0));
        assert!((p.0 - 111.0).abs() < 1e-12);
        let i = Watts(111.0).current_at(Volts(11.1));
        assert!((i.0 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn energy_duration() {
        // 30 Wh at 120 W lasts 15 minutes.
        let t = WattHours(30.0).duration_at(Watts(120.0));
        assert!((t.0 - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn duration_at_zero_power_panics() {
        let _ = WattHours(10.0).duration_at(Watts(0.0));
    }

    #[test]
    fn mass_conversions() {
        assert!((Grams(1000.0).kilograms() - 1.0).abs() < 1e-12);
        assert!((Grams(1000.0).weight_newtons() - STANDARD_GRAVITY).abs() < 1e-9);
        assert!((newtons_to_grams_force(grams_force_to_newtons(123.0)) - 123.0).abs() < 1e-9);
    }

    #[test]
    fn length_conversions() {
        assert!((Millimeters(254.0).inches() - 10.0).abs() < 1e-12);
        assert!((Millimeters(450.0).meters() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Grams(12.5).to_string(), "12.50 g");
        assert_eq!(Watts(3.0).to_string(), "3.00 W");
    }

    #[test]
    fn min_max() {
        assert_eq!(Grams(1.0).max(Grams(2.0)), Grams(2.0));
        assert_eq!(Grams(1.0).min(Grams(2.0)), Grams(1.0));
    }
}
