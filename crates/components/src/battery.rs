//! LiPo battery model (paper §2.1.2, §2.3, Figure 7).
//!
//! Lithium-polymer packs are the only realistic drone power source: highest
//! energy density and discharge rate of the rechargeable lithium family.
//! The paper's key empirical result (Figure 7) is a **per-cell-count linear
//! relationship between capacity (mAh) and pack weight (g)**, extracted
//! from 250 commercial batteries.

use crate::units::{Amps, Grams, MilliampHours, Volts, WattHours};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Nominal LiPo cell voltage (V/cell).
pub const CELL_NOMINAL_VOLTS: f64 = 3.7;

/// Fraction of a LiPo's capacity that can be drained safely in flight
/// (`LiPoDrainLimit` in the paper: only 85 % of capacity should be used).
pub const LIPO_DRAIN_LIMIT: f64 = 0.85;

/// Series cell count of a LiPo pack (`xS` in the `xSyP` convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellCount {
    /// 1 cell, 3.7 V.
    S1,
    /// 2 cells, 7.4 V.
    S2,
    /// 3 cells, 11.1 V.
    S3,
    /// 4 cells, 14.8 V.
    S4,
    /// 5 cells, 18.5 V.
    S5,
    /// 6 cells, 22.2 V.
    S6,
}

impl CellCount {
    /// All configurations the paper studies, ascending.
    pub const ALL: [CellCount; 6] = [
        CellCount::S1,
        CellCount::S2,
        CellCount::S3,
        CellCount::S4,
        CellCount::S5,
        CellCount::S6,
    ];

    /// Number of series cells.
    pub fn cells(self) -> u8 {
        match self {
            CellCount::S1 => 1,
            CellCount::S2 => 2,
            CellCount::S3 => 3,
            CellCount::S4 => 4,
            CellCount::S5 => 5,
            CellCount::S6 => 6,
        }
    }

    /// Nominal pack voltage (3.7 V × cells).
    pub fn nominal_voltage(self) -> Volts {
        Volts(CELL_NOMINAL_VOLTS * f64::from(self.cells()))
    }

    /// Builds from a cell count in `1..=6`.
    pub fn from_cells(cells: u8) -> Option<CellCount> {
        CellCount::ALL.into_iter().find(|c| c.cells() == cells)
    }
}

impl fmt::Display for CellCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}S", self.cells())
    }
}

/// One commercial-style LiPo battery pack (`xS1P`).
///
/// # Example
///
/// ```
/// use drone_components::battery::{Battery, CellCount};
/// let b = Battery::from_model(CellCount::S3, drone_components::units::MilliampHours(3000.0), 25.0);
/// assert!((b.nominal_voltage().0 - 11.1).abs() < 1e-9);
/// assert!(b.weight.0 > 200.0 && b.weight.0 < 300.0); // ≈ 0.074·3000 + 16.9
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Series cell configuration.
    pub cells: CellCount,
    /// Rated charge capacity.
    pub capacity: MilliampHours,
    /// Discharge rating (the `C` number): max continuous current is
    /// `capacity(Ah) × C`.
    pub discharge_c: f64,
    /// Pack weight including case, wires and protection circuitry.
    pub weight: Grams,
}

impl Battery {
    /// Creates a battery with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics if capacity, discharge rating or weight are not positive.
    pub fn new(
        cells: CellCount,
        capacity: MilliampHours,
        discharge_c: f64,
        weight: Grams,
    ) -> Battery {
        assert!(capacity.0 > 0.0, "capacity must be positive");
        assert!(discharge_c > 0.0, "discharge rating must be positive");
        assert!(weight.0 > 0.0, "weight must be positive");
        Battery {
            cells,
            capacity,
            discharge_c,
            weight,
        }
    }

    /// Creates a battery whose weight follows the paper's Figure 7 line for
    /// its cell count (the idealized end-product weight model).
    pub fn from_model(cells: CellCount, capacity: MilliampHours, discharge_c: f64) -> Battery {
        let fit = crate::paper::battery_weight_fit(cells);
        Battery::new(cells, capacity, discharge_c, Grams(fit.predict(capacity.0)))
    }

    /// Nominal pack voltage.
    pub fn nominal_voltage(&self) -> Volts {
        self.cells.nominal_voltage()
    }

    /// Total stored energy at nominal voltage.
    pub fn stored_energy(&self) -> WattHours {
        WattHours(self.capacity.0 / 1000.0 * self.nominal_voltage().0)
    }

    /// Energy usable in flight after the 85 % LiPo drain limit.
    pub fn usable_energy(&self) -> WattHours {
        WattHours(self.stored_energy().0 * LIPO_DRAIN_LIMIT)
    }

    /// Maximum safe continuous discharge current (`capacity(Ah) × C`).
    pub fn max_continuous_current(&self) -> Amps {
        Amps(self.capacity.0 / 1000.0 * self.discharge_c)
    }

    /// Gravimetric energy density (Wh/kg) of this pack — a sanity metric;
    /// real LiPo packs land roughly in 100–200 Wh/kg.
    pub fn energy_density_wh_per_kg(&self) -> f64 {
        self.stored_energy().0 / self.weight.kilograms()
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:.0} mAh {:.0}C ({})",
            self.cells, self.capacity.0, self.discharge_c, self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_voltages() {
        assert!((CellCount::S1.nominal_voltage().0 - 3.7).abs() < 1e-12);
        assert!((CellCount::S3.nominal_voltage().0 - 11.1).abs() < 1e-12);
        assert!((CellCount::S6.nominal_voltage().0 - 22.2).abs() < 1e-12);
    }

    #[test]
    fn from_cells_roundtrip() {
        for c in CellCount::ALL {
            assert_eq!(CellCount::from_cells(c.cells()), Some(c));
        }
        assert_eq!(CellCount::from_cells(0), None);
        assert_eq!(CellCount::from_cells(7), None);
    }

    #[test]
    fn display_convention() {
        assert_eq!(CellCount::S4.to_string(), "4S");
    }

    #[test]
    fn stored_and_usable_energy() {
        let b = Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0));
        // 3 Ah × 11.1 V = 33.3 Wh.
        assert!((b.stored_energy().0 - 33.3).abs() < 1e-9);
        assert!((b.usable_energy().0 - 33.3 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn discharge_current() {
        let b = Battery::new(CellCount::S4, MilliampHours(5000.0), 40.0, Grams(500.0));
        assert!((b.max_continuous_current().0 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn model_weight_matches_paper_line() {
        // Paper Figure 7, 3S: w = 0.074·mAh + 16.935.
        let b = Battery::from_model(CellCount::S3, MilliampHours(3000.0), 25.0);
        assert!((b.weight.0 - (0.074 * 3000.0 + 16.935)).abs() < 1e-9);
    }

    #[test]
    fn energy_density_is_realistic() {
        for cells in CellCount::ALL {
            for capacity in [1000.0, 3000.0, 8000.0] {
                let b = Battery::from_model(cells, MilliampHours(capacity), 25.0);
                let d = b.energy_density_wh_per_kg();
                assert!(
                    (50.0..350.0).contains(&d),
                    "implausible energy density {d:.0} Wh/kg for {b}"
                );
            }
        }
    }

    #[test]
    fn higher_cell_counts_weigh_more_at_same_capacity() {
        let w: Vec<f64> = CellCount::ALL
            .into_iter()
            .map(|c| Battery::from_model(c, MilliampHours(5000.0), 25.0).weight.0)
            .collect();
        for pair in w.windows(2) {
            assert!(
                pair[0] < pair[1],
                "weights not monotonic in cell count: {w:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Battery::new(CellCount::S1, MilliampHours(0.0), 20.0, Grams(10.0));
    }
}
