//! Electronic speed controller (ESC) model (paper §2.1.2, Figure 8a).
//!
//! Each BLDC motor needs its own ESC to synthesize three-phase current
//! from the battery's DC, switching at 60–600 kHz while delivering
//! hundreds of watts. ESC weight is strongly correlated with the maximum
//! continuous current rating because that rating sizes the MOSFETs and
//! capacitors. The paper splits the 40 surveyed ESCs into *long-flight*
//! parts and lighter *short-flight* (racing) parts that overheat on long
//! missions.

use crate::units::{Amps, Grams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Thermal class of an ESC (paper Figure 8a grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EscClass {
    /// Rated for sustained missions; heavier MOSFETs and caps.
    LongFlight,
    /// Racing parts (<5 min flights); light but thermally limited.
    ShortFlight,
}

impl fmt::Display for EscClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EscClass::LongFlight => "long-flight",
            EscClass::ShortFlight => "short-flight",
        })
    }
}

/// One ESC (a quadcopter carries four).
///
/// # Example
///
/// ```
/// use drone_components::esc::{Esc, EscClass};
/// let esc = Esc::from_model(EscClass::LongFlight, drone_components::units::Amps(30.0));
/// // Figure 8a: four long-flight 30 A ESCs weigh ≈ 4.97·30 − 15.8 ≈ 133 g.
/// assert!((esc.set_of_four_weight().0 - 133.3).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Esc {
    /// Thermal class.
    pub class: EscClass,
    /// Maximum continuous current rating.
    pub max_continuous_current: Amps,
    /// Weight of a single ESC.
    pub weight: Grams,
}

impl Esc {
    /// Creates an ESC with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics if current or weight are not positive.
    pub fn new(class: EscClass, max_continuous_current: Amps, weight: Grams) -> Esc {
        assert!(
            max_continuous_current.0 > 0.0,
            "current rating must be positive"
        );
        assert!(weight.0 > 0.0, "weight must be positive");
        Esc {
            class,
            max_continuous_current,
            weight,
        }
    }

    /// Creates an ESC on the paper's Figure 8a weight line for its class.
    ///
    /// The published fit maps per-ESC current to the weight of a **set of
    /// four**; a single ESC weighs a quarter of that.
    pub fn from_model(class: EscClass, max_continuous_current: Amps) -> Esc {
        let fit = match class {
            EscClass::LongFlight => crate::paper::esc_long_flight_fit(),
            EscClass::ShortFlight => crate::paper::esc_short_flight_fit(),
        };
        let four = fit.predict(max_continuous_current.0).max(4.0);
        Esc::new(class, max_continuous_current, Grams(four / 4.0))
    }

    /// Combined weight of the four ESCs a quadcopter needs.
    pub fn set_of_four_weight(&self) -> Grams {
        self.weight * 4.0
    }

    /// Whether this ESC can feed a motor drawing `current` continuously.
    pub fn supports(&self, current: Amps) -> bool {
        current.0 <= self.max_continuous_current.0
    }

    /// Typical ESC efficiency (fraction of input power reaching the
    /// motor); modern drone ESCs run at roughly 90–95 %.
    pub fn efficiency(&self) -> f64 {
        match self.class {
            EscClass::LongFlight => 0.93,
            EscClass::ShortFlight => 0.90,
        }
    }
}

impl fmt::Display for Esc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ESC {:.0} A ({})",
            self.class, self.max_continuous_current.0, self.weight
        )
    }
}

/// Picks the lightest ESC class able to sustain `current` for a mission of
/// `mission_minutes`; racing ESCs are only allowed on sub-5-minute flights.
pub fn select_class(mission_minutes: f64) -> EscClass {
    if mission_minutes < 5.0 {
        EscClass::ShortFlight
    } else {
        EscClass::LongFlight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_weight_follows_fig8a() {
        let esc = Esc::from_model(EscClass::LongFlight, Amps(30.0));
        let expect4 = 4.9678 * 30.0 - 15.757;
        assert!((esc.set_of_four_weight().0 - expect4).abs() < 1e-9);
        let racing = Esc::from_model(EscClass::ShortFlight, Amps(30.0));
        let expect4s = 1.2269 * 30.0 + 11.816;
        assert!((racing.set_of_four_weight().0 - expect4s).abs() < 1e-9);
    }

    #[test]
    fn racing_escs_lighter_at_high_current() {
        for amps in [30.0, 50.0, 80.0] {
            let long = Esc::from_model(EscClass::LongFlight, Amps(amps));
            let short = Esc::from_model(EscClass::ShortFlight, Amps(amps));
            assert!(short.weight < long.weight, "at {amps} A");
        }
    }

    #[test]
    fn low_current_weight_is_clamped_positive() {
        // The published long-flight line goes negative below ~3.2 A.
        let esc = Esc::from_model(EscClass::LongFlight, Amps(1.0));
        assert!(esc.weight.0 > 0.0);
    }

    #[test]
    fn supports_respects_rating() {
        let esc = Esc::from_model(EscClass::LongFlight, Amps(30.0));
        assert!(esc.supports(Amps(25.0)));
        assert!(esc.supports(Amps(30.0)));
        assert!(!esc.supports(Amps(30.1)));
    }

    #[test]
    fn class_selection_by_mission() {
        assert_eq!(select_class(3.0), EscClass::ShortFlight);
        assert_eq!(select_class(5.0), EscClass::LongFlight);
        assert_eq!(select_class(25.0), EscClass::LongFlight);
    }

    #[test]
    fn efficiency_in_realistic_band() {
        for class in [EscClass::LongFlight, EscClass::ShortFlight] {
            let e = Esc::from_model(class, Amps(20.0)).efficiency();
            assert!((0.85..=0.97).contains(&e));
        }
    }

    #[test]
    #[should_panic(expected = "current rating must be positive")]
    fn zero_current_panics() {
        let _ = Esc::new(EscClass::LongFlight, Amps(0.0), Grams(10.0));
    }
}
