//! Airframe model (paper §3.1, Figure 8b).
//!
//! The *wheelbase* — the diagonal motor-to-motor distance — is the frame's
//! defining parameter: it caps the propeller diameter and correlates with
//! weight even in carbon/glass-fiber construction. The paper fits
//! `w = 1.2767·wb − 167.6` for wheelbases above 200 mm from 25 commercial
//! frames, with sub-200 mm frames scattering between 50 g and 200 g.

use crate::units::{Grams, Millimeters};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quadcopter airframe.
///
/// # Example
///
/// ```
/// use drone_components::frame::Frame;
/// use drone_components::units::Millimeters;
/// let f = Frame::from_model(Millimeters(450.0));
/// assert!((f.weight.0 - (1.2767 * 450.0 - 167.6)).abs() < 1e-9);
/// assert!((f.max_propeller_inches() - 10.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Diagonal wheelbase.
    pub wheelbase: Millimeters,
    /// Bare frame weight (no electronics).
    pub weight: Grams,
}

impl Frame {
    /// Creates a frame with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics if wheelbase or weight are not positive.
    pub fn new(wheelbase: Millimeters, weight: Grams) -> Frame {
        assert!(wheelbase.0 > 0.0, "wheelbase must be positive");
        assert!(weight.0 > 0.0, "weight must be positive");
        Frame { wheelbase, weight }
    }

    /// Creates a frame whose weight follows the paper's Figure 8b line
    /// (above 200 mm) or the midpoint of its sub-200 mm scatter band.
    pub fn from_model(wheelbase: Millimeters) -> Frame {
        let weight = if wheelbase.0 > 200.0 {
            crate::paper::frame_weight_fit().predict(wheelbase.0)
        } else {
            // Small frames scatter in the paper's 50–200 g band; take a
            // monotonic path from the band floor up to where the >200 mm
            // line picks up, so sweeps across the boundary stay smooth.
            let (lo, _) = crate::paper::SMALL_FRAME_WEIGHT_RANGE;
            let at_200 = crate::paper::frame_weight_fit().predict(200.0);
            let t = (wheelbase.0 / 200.0).clamp(0.0, 1.0);
            lo + (at_200 - lo).max(0.0) * t
        };
        Frame::new(wheelbase, Grams(weight.max(20.0)))
    }

    /// Maximum propeller diameter this wheelbase can swing without blade
    /// overlap, in inches. Standard pairings (paper Figure 9 legend):
    /// 50 mm → 1", 100 mm → 2", 200 mm → 5", 450 mm → 10", 800 mm → 20".
    pub fn max_propeller_inches(&self) -> f64 {
        // Props on a quad sit on a square of side wb/√2; allowing ~90 % of
        // that pitch as diameter reproduces the standard pairings.
        let arm_pitch_mm = self.wheelbase.0 / std::f64::consts::SQRT_2;
        let d = arm_pitch_mm * 0.90 / 25.4;
        // Commercial props come in discrete sizes; keep continuous but
        // never below 1 inch.
        d.max(1.0)
    }

    /// Whether this frame is an indoor-class airframe (paper: indoor
    /// drones have wheelbases under 100 mm).
    pub fn is_indoor(&self) -> bool {
        self.wheelbase.0 < 100.0
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} mm frame ({})", self.wheelbase.0, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_model_matches_fig8b_above_200mm() {
        for wb in [250.0, 450.0, 800.0, 1000.0] {
            let f = Frame::from_model(Millimeters(wb));
            assert!((f.weight.0 - (1.2767 * wb - 167.6)).abs() < 1e-9, "wb {wb}");
        }
    }

    #[test]
    fn small_frames_in_band() {
        for wb in [50.0, 100.0, 150.0, 200.0] {
            let f = Frame::from_model(Millimeters(wb));
            assert!(
                (20.0..=200.0).contains(&f.weight.0),
                "wb {wb} weight {}",
                f.weight
            );
        }
    }

    #[test]
    fn standard_prop_pairings() {
        // Paper Figure 9 legend pairings, tolerance ±30 %.
        for (wb, inches) in [
            (50.0, 1.0),
            (100.0, 2.0),
            (200.0, 5.0),
            (450.0, 10.0),
            (800.0, 20.0),
        ] {
            let d = Frame::from_model(Millimeters(wb)).max_propeller_inches();
            assert!(
                (d - inches).abs() / inches < 0.35,
                "wb {wb}: got {d:.1}\", expected ≈{inches}\""
            );
        }
    }

    #[test]
    fn weight_monotonic_in_wheelbase() {
        let mut prev = 0.0;
        for wb in (50..=1000).step_by(50) {
            let w = Frame::from_model(Millimeters(wb as f64)).weight.0;
            assert!(w >= prev, "non-monotonic at {wb}");
            prev = w;
        }
    }

    #[test]
    fn indoor_classification() {
        assert!(Frame::from_model(Millimeters(80.0)).is_indoor());
        assert!(!Frame::from_model(Millimeters(100.0)).is_indoor());
    }

    #[test]
    #[should_panic(expected = "wheelbase must be positive")]
    fn zero_wheelbase_panics() {
        let _ = Frame::new(Millimeters(0.0), Grams(100.0));
    }
}
