//! Flight controllers, companion compute boards and external sensors
//! (paper §3.1 Table 4).
//!
//! The paper divides controllers into *basic* (inner-loop only, ≤~2 W) and
//! *improved* (customizable inner loop plus some outer-loop capability,
//! 0.5–20 W), and treats heavy payload sensors (HD cameras, LiDARs) as
//! self-contained weight+power line items.

use crate::paper::{table4, Table4Group};
use crate::units::{Grams, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Capability class of a compute board (paper Table 4 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeClass {
    /// Inner-loop-only flight controller (STM32-class, <~2 W).
    Basic,
    /// Companion computer with outer-loop capability (RPi/TX2-class).
    Improved,
}

impl fmt::Display for ComputeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComputeClass::Basic => "basic",
            ComputeClass::Improved => "improved",
        })
    }
}

/// A compute board mounted on the drone.
///
/// # Example
///
/// ```
/// use drone_components::compute::ComputeBoard;
/// let rpi = ComputeBoard::raspberry_pi_4();
/// assert_eq!(rpi.name, "Raspberry Pi 4");
/// assert!(rpi.power.0 <= 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeBoard {
    /// Product name.
    pub name: String,
    /// Capability class.
    pub class: ComputeClass,
    /// Board weight.
    pub weight: Grams,
    /// Typical sustained power draw.
    pub power: Watts,
}

impl ComputeBoard {
    /// Creates a board from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if weight or power are not positive.
    pub fn new(name: impl Into<String>, class: ComputeClass, weight: Grams, power: Watts) -> Self {
        let name = name.into();
        assert!(weight.0 > 0.0, "weight must be positive");
        assert!(power.0 > 0.0, "power must be positive");
        ComputeBoard {
            name,
            class,
            weight,
            power,
        }
    }

    /// Looks up a board from Table 4 by exact name.
    pub fn from_table4(name: &str) -> Option<ComputeBoard> {
        table4().into_iter().find(|r| r.name == name).and_then(|r| {
            let class = match r.group {
                Table4Group::BasicController => ComputeClass::Basic,
                Table4Group::ImprovedController => ComputeClass::Improved,
                _ => return None,
            };
            Some(ComputeBoard::new(r.name, class, r.weight, r.power))
        })
    }

    /// The Raspberry Pi 4 used as the paper's baseline SLAM platform.
    pub fn raspberry_pi_4() -> ComputeBoard {
        ComputeBoard::from_table4("Raspberry Pi 4").expect("table 4 contains the RPi 4")
    }

    /// The Nvidia Jetson TX2 high-end commercial solution.
    pub fn jetson_tx2() -> ComputeBoard {
        ComputeBoard::from_table4("Nvidia Jetson TX2").expect("table 4 contains the TX2")
    }

    /// The Navio2 flight-controller HAT of the paper's open drone.
    pub fn navio2() -> ComputeBoard {
        ComputeBoard::from_table4("Navio2").expect("table 4 contains the Navio2")
    }

    /// Every Table 4 compute board.
    pub fn all_table4() -> Vec<ComputeBoard> {
        table4()
            .into_iter()
            .filter_map(|r| ComputeBoard::from_table4(r.name))
            .collect()
    }
}

impl fmt::Display for ComputeBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} controller, {}, {})",
            self.name, self.class, self.weight, self.power
        )
    }
}

/// Kind of external sensor payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Analog first-person-view camera (≤1 W).
    FpvCamera,
    /// HD camera (self-powered in the paper's accounting).
    HdCamera,
    /// Stand-alone LiDAR payload with its own battery and compute.
    Lidar,
    /// GPS receiver.
    Gps,
    /// Telemetry radio.
    Telemetry,
}

/// An external sensor line item: weight always counts against lift; power
/// counts against the main battery only when not self-powered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalSensor {
    /// Product or generic name.
    pub name: String,
    /// Sensor kind.
    pub kind: SensorKind,
    /// Payload weight.
    pub weight: Grams,
    /// Power draw.
    pub power: Watts,
    /// Whether it carries its own battery (drone pays weight, not power).
    pub self_powered: bool,
}

impl ExternalSensor {
    /// Creates a sensor line item.
    ///
    /// # Panics
    ///
    /// Panics if weight is not positive or power is negative.
    pub fn new(
        name: impl Into<String>,
        kind: SensorKind,
        weight: Grams,
        power: Watts,
        self_powered: bool,
    ) -> Self {
        let name = name.into();
        assert!(weight.0 > 0.0, "weight must be positive");
        assert!(power.0 >= 0.0, "power must be non-negative");
        ExternalSensor {
            name,
            kind,
            weight,
            power,
            self_powered,
        }
    }

    /// Power this sensor draws from the *main* battery.
    pub fn battery_power(&self) -> Watts {
        if self.self_powered {
            Watts::ZERO
        } else {
            self.power
        }
    }

    /// The Table 4 LiDAR payloads (all self-powered).
    pub fn table4_lidars() -> Vec<ExternalSensor> {
        table4()
            .into_iter()
            .filter(|r| r.group == Table4Group::Lidar)
            .map(|r| ExternalSensor::new(r.name, SensorKind::Lidar, r.weight, r.power, true))
            .collect()
    }

    /// The Table 4 FPV cameras (battery-powered, ≤1 W).
    pub fn table4_fpv_cameras() -> Vec<ExternalSensor> {
        table4()
            .into_iter()
            .filter(|r| r.group == Table4Group::FpvCamera)
            .map(|r| ExternalSensor::new(r.name, SensorKind::FpvCamera, r.weight, r.power, false))
            .collect()
    }
}

impl fmt::Display for ExternalSensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {}, {}{})",
            self.name,
            self.kind,
            self.weight,
            self.power,
            if self.self_powered {
                ", self-powered"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi_and_tx2_lookup() {
        let rpi = ComputeBoard::raspberry_pi_4();
        assert_eq!(rpi.class, ComputeClass::Improved);
        assert_eq!(rpi.weight, Grams(50.0));
        let tx2 = ComputeBoard::jetson_tx2();
        assert_eq!(tx2.power, Watts(10.0));
        assert_eq!(tx2.weight, Grams(85.0));
    }

    #[test]
    fn unknown_board_is_none() {
        assert!(ComputeBoard::from_table4("Flux Capacitor").is_none());
        // Sensors in Table 4 are not compute boards.
        assert!(ComputeBoard::from_table4("Ultra Puck").is_none());
    }

    #[test]
    fn all_table4_boards() {
        let boards = ComputeBoard::all_table4();
        assert_eq!(boards.len(), 10, "5 basic + 5 improved");
        assert!(
            boards
                .iter()
                .filter(|b| b.class == ComputeClass::Basic)
                .count()
                == 5
        );
    }

    #[test]
    fn basic_boards_are_low_power() {
        for b in ComputeBoard::all_table4() {
            if b.class == ComputeClass::Basic {
                assert!(b.power.0 <= 2.0, "{b}");
            }
        }
    }

    #[test]
    fn self_powered_lidar_draws_no_battery_power() {
        let lidars = ExternalSensor::table4_lidars();
        assert_eq!(lidars.len(), 3);
        for l in &lidars {
            assert!(l.self_powered);
            assert_eq!(l.battery_power(), Watts::ZERO);
            assert!(l.weight.0 >= 900.0, "LiDARs are ~1 kg payloads: {l}");
        }
    }

    #[test]
    fn fpv_cameras_draw_battery_power() {
        for c in ExternalSensor::table4_fpv_cameras() {
            assert!(!c.self_powered);
            assert!(c.battery_power().0 > 0.0);
            assert!(c.power.0 <= 1.0, "FPV cams stay under 1 W: {c}");
        }
    }

    #[test]
    fn display_mentions_class() {
        let s = ComputeBoard::raspberry_pi_4().to_string();
        assert!(s.contains("improved"), "{s}");
    }
}
