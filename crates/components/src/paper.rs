//! Published constants from Hadidi et al., ASPLOS '21.
//!
//! Everything in this module is transcribed from the paper's figures and
//! tables: the regression coefficients of Figures 7 and 8, the commercial
//! drone validation points of Figures 10 and 11, the flight-controller
//! inventory of Table 4 and the platform comparison of Table 5. These
//! constants (a) seed the synthetic catalog generators and (b) serve as the
//! reference values every reproduced experiment is checked against.

use crate::battery::CellCount;
use crate::units::{Grams, Watts};
use drone_math::LinearFit;
use serde::{Deserialize, Serialize};

/// Figure 7 battery weight-vs-capacity line for a cell configuration:
/// `weight(g) = slope · capacity(mAh) + intercept`.
pub fn battery_weight_fit(cells: CellCount) -> LinearFit {
    let (slope, intercept) = match cells {
        CellCount::S1 => (0.019, 4.856),
        CellCount::S2 => (0.050, 12.316),
        CellCount::S3 => (0.074, 16.935),
        CellCount::S4 => (0.077, 81.265),
        CellCount::S5 => (0.118, 45.478),
        CellCount::S6 => (0.116, 159.117),
    };
    LinearFit {
        slope,
        intercept,
        r_squared: 1.0,
        n: 0,
    }
}

/// Figure 8a, long-flight ESCs: total weight of **four** ESCs (g) vs max
/// continuous current per ESC (A): `w = 4.9678·I − 15.757`.
pub fn esc_long_flight_fit() -> LinearFit {
    LinearFit {
        slope: 4.9678,
        intercept: -15.757,
        r_squared: 1.0,
        n: 0,
    }
}

/// Figure 8a, short-flight (racing) ESCs: `w = 1.2269·I + 11.816`.
pub fn esc_short_flight_fit() -> LinearFit {
    LinearFit {
        slope: 1.2269,
        intercept: 11.816,
        r_squared: 1.0,
        n: 0,
    }
}

/// Figure 8b, frames above 200 mm wheelbase: `w = 1.2767·wb − 167.6`.
pub fn frame_weight_fit() -> LinearFit {
    LinearFit {
        slope: 1.2767,
        intercept: -167.6,
        r_squared: 1.0,
        n: 0,
    }
}

/// Figure 8b note: frames under 200 mm scatter between 50 g and 200 g with
/// no usable linear trend; this is the band the paper draws.
pub const SMALL_FRAME_WEIGHT_RANGE: (f64, f64) = (50.0, 200.0);

/// Target thrust-to-weight ratio used throughout the paper's sweeps (§2.3):
/// TWR 2 is the minimum for controllable flight and maximizes the apparent
/// compute-power contribution.
pub const PAPER_TWR: f64 = 2.0;

/// Hover ("low-load") flying load: 20–30 % of maximum current draw (§3.2).
pub const HOVER_LOAD_RANGE: (f64, f64) = (0.20, 0.30);

/// Maneuvering flying load: 60–70 % of maximum current draw (§3.2).
pub const MANEUVER_LOAD_RANGE: (f64, f64) = (0.60, 0.70);

/// A commercial drone used as a validation point in Figures 10 and 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommercialDrone {
    /// Product name.
    pub name: &'static str,
    /// Take-off weight (g).
    pub weight: Grams,
    /// Wheelbase class the paper plots it against (mm).
    pub wheelbase_mm: f64,
    /// Battery cell count.
    pub cells: CellCount,
    /// Battery capacity (mAh).
    pub capacity_mah: f64,
    /// Manufacturer-claimed flight time (minutes).
    pub flight_time_min: f64,
    /// Estimated heavy-computation (vision/autonomy) power draw.
    pub heavy_compute: Watts,
}

/// Commercial validation drones (Figures 10 & 11 diamonds; specs from the
/// cited product pages [33, 52–56, 69, 70]).
pub fn commercial_drones() -> Vec<CommercialDrone> {
    vec![
        CommercialDrone {
            name: "Parrot Mambo",
            weight: Grams(63.0),
            wheelbase_mm: 100.0,
            cells: CellCount::S1,
            capacity_mah: 660.0,
            flight_time_min: 8.0,
            heavy_compute: Watts(2.0),
        },
        CommercialDrone {
            name: "DJI Spark",
            weight: Grams(300.0),
            wheelbase_mm: 170.0,
            cells: CellCount::S3,
            capacity_mah: 1480.0,
            flight_time_min: 16.0,
            heavy_compute: Watts(8.0),
        },
        CommercialDrone {
            name: "Parrot Anafi",
            weight: Grams(320.0),
            wheelbase_mm: 240.0,
            cells: CellCount::S2,
            capacity_mah: 2700.0,
            flight_time_min: 25.0,
            heavy_compute: Watts(6.0),
        },
        CommercialDrone {
            name: "DJI Mavic Air",
            weight: Grams(430.0),
            wheelbase_mm: 213.0,
            cells: CellCount::S3,
            capacity_mah: 2375.0,
            flight_time_min: 21.0,
            heavy_compute: Watts(8.0),
        },
        CommercialDrone {
            name: "Parrot Bebop 2",
            weight: Grams(500.0),
            wheelbase_mm: 328.0,
            cells: CellCount::S3,
            capacity_mah: 2700.0,
            flight_time_min: 25.0,
            heavy_compute: Watts(8.0),
        },
        CommercialDrone {
            name: "Skydio 2",
            weight: Grams(775.0),
            wheelbase_mm: 270.0,
            cells: CellCount::S4,
            capacity_mah: 4280.0,
            flight_time_min: 23.0,
            heavy_compute: Watts(20.0),
        },
        CommercialDrone {
            name: "DJI Mavic",
            weight: Grams(734.0),
            wheelbase_mm: 335.0,
            cells: CellCount::S3,
            capacity_mah: 3830.0,
            flight_time_min: 27.0,
            heavy_compute: Watts(5.0),
        },
        CommercialDrone {
            name: "DJI Phantom 4",
            weight: Grams(1380.0),
            wheelbase_mm: 350.0,
            cells: CellCount::S4,
            capacity_mah: 5350.0,
            flight_time_min: 28.0,
            heavy_compute: Watts(8.0),
        },
        CommercialDrone {
            name: "DJI Matrice 600",
            weight: Grams(9500.0),
            wheelbase_mm: 1133.0,
            cells: CellCount::S6,
            capacity_mah: 4500.0,
            flight_time_min: 16.0,
            heavy_compute: Watts(20.0),
        },
    ]
}

/// The six nano/micro drones of Figure 11 (a subset of
/// [`commercial_drones`] in the paper's plotting order).
pub fn figure11_drones() -> Vec<CommercialDrone> {
    let order = [
        "Parrot Mambo",
        "Parrot Anafi",
        "DJI Spark",
        "DJI Mavic Air",
        "Parrot Bebop 2",
        "Skydio 2",
    ];
    let all = commercial_drones();
    order
        .iter()
        .map(|n| {
            all.iter()
                .find(|d| &d.name == n)
                .expect("figure 11 drone present")
                .clone()
        })
        .collect()
}

/// Paper-reported best-configuration flight times (§3.2 validation): the
/// model's best design per wheelbase should fly roughly this long, minutes.
///
/// Wheelbases within 0.25 mm of a studied point match it, so grid
/// coordinates that arrive with float error (449.999…) still look up;
/// `as u32` truncation used to send those to `None`.
pub fn best_flight_time_minutes(wheelbase_mm: f64) -> Option<f64> {
    let rounded = wheelbase_mm.round();
    if !rounded.is_finite() || (wheelbase_mm - rounded).abs() > 0.25 {
        return None;
    }
    match rounded as i64 {
        100 => Some(23.0),
        450 => Some(19.0),
        800 => Some(22.0),
        _ => None,
    }
}

/// One row of Table 4 (flight controllers, compute boards, sensors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Product name.
    pub name: &'static str,
    /// Category within the table.
    pub group: Table4Group,
    /// Weight (g).
    pub weight: Grams,
    /// Power consumption (W).
    pub power: Watts,
}

/// Table 4 grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Table4Group {
    /// Basic flight controllers: inner-loop only.
    BasicController,
    /// Improved controllers / companion computers.
    ImprovedController,
    /// First-person-view cameras.
    FpvCamera,
    /// Stand-alone LiDAR payloads.
    Lidar,
}

/// Table 4 transcription. Power is converted to watts at the quoted rail.
pub fn table4() -> Vec<Table4Row> {
    use Table4Group::*;
    vec![
        Table4Row {
            name: "iFlight SucceX-E F4",
            group: BasicController,
            weight: Grams(7.6),
            power: Watts(0.5),
        },
        Table4Row {
            name: "DJI NAZA-M Lite",
            group: BasicController,
            weight: Grams(66.3),
            power: Watts(1.5),
        },
        Table4Row {
            name: "DJI NAZA-M V2",
            group: BasicController,
            weight: Grams(82.0),
            power: Watts(1.5),
        },
        Table4Row {
            name: "Pixhawk 4",
            group: BasicController,
            weight: Grams(15.8),
            power: Watts(2.0),
        },
        Table4Row {
            name: "Mateksys F405",
            group: BasicController,
            weight: Grams(17.0),
            power: Watts(1.0),
        },
        Table4Row {
            name: "Intel Aero",
            group: ImprovedController,
            weight: Grams(30.0),
            power: Watts(10.0),
        },
        Table4Row {
            name: "Navio2",
            group: ImprovedController,
            weight: Grams(23.0),
            power: Watts(0.75),
        },
        Table4Row {
            name: "Raspberry Pi 4",
            group: ImprovedController,
            weight: Grams(50.0),
            power: Watts(5.0),
        },
        Table4Row {
            name: "Nvidia Jetson TX2",
            group: ImprovedController,
            weight: Grams(85.0),
            power: Watts(10.0),
        },
        Table4Row {
            name: "DJI Manifold",
            group: ImprovedController,
            weight: Grams(200.0),
            power: Watts(20.0),
        },
        Table4Row {
            name: "Eachine Bat 19S 800TVL",
            group: FpvCamera,
            weight: Grams(8.0),
            power: Watts(0.25),
        },
        Table4Row {
            name: "RunCam Night Eagle 2",
            group: FpvCamera,
            weight: Grams(14.5),
            power: Watts(1.0),
        },
        Table4Row {
            name: "HoverMap",
            group: Lidar,
            weight: Grams(1800.0),
            power: Watts(50.0),
        },
        Table4Row {
            name: "YellowScan Surveyor",
            group: Lidar,
            weight: Grams(1600.0),
            power: Watts(15.0),
        },
        Table4Row {
            name: "Ultra Puck",
            group: Lidar,
            weight: Grams(925.0),
            power: Watts(10.0),
        },
    ]
}

/// Representative compute power levels the paper sweeps (§3.1): a 3 W
/// "basic" chip and a 20 W "advanced" GPU-CPU system.
pub const BASIC_CHIP: Watts = Watts(3.0);
/// See [`BASIC_CHIP`].
pub const ADVANCED_CHIP: Watts = Watts(20.0);

/// Figure 14: the authors' open-source 450 mm drone weight breakdown.
pub fn our_drone_weight_breakdown() -> Vec<(&'static str, Grams)> {
    vec![
        ("Frame", Grams(272.0)),
        ("Battery", Grams(248.0)),
        ("Motors", Grams(220.0)),
        ("ESC", Grams(112.0)),
        ("RPi", Grams(50.0)),
        ("Propellers", Grams(40.0)),
        ("GPS", Grams(30.0)),
        ("Navio2", Grams(23.0)),
        ("Misc", Grams(20.0)),
        ("RC Receiver", Grams(17.0)),
        ("Telemetry", Grams(15.0)),
        ("Power Module", Grams(15.0)),
        ("PPM Encoder", Grams(9.0)),
    ]
}

/// Table 5 reference: platform comparison for SLAM offload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Platform name.
    pub platform: &'static str,
    /// SLAM speedup over the RPi baseline.
    pub slam_speedup: f64,
    /// Power overhead (W) of adding the platform.
    pub power_overhead: Watts,
    /// Weight overhead (g) of adding the platform.
    pub weight_overhead: Grams,
    /// Gained flight time on small drones (min) vs RPi baseline.
    pub gained_minutes_small: f64,
    /// Gained flight time on large drones (min) vs RPi baseline.
    pub gained_minutes_large: f64,
}

/// Table 5 transcription (gained-minute entries use the range midpoints).
pub fn table5() -> Vec<Table5Row> {
    vec![
        Table5Row {
            platform: "RPi",
            slam_speedup: 1.0,
            power_overhead: Watts(2.0),
            weight_overhead: Grams(50.0),
            gained_minutes_small: 0.0,
            gained_minutes_large: 0.0,
        },
        Table5Row {
            platform: "TX2",
            slam_speedup: 2.16,
            power_overhead: Watts(10.0),
            weight_overhead: Grams(85.0),
            gained_minutes_small: -4.0,
            gained_minutes_large: -1.5,
        },
        Table5Row {
            platform: "FPGA",
            slam_speedup: 30.70,
            power_overhead: Watts(0.417),
            weight_overhead: Grams(75.0),
            gained_minutes_small: 2.5,
            gained_minutes_large: 1.0,
        },
        Table5Row {
            platform: "ASIC",
            slam_speedup: 23.53,
            power_overhead: Watts(0.024),
            weight_overhead: Grams(20.0),
            gained_minutes_small: 2.7,
            gained_minutes_large: 1.0,
        },
    ]
}

/// §5.1 RPi power levels on the authors' drone (Figure 16a).
pub mod rpi_power {
    use crate::units::Watts;
    /// Autopilot alone.
    pub const AUTOPILOT: Watts = Watts(3.39);
    /// Autopilot plus idle SLAM (drone not flying).
    pub const AUTOPILOT_SLAM_IDLE: Watts = Watts(4.05);
    /// Autopilot plus actively processing SLAM during flight (average).
    pub const AUTOPILOT_SLAM_FLYING: Watts = Watts(4.56);
    /// Peak during flight.
    pub const PEAK: Watts = Watts(5.0);
}

/// §5.1 whole-drone power on the authors' 450 mm build (Figure 16b):
/// ~130 W average at 30 % flying load, peaks ~250 W at 58 % load.
pub mod drone_power {
    use crate::units::Watts;
    /// Average in-flight power.
    pub const AVERAGE: Watts = Watts(130.0);
    /// Peak with simple movements.
    pub const PEAK: Watts = Watts(250.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_fits_cover_all_configs() {
        for c in CellCount::ALL {
            let f = battery_weight_fit(c);
            assert!(f.slope > 0.0, "{c}");
            // Predicted weight at 5 Ah must be positive and under 2 kg.
            let w = f.predict(5000.0);
            assert!((0.0..2000.0).contains(&w), "{c}: {w}");
        }
    }

    #[test]
    fn battery_fit_slopes_increase_with_cells() {
        // More cells at equal capacity = strictly more weight (slope at
        // 5 Ah); the S4/S5 pair crosses in intercept but not at scale.
        let w3 = battery_weight_fit(CellCount::S3).predict(5000.0);
        let w4 = battery_weight_fit(CellCount::S4).predict(5000.0);
        let w6 = battery_weight_fit(CellCount::S6).predict(5000.0);
        assert!(w3 < w4 && w4 < w6);
    }

    #[test]
    fn esc_long_flight_heavier_at_scale() {
        let long = esc_long_flight_fit();
        let short = esc_short_flight_fit();
        // Racing ESCs are lighter at high current (they overheat in long
        // flights instead).
        assert!(long.predict(60.0) > short.predict(60.0));
    }

    #[test]
    fn table4_groups_nonempty() {
        let t = table4();
        for g in [
            Table4Group::BasicController,
            Table4Group::ImprovedController,
            Table4Group::FpvCamera,
            Table4Group::Lidar,
        ] {
            assert!(t.iter().any(|r| r.group == g), "{g:?} missing");
        }
        // Table ordering check: basic controllers stay under ~2 W.
        assert!(t
            .iter()
            .filter(|r| r.group == Table4Group::BasicController)
            .all(|r| r.power.0 <= 2.0));
    }

    #[test]
    fn figure14_totals_match_paper_drone() {
        let total: f64 = our_drone_weight_breakdown().iter().map(|(_, w)| w.0).sum();
        // Paper drone: ~1.07 kg with frame 25 % share.
        assert!((1000.0..1150.0).contains(&total), "total {total}");
        let frame = our_drone_weight_breakdown()[0].1 .0;
        let share = frame / total;
        assert!((0.22..0.28).contains(&share), "frame share {share}");
    }

    #[test]
    fn table5_fpga_wins() {
        let t = table5();
        let fpga = t.iter().find(|r| r.platform == "FPGA").unwrap();
        let tx2 = t.iter().find(|r| r.platform == "TX2").unwrap();
        assert!(fpga.slam_speedup > 10.0 * tx2.slam_speedup / 2.16);
        assert!(fpga.gained_minutes_small > 0.0);
        assert!(tx2.gained_minutes_small < 0.0);
    }

    #[test]
    fn figure11_selection() {
        let f11 = figure11_drones();
        assert_eq!(f11.len(), 6);
        assert_eq!(f11[0].name, "Parrot Mambo");
        assert_eq!(f11[5].name, "Skydio 2");
    }

    #[test]
    fn best_flight_times() {
        assert_eq!(best_flight_time_minutes(100.0), Some(23.0));
        assert_eq!(best_flight_time_minutes(450.0), Some(19.0));
        assert_eq!(best_flight_time_minutes(800.0), Some(22.0));
        assert_eq!(best_flight_time_minutes(333.0), None);
    }

    #[test]
    fn best_flight_times_tolerate_grid_float_error() {
        // Truncation used to map 449.999 -> 449 -> None.
        assert_eq!(best_flight_time_minutes(449.999), Some(19.0));
        assert_eq!(best_flight_time_minutes(450.001), Some(19.0));
        assert_eq!(best_flight_time_minutes(99.76), Some(23.0));
        // Half a millimetre off is a different design point, not noise.
        assert_eq!(best_flight_time_minutes(100.5), None);
        assert_eq!(best_flight_time_minutes(449.6), None);
        assert_eq!(best_flight_time_minutes(f64::NAN), None);
        assert_eq!(best_flight_time_minutes(f64::INFINITY), None);
        assert_eq!(best_flight_time_minutes(-450.0), None);
    }
}
