//! Propeller aerodynamics (paper §2.3 "Thrust Per Motor").
//!
//! Thrust and shaft power follow the standard non-dimensional propeller
//! relations with rotation rate `n` in rev/s and diameter `D` in metres:
//!
//! ```text
//! T = Ct · ρ · n² · D⁴        P = Cp · ρ · n³ · D⁵
//! ```
//!
//! `Ct` grows with pitch (a coarser blade moves more air per revolution);
//! `Cp` follows from momentum theory through the figure of merit. A
//! propeller with a larger diameter and pitch produces more thrust per
//! revolution but demands more torque, which is why large frames pair low-
//! Kv motors with big props (paper Figure 9 discussion).

use crate::units::Grams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sea-level air density, kg/m³.
pub const AIR_DENSITY: f64 = 1.225;

/// Hover figure of merit for hobby-grade props (ideal = 1.0).
pub const FIGURE_OF_MERIT: f64 = 0.65;

/// A fixed-pitch propeller.
///
/// # Example
///
/// ```
/// use drone_components::propeller::Propeller;
/// let p = Propeller::new(10.0, 4.5); // the classic "1045" prop
/// let thrust = p.thrust_newtons(100.0); // at 6000 RPM
/// assert!(thrust > 4.0 && thrust < 9.0, "thrust {thrust}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Propeller {
    /// Diameter in inches (the unit props are sold in).
    pub diameter_in: f64,
    /// Pitch in inches (forward travel per revolution).
    pub pitch_in: f64,
    /// Weight of a single propeller.
    pub weight: Grams,
}

impl Propeller {
    /// Creates a propeller with a typical pitch-derived weight.
    ///
    /// # Panics
    ///
    /// Panics if diameter or pitch are not positive.
    pub fn new(diameter_in: f64, pitch_in: f64) -> Propeller {
        assert!(diameter_in > 0.0, "diameter must be positive");
        assert!(pitch_in > 0.0, "pitch must be positive");
        // Empirical weight scaling: ≈0.1 g per in², matching ~10 g for a
        // 10" prop and ~40 g for a 20" prop.
        let weight = Grams(0.1 * diameter_in * diameter_in);
        Propeller {
            diameter_in,
            pitch_in,
            weight,
        }
    }

    /// A conventional prop for the given diameter: pitch ≈ 0.45 × diameter
    /// (e.g. the ubiquitous 10×4.5).
    pub fn standard(diameter_in: f64) -> Propeller {
        Propeller::new(diameter_in, 0.45 * diameter_in)
    }

    /// Diameter in metres.
    pub fn diameter_m(&self) -> f64 {
        self.diameter_in * 0.0254
    }

    /// Disk area in m².
    pub fn disk_area(&self) -> f64 {
        let r = self.diameter_m() / 2.0;
        std::f64::consts::PI * r * r
    }

    /// Dimensionless thrust coefficient `Ct` (rev/s convention).
    pub fn thrust_coefficient(&self) -> f64 {
        0.09 + 0.04 * (self.pitch_in / self.diameter_in)
    }

    /// Dimensionless power coefficient `Cp` from momentum theory with the
    /// hover figure of merit: `Cp = Ct^1.5 / (√2 · FM)`.
    pub fn power_coefficient(&self) -> f64 {
        self.thrust_coefficient().powf(1.5) / (std::f64::consts::SQRT_2 * FIGURE_OF_MERIT)
    }

    /// Static thrust (N) at `rev_per_s` revolutions per second.
    pub fn thrust_newtons(&self, rev_per_s: f64) -> f64 {
        self.thrust_coefficient() * AIR_DENSITY * rev_per_s * rev_per_s * self.diameter_m().powi(4)
    }

    /// Shaft power (W) at `rev_per_s`.
    pub fn shaft_power_watts(&self, rev_per_s: f64) -> f64 {
        self.power_coefficient() * AIR_DENSITY * rev_per_s.powi(3) * self.diameter_m().powi(5)
    }

    /// Shaft torque (N·m) at `rev_per_s` (`Q = P / ω`).
    pub fn torque_nm(&self, rev_per_s: f64) -> f64 {
        if rev_per_s <= 0.0 {
            return 0.0;
        }
        self.shaft_power_watts(rev_per_s) / (2.0 * std::f64::consts::PI * rev_per_s)
    }

    /// Rotation rate (rev/s) needed for a given thrust (N).
    ///
    /// # Panics
    ///
    /// Panics if `thrust_n` is negative.
    pub fn rev_per_s_for_thrust(&self, thrust_n: f64) -> f64 {
        assert!(thrust_n >= 0.0, "thrust must be non-negative");
        (thrust_n / (self.thrust_coefficient() * AIR_DENSITY * self.diameter_m().powi(4))).sqrt()
    }
}

impl fmt::Display for Propeller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}x{:.1} prop ({})",
            self.diameter_in, self.pitch_in, self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrust_scales_quadratically_with_rpm() {
        let p = Propeller::standard(10.0);
        let t1 = p.thrust_newtons(50.0);
        let t2 = p.thrust_newtons(100.0);
        assert!((t2 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_cubically_with_rpm() {
        let p = Propeller::standard(10.0);
        let a = p.shaft_power_watts(50.0);
        let b = p.shaft_power_watts(100.0);
        assert!((b / a - 8.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_props_need_less_rpm_for_same_thrust() {
        let small = Propeller::standard(5.0);
        let big = Propeller::standard(10.0);
        let t = 5.0;
        assert!(big.rev_per_s_for_thrust(t) < small.rev_per_s_for_thrust(t));
    }

    #[test]
    fn bigger_props_are_more_efficient_at_same_thrust() {
        // Fundamental rotor physics: power for fixed thrust falls with
        // disk area (P ∝ T^1.5/√(2ρA)); drives the paper's motor-Kv trend.
        let small = Propeller::standard(5.0);
        let big = Propeller::standard(10.0);
        let t = 3.0;
        let p_small = small.shaft_power_watts(small.rev_per_s_for_thrust(t));
        let p_big = big.shaft_power_watts(big.rev_per_s_for_thrust(t));
        assert!(p_big < p_small);
    }

    #[test]
    fn rev_for_thrust_roundtrip() {
        let p = Propeller::standard(8.0);
        let n = p.rev_per_s_for_thrust(4.2);
        assert!((p.thrust_newtons(n) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn classic_1045_hover_numbers_are_realistic() {
        // An MT2213-class motor with a 1045 prop hovers a 1.2 kg quad at
        // ≈3 N/motor; the shaft power should be tens of watts.
        let p = Propeller::new(10.0, 4.5);
        let n = p.rev_per_s_for_thrust(2.94);
        let rpm = n * 60.0;
        assert!((3000.0..8000.0).contains(&rpm), "rpm {rpm}");
        let watts = p.shaft_power_watts(n);
        assert!((10.0..40.0).contains(&watts), "power {watts}");
    }

    #[test]
    fn torque_consistent_with_power() {
        let p = Propeller::standard(10.0);
        let n = 80.0;
        let q = p.torque_nm(n);
        assert!((q * 2.0 * std::f64::consts::PI * n - p.shaft_power_watts(n)).abs() < 1e-9);
        assert_eq!(p.torque_nm(0.0), 0.0);
    }

    #[test]
    fn coefficients_in_literature_range() {
        for d in [2.0, 5.0, 10.0, 20.0] {
            let p = Propeller::standard(d);
            assert!((0.08..0.15).contains(&p.thrust_coefficient()));
            assert!((0.02..0.07).contains(&p.power_coefficient()));
        }
    }

    #[test]
    #[should_panic(expected = "diameter must be positive")]
    fn invalid_diameter_panics() {
        let _ = Propeller::new(0.0, 4.0);
    }
}
