//! Brushless DC motor model (paper §2.1.1, §2.3, Figure 9).
//!
//! Drones use BLDC motors exclusively: high rotation speed, precise
//! feedback, battery-friendly. The `Kv` rating (RPM per volt, no load)
//! determines the speed/torque tradeoff: for a fixed voltage, a lower `Kv`
//! motor produces more torque and turns larger propellers, but needs more
//! poles and a larger diameter and is therefore heavier (5 g/motor in
//! 100 mm drones up to ~100 g/motor in 1000 mm drones).

use crate::propeller::Propeller;
use crate::units::{Amps, Grams, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of the no-load RPM a loaded propeller-driving motor sustains
/// at full throttle (accounting for back-EMF sag under load).
pub const LOADED_RPM_FRACTION: f64 = 0.75;

/// Electrical-to-mechanical efficiency of a hobby BLDC motor near its
/// design point.
pub const MOTOR_EFFICIENCY: f64 = 0.80;

/// A BLDC motor.
///
/// # Example
///
/// ```
/// use drone_components::{Motor, Propeller};
/// use drone_components::units::Volts;
/// // Size a motor to lift 6 N with a 10" prop on 3S.
/// let prop = Propeller::standard(10.0);
/// let motor = Motor::size_for(&prop, Volts(11.1), 6.0);
/// // The classic 935 Kv class used on 450 mm frames.
/// assert!((600.0..1500.0).contains(&motor.kv_rpm_per_volt), "Kv {}", motor.kv_rpm_per_volt);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Motor {
    /// Velocity constant: no-load RPM per volt.
    pub kv_rpm_per_volt: f64,
    /// Motor weight.
    pub weight: Grams,
    /// Maximum continuous current the windings tolerate.
    pub max_current: Amps,
}

/// A steady-state operating point of a motor+propeller pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Rotation rate, rev/s.
    pub rev_per_s: f64,
    /// Thrust produced, N.
    pub thrust_newtons: f64,
    /// Mechanical shaft power.
    pub shaft_power: Watts,
    /// Electrical input power (shaft power / motor efficiency).
    pub electrical_power: Watts,
    /// Current drawn from the supply.
    pub current: Amps,
}

impl Motor {
    /// Creates a motor from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not positive.
    pub fn new(kv_rpm_per_volt: f64, weight: Grams, max_current: Amps) -> Motor {
        assert!(kv_rpm_per_volt > 0.0, "Kv must be positive");
        assert!(weight.0 > 0.0, "weight must be positive");
        assert!(max_current.0 > 0.0, "max current must be positive");
        Motor {
            kv_rpm_per_volt,
            weight,
            max_current,
        }
    }

    /// Sizes the minimal motor able to produce `max_thrust_n` newtons with
    /// `prop` at full throttle on a `voltage` supply.
    ///
    /// This is the paper's Figure 9 methodology: fix the propeller by the
    /// wheelbase, fix the voltage by the battery cells, then derive the
    /// Kv rating, weight and maximum current draw the thrust target
    /// demands.
    ///
    /// # Panics
    ///
    /// Panics if `max_thrust_n` or `voltage` are not positive.
    pub fn size_for(prop: &Propeller, voltage: Volts, max_thrust_n: f64) -> Motor {
        assert!(max_thrust_n > 0.0, "thrust must be positive");
        assert!(voltage.0 > 0.0, "voltage must be positive");
        let n_max = prop.rev_per_s_for_thrust(max_thrust_n);
        let rpm_max = n_max * 60.0;
        let kv = rpm_max / (LOADED_RPM_FRACTION * voltage.0);
        // Peak torque sizes the magnetics and therefore the weight; the
        // exponent is calibrated so 100 mm-class motors land near 5 g and
        // 800 mm-class motors near 100 g (paper §3.1).
        let torque = prop.torque_nm(n_max);
        let weight = Grams((141.0 * torque.powf(0.407)).max(1.5));
        let electrical = prop.shaft_power_watts(n_max) / MOTOR_EFFICIENCY;
        // Manufacturers rate max current ~15 % above the design point.
        let max_current = Amps(electrical / voltage.0 * 1.15);
        Motor::new(kv, weight, max_current)
    }

    /// No-load rotation rate at full throttle, rev/s.
    pub fn no_load_rev_per_s(&self, voltage: Volts) -> f64 {
        self.kv_rpm_per_volt * voltage.0 / 60.0
    }

    /// Maximum sustained rotation rate under propeller load, rev/s.
    pub fn max_loaded_rev_per_s(&self, voltage: Volts) -> f64 {
        self.no_load_rev_per_s(voltage) * LOADED_RPM_FRACTION
    }

    /// Maximum thrust this motor can pull from `prop` at `voltage`.
    pub fn max_thrust_newtons(&self, prop: &Propeller, voltage: Volts) -> f64 {
        prop.thrust_newtons(self.max_loaded_rev_per_s(voltage))
    }

    /// Steady-state operating point producing `thrust_n` newtons.
    ///
    /// Returns `None` when the thrust demands a rotation rate beyond the
    /// motor's loaded maximum or a current beyond its rating.
    pub fn operating_point(
        &self,
        prop: &Propeller,
        voltage: Volts,
        thrust_n: f64,
    ) -> Option<OperatingPoint> {
        if thrust_n < 0.0 {
            return None;
        }
        let n = prop.rev_per_s_for_thrust(thrust_n);
        if n > self.max_loaded_rev_per_s(voltage) * (1.0 + 1e-9) {
            return None;
        }
        let shaft = prop.shaft_power_watts(n);
        let electrical = shaft / MOTOR_EFFICIENCY;
        let current = Amps(electrical / voltage.0);
        if current.0 > self.max_current.0 * (1.0 + 1e-9) {
            return None;
        }
        Some(OperatingPoint {
            rev_per_s: n,
            thrust_newtons: thrust_n,
            shaft_power: Watts(shaft),
            electrical_power: Watts(electrical),
            current,
        })
    }
}

impl fmt::Display for Motor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} Kv motor ({}, {:.1} A max)",
            self.kv_rpm_per_volt, self.weight, self.max_current.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop_for(wheelbase_mm: f64) -> Propeller {
        let inches = crate::frame::Frame::from_model(crate::units::Millimeters(wheelbase_mm))
            .max_propeller_inches();
        Propeller::standard(inches)
    }

    #[test]
    fn sized_motor_delivers_target_thrust() {
        let prop = Propeller::standard(10.0);
        let motor = Motor::size_for(&prop, Volts(11.1), 6.0);
        let max = motor.max_thrust_newtons(&prop, Volts(11.1));
        assert!((max - 6.0).abs() / 6.0 < 1e-6, "max thrust {max}");
        // The design point itself must be feasible.
        assert!(motor.operating_point(&prop, Volts(11.1), 6.0).is_some());
        // 10 % beyond it must not be.
        assert!(motor.operating_point(&prop, Volts(11.1), 6.6).is_none());
    }

    #[test]
    fn higher_voltage_means_lower_kv() {
        // Paper Figure 9: a 6S supply needs far lower Kv motors than 1S.
        let prop = Propeller::standard(10.0);
        let m1 = Motor::size_for(&prop, Volts(3.7), 6.0);
        let m6 = Motor::size_for(&prop, Volts(22.2), 6.0);
        assert!((m1.kv_rpm_per_volt / m6.kv_rpm_per_volt - 6.0).abs() < 1e-6);
    }

    #[test]
    fn small_frame_motors_have_extreme_kv() {
        // Paper Figure 9a annotates 100 mm 1S designs at tens of
        // thousands of Kv.
        let prop = prop_for(100.0);
        let m = Motor::size_for(&prop, Volts(3.7), 0.75);
        assert!(m.kv_rpm_per_volt > 8_000.0, "Kv {}", m.kv_rpm_per_volt);
    }

    #[test]
    fn large_frame_motors_have_low_kv_and_high_weight() {
        // 800 mm, 6S, 3 kg drone at TWR 2 → 14.7 N/motor.
        let prop = prop_for(800.0);
        let m = Motor::size_for(&prop, Volts(22.2), 14.7);
        assert!(m.kv_rpm_per_volt < 600.0, "Kv {}", m.kv_rpm_per_volt);
        assert!((40.0..250.0).contains(&m.weight.0), "weight {}", m.weight);
    }

    #[test]
    fn micro_motors_are_grams() {
        // 100 mm-class motors weigh single-digit grams (paper §3.1).
        let prop = prop_for(100.0);
        let m = Motor::size_for(&prop, Volts(7.4), 0.75);
        assert!(m.weight.0 < 15.0, "weight {}", m.weight);
    }

    #[test]
    fn current_draw_realistic_for_450mm_class() {
        // MT2213-935Kv with 1045 prop: ~10 A max is typical.
        let prop = Propeller::new(10.0, 4.5);
        let m = Motor::size_for(&prop, Volts(11.1), 8.0);
        assert!(
            (4.0..20.0).contains(&m.max_current.0),
            "max current {}",
            m.max_current
        );
    }

    #[test]
    fn operating_point_power_balances() {
        let prop = Propeller::standard(10.0);
        let m = Motor::size_for(&prop, Volts(11.1), 8.0);
        let op = m.operating_point(&prop, Volts(11.1), 4.0).unwrap();
        assert!((op.electrical_power.0 * MOTOR_EFFICIENCY - op.shaft_power.0).abs() < 1e-9);
        assert!((op.current.0 * 11.1 - op.electrical_power.0).abs() < 1e-9);
        assert!(op.thrust_newtons == 4.0);
    }

    #[test]
    fn hover_draw_fraction_of_max() {
        // At TWR 2, hover thrust is half of max; since P ∝ T^1.5 the hover
        // current lands near 35 % of the max draw — matching the paper's
        // 20–30 % "FlyingLoad" once mixed with efficiency margins.
        let prop = Propeller::standard(10.0);
        let m = Motor::size_for(&prop, Volts(11.1), 6.0);
        let hover = m.operating_point(&prop, Volts(11.1), 3.0).unwrap();
        let frac = hover.current.0 / m.max_current.0;
        assert!((0.25..0.40).contains(&frac), "hover fraction {frac}");
    }

    #[test]
    fn negative_thrust_op_is_none() {
        let prop = Propeller::standard(10.0);
        let m = Motor::size_for(&prop, Volts(11.1), 6.0);
        assert!(m.operating_point(&prop, Volts(11.1), -1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "Kv must be positive")]
    fn invalid_kv_panics() {
        let _ = Motor::new(0.0, Grams(50.0), Amps(10.0));
    }
}
