//! Property-based tests on the component models' physical invariants.

use drone_components::battery::{Battery, CellCount};
use drone_components::esc::{Esc, EscClass};
use drone_components::frame::Frame;
use drone_components::motor::Motor;
use drone_components::propeller::Propeller;
use drone_components::units::{MilliampHours, Millimeters, Volts};
use proptest::prelude::*;

fn cells() -> impl Strategy<Value = CellCount> {
    prop::sample::select(CellCount::ALL.to_vec())
}

proptest! {
    #[test]
    fn battery_weight_monotonic_in_capacity(c in cells(), a in 300.0f64..9000.0, delta in 10.0f64..1000.0) {
        let small = Battery::from_model(c, MilliampHours(a), 30.0);
        let large = Battery::from_model(c, MilliampHours(a + delta), 30.0);
        prop_assert!(large.weight.0 > small.weight.0);
        prop_assert!(large.stored_energy().0 > small.stored_energy().0);
    }

    #[test]
    fn battery_energy_density_bounded(c in cells(), a in 300.0f64..9000.0) {
        let b = Battery::from_model(c, MilliampHours(a), 30.0);
        let d = b.energy_density_wh_per_kg();
        prop_assert!((20.0..450.0).contains(&d), "density {d}");
    }

    #[test]
    fn esc_weight_monotonic_in_current(amps in 5.0f64..85.0, delta in 1.0f64..20.0) {
        for class in [EscClass::LongFlight, EscClass::ShortFlight] {
            let small = Esc::from_model(class, drone_components::units::Amps(amps));
            let large = Esc::from_model(class, drone_components::units::Amps(amps + delta));
            prop_assert!(large.weight.0 >= small.weight.0);
        }
    }

    #[test]
    fn frame_weight_positive_and_monotonic(wb in 40.0f64..1000.0, delta in 1.0f64..200.0) {
        let a = Frame::from_model(Millimeters(wb));
        let b = Frame::from_model(Millimeters(wb + delta));
        prop_assert!(a.weight.0 > 0.0);
        prop_assert!(b.weight.0 >= a.weight.0);
        prop_assert!(b.max_propeller_inches() > a.max_propeller_inches());
    }

    #[test]
    fn motor_sizing_monotonic_in_thrust(thrust in 0.5f64..40.0, delta in 0.1f64..10.0, volts in 3.7f64..22.2) {
        let prop10 = Propeller::standard(10.0);
        let small = Motor::size_for(&prop10, Volts(volts), thrust);
        let large = Motor::size_for(&prop10, Volts(volts), thrust + delta);
        prop_assert!(large.max_current.0 > small.max_current.0);
        prop_assert!(large.weight.0 >= small.weight.0);
        prop_assert!(large.kv_rpm_per_volt > small.kv_rpm_per_volt);
    }

    #[test]
    fn operating_point_never_exceeds_rating(thrust in 1.0f64..20.0, frac in 0.05f64..1.0) {
        let prop10 = Propeller::standard(10.0);
        let motor = Motor::size_for(&prop10, Volts(11.1), thrust);
        if let Some(op) = motor.operating_point(&prop10, Volts(11.1), thrust * frac) {
            prop_assert!(op.current.0 <= motor.max_current.0 * (1.0 + 1e-9));
            prop_assert!(op.electrical_power.0 >= op.shaft_power.0);
        }
    }

    #[test]
    fn propeller_power_thrust_consistency(d in 2.0f64..20.0, n in 10.0f64..400.0) {
        let p = Propeller::standard(d);
        // Both monotonic in n, and torque × ω == shaft power.
        prop_assert!(p.thrust_newtons(n) > 0.0);
        let q = p.torque_nm(n);
        let w = 2.0 * std::f64::consts::PI * n;
        prop_assert!((q * w - p.shaft_power_watts(n)).abs() < 1e-9 * (1.0 + p.shaft_power_watts(n)));
    }
}
