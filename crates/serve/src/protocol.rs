//! The wire vocabulary: newline-delimited JSON requests and replies.
//!
//! One request per line, one reply line per request, always in request
//! order. The parser is **strict** — unknown keys, wrong types, missing
//! required fields and out-of-budget grids all produce a typed
//! [`RequestError`] that renders as a structured error reply; no input,
//! however malformed, may panic the server (`tests/properties.rs` feeds
//! arbitrary bytes through [`handle_batch`] to pin exactly that).
//!
//! ```text
//! -> {"id":1,"query":{"ranges":{"wheelbase_mm":{"min":250,"max":450,"steps":3},
//!      "cells":["3S"],"capacity_mah":{"min":2000,"max":6000,"steps":5}},
//!      "objective":"max_flight_time"}}
//! <- {"id":1,"ok":true,"answer":{"name":"query","evaluated":15,...}}
//! -> not json
//! <- {"id":null,"ok":false,"error":{"kind":"parse","message":"..."}}
//! ```

use drone_components::battery::CellCount;
use drone_dse::eval::DesignEval;
use drone_explorer::{
    Constraints, Explorer, GridRange, Objective, OptimizeAnswer, OptimizeRequest, Query,
    QueryAnswer, QueryLimits, QueryRanges, ShardSpec, Strategy,
};
use drone_telemetry::trace::{
    derive_trace_id_bytes, id_hex, parse_id_hex, TraceBuilder, TraceRing,
};
use drone_telemetry::{Clock, Json};
use std::fmt;

/// Most completed span trees one `trace` request may fetch.
pub const MAX_TRACE_FETCH: usize = 16;

/// What went wrong with a request, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not a JSON document.
    Parse,
    /// The document does not have the request shape.
    BadRequest,
    /// The query failed [`Query::validate`] against the service limits.
    InvalidQuery,
    /// The request line exceeded the size cap before a newline arrived.
    TooLarge,
    /// The server shed the connection under load.
    Overloaded,
    /// The query's worst-case cost exceeds the per-request deadline;
    /// the server shed it before evaluation started.
    DeadlineExceeded,
    /// The evaluation panicked; the fault was isolated to this request.
    Internal,
}

impl ErrorKind {
    /// The wire spelling (`error.kind`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::InvalidQuery => "invalid_query",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal_error",
        }
    }

    /// The inverse of [`ErrorKind::as_str`], for clients classifying
    /// replies off the wire.
    pub fn from_wire(kind: &str) -> Option<ErrorKind> {
        match kind {
            "parse" => Some(ErrorKind::Parse),
            "bad_request" => Some(ErrorKind::BadRequest),
            "invalid_query" => Some(ErrorKind::InvalidQuery),
            "too_large" => Some(ErrorKind::TooLarge),
            "overloaded" => Some(ErrorKind::Overloaded),
            "deadline_exceeded" => Some(ErrorKind::DeadlineExceeded),
            "internal_error" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// A typed request failure: the reply's `error` object.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for RequestError {}

/// A `trace` introspection request: fetch completed span trees from
/// the server's bounded ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceQuery {
    /// How many of the newest traces to return (capped at
    /// [`MAX_TRACE_FETCH`]). Ignored when `trace_id` is set.
    pub last: usize,
    /// Fetch one specific trace by its hex id instead.
    pub trace_id: Option<u64>,
}

impl Default for TraceQuery {
    fn default() -> TraceQuery {
        TraceQuery {
            last: 1,
            trace_id: None,
        }
    }
}

/// What a request asks for: a query evaluation, or one of the live
/// introspection kinds.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // one short-lived value per request; boxing buys nothing
pub enum RequestBody {
    /// Evaluate a validated exploration query.
    Query(Query),
    /// Run a validated optimize request (seeded sampling /
    /// multi-fidelity search instead of an exhaustive sweep).
    Optimize(OptimizeRequest),
    /// Return the server's registry snapshot, queue depth and trace
    /// ring bookkeeping.
    Stats,
    /// Return completed span trees from the server's trace ring.
    Trace(TraceQuery),
}

/// A parsed request: the echoed `id`, the optional client-stamped
/// trace id, and the request body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed verbatim in the reply (`null` when
    /// absent).
    pub id: Json,
    /// Client-stamped causal trace id (16 hex chars on the wire).
    /// Absent requests get a deterministic server-derived id.
    pub trace_id: Option<u64>,
    /// What the request asks for.
    pub body: RequestBody,
}

impl Request {
    /// The exploration query, when this is a query request.
    pub fn query(&self) -> Option<&Query> {
        match &self.body {
            RequestBody::Query(query) => Some(query),
            _ => None,
        }
    }

    /// The optimize request, when this is one.
    pub fn optimize(&self) -> Option<&OptimizeRequest> {
        match &self.body {
            RequestBody::Optimize(req) => Some(req),
            _ => None,
        }
    }
}

fn expect_keys(obj: &Json, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    let pairs = obj
        .as_obj()
        .ok_or_else(|| RequestError::bad(format!("{what} must be an object")))?;
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(RequestError::bad(format!("{what}: unknown key '{key}'")));
        }
    }
    Ok(())
}

fn number(doc: &Json, what: &str) -> Result<f64, RequestError> {
    doc.as_f64()
        .ok_or_else(|| RequestError::bad(format!("{what} must be a number")))
}

fn steps(doc: &Json, what: &str) -> Result<usize, RequestError> {
    let n = number(doc, what)?;
    if n.fract() != 0.0 || !(0.0..=1e9).contains(&n) {
        return Err(RequestError::bad(format!(
            "{what} must be a small non-negative integer"
        )));
    }
    Ok(n as usize)
}

/// A range is either `{"min":..,"max":..,"steps":..}` or a bare number
/// (a pinned coordinate).
fn grid_range(doc: &Json, what: &str) -> Result<GridRange, RequestError> {
    if let Some(v) = doc.as_f64() {
        return Ok(GridRange {
            min: v,
            max: v,
            steps: 1,
        });
    }
    expect_keys(doc, &["min", "max", "steps"], what)?;
    let field = |key: &str| {
        doc.get(key)
            .ok_or_else(|| RequestError::bad(format!("{what}: missing '{key}'")))
    };
    Ok(GridRange {
        min: number(field("min")?, &format!("{what}.min"))?,
        max: number(field("max")?, &format!("{what}.max"))?,
        steps: steps(field("steps")?, &format!("{what}.steps"))?,
    })
}

/// Cells parse from `"3S"` strings or bare cell counts (`3`).
pub(crate) fn cell(doc: &Json) -> Result<CellCount, RequestError> {
    let count = match doc {
        Json::Num(n) if n.fract() == 0.0 && (0.0..=255.0).contains(n) => *n as u8,
        Json::Str(s) => {
            let trimmed = s.strip_suffix('S').or_else(|| s.strip_suffix('s'));
            trimmed
                .and_then(|t| t.parse::<u8>().ok())
                .ok_or_else(|| RequestError::bad(format!("cells: unknown config '{s}'")))?
        }
        _ => {
            return Err(RequestError::bad(
                "cells entries must be \"<n>S\" or a count",
            ))
        }
    };
    CellCount::from_cells(count)
        .ok_or_else(|| RequestError::bad(format!("cells: no {count}-cell configuration")))
}

fn ranges_from_json(doc: &Json) -> Result<QueryRanges, RequestError> {
    expect_keys(
        doc,
        &[
            "wheelbase_mm",
            "cells",
            "capacity_mah",
            "compute_power_w",
            "twr",
            "payload_g",
        ],
        "ranges",
    )?;
    let required = |key: &'static str| {
        doc.get(key)
            .ok_or_else(|| RequestError::bad(format!("ranges: missing '{key}'")))
    };
    let optional = |key: &'static str, default: f64| -> Result<GridRange, RequestError> {
        match doc.get(key) {
            Some(r) => grid_range(r, key),
            None => Ok(GridRange {
                min: default,
                max: default,
                steps: 1,
            }),
        }
    };
    let cells_doc = required("cells")?;
    let cells = cells_doc
        .as_arr()
        .ok_or_else(|| RequestError::bad("cells must be an array"))?
        .iter()
        .map(cell)
        .collect::<Result<Vec<CellCount>, RequestError>>()?;
    Ok(QueryRanges {
        wheelbase_mm: grid_range(required("wheelbase_mm")?, "wheelbase_mm")?,
        cells,
        capacity_mah: grid_range(required("capacity_mah")?, "capacity_mah")?,
        compute_power_w: optional("compute_power_w", 3.0)?,
        twr: optional("twr", drone_components::paper::PAPER_TWR)?,
        payload_g: optional("payload_g", 0.0)?,
    })
}

fn constraints_from_json(doc: &Json) -> Result<Constraints, RequestError> {
    expect_keys(
        doc,
        &[
            "max_weight_g",
            "min_flight_time_min",
            "max_compute_share_hover",
            "max_hover_power_w",
        ],
        "constraints",
    )?;
    let bound = |key: &str| -> Result<Option<f64>, RequestError> {
        doc.get(key).map(|v| number(v, key)).transpose()
    };
    Ok(Constraints {
        max_weight_g: bound("max_weight_g")?,
        min_flight_time_min: bound("min_flight_time_min")?,
        max_compute_share_hover: bound("max_compute_share_hover")?,
        max_hover_power_w: bound("max_hover_power_w")?,
    })
}

fn objective_from_json(doc: &Json) -> Result<Objective, RequestError> {
    match doc.as_str() {
        Some("max_flight_time") => Ok(Objective::MaxFlightTime),
        Some("min_weight") => Ok(Objective::MinWeight),
        Some("min_compute_share") => Ok(Objective::MinComputeShare),
        Some(other) => Err(RequestError::bad(format!("unknown objective '{other}'"))),
        None => Err(RequestError::bad("objective must be a string")),
    }
}

fn objective_to_str(objective: Objective) -> &'static str {
    match objective {
        Objective::MaxFlightTime => "max_flight_time",
        Objective::MinWeight => "min_weight",
        Objective::MinComputeShare => "min_compute_share",
    }
}

/// Parses one request line, validating the query against `limits`.
///
/// # Errors
///
/// Every failure mode is a [`RequestError`]; this function never
/// panics, whatever the bytes.
pub fn parse_request(line: &str, limits: &QueryLimits) -> Result<Request, RequestError> {
    parse_request_with_id(line, limits).map_err(|(_, error)| error)
}

/// [`parse_request`], but failures carry the client's `id` whenever
/// the line parsed far enough to have one — so error replies can echo
/// it and a correlating client can attribute the rejection.
pub(crate) fn parse_request_with_id(
    line: &str,
    limits: &QueryLimits,
) -> Result<Request, (Json, RequestError)> {
    let doc = Json::parse(line).map_err(|e| {
        (
            Json::Null,
            RequestError {
                kind: ErrorKind::Parse,
                message: e.to_string(),
            },
        )
    })?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    request_from_doc(&doc, limits).map_err(|error| (id, error))
}

fn trace_query_from_json(doc: &Json) -> Result<TraceQuery, RequestError> {
    expect_keys(doc, &["last", "trace_id"], "trace")?;
    let last = match doc.get("last") {
        Some(v) => {
            let n = steps(v, "trace.last")?;
            if !(1..=MAX_TRACE_FETCH).contains(&n) {
                return Err(RequestError::bad(format!(
                    "trace.last must be between 1 and {MAX_TRACE_FETCH}"
                )));
            }
            n
        }
        None => 1,
    };
    let trace_id = doc
        .get("trace_id")
        .map(|v| trace_id_from_json(v, "trace.trace_id"))
        .transpose()?;
    Ok(TraceQuery { last, trace_id })
}

fn trace_id_from_json(doc: &Json, what: &str) -> Result<u64, RequestError> {
    let text = doc
        .as_str()
        .ok_or_else(|| RequestError::bad(format!("{what} must be a hex string")))?;
    parse_id_hex(text)
        .ok_or_else(|| RequestError::bad(format!("{what} must be 16 lower-case hex characters")))
}

/// Parses the body of an `optimize` request and validates it against
/// the service limits.
fn optimize_from_json(doc: &Json, limits: &QueryLimits) -> Result<OptimizeRequest, RequestError> {
    expect_keys(
        doc,
        &[
            "name",
            "ranges",
            "constraints",
            "objective",
            "strategy",
            "budget",
            "seed",
        ],
        "optimize",
    )?;
    let name = match doc.get("name") {
        Some(n) => n
            .as_str()
            .ok_or_else(|| RequestError::bad("name must be a string"))?
            .to_owned(),
        None => "optimize".to_owned(),
    };
    let ranges_doc = doc
        .get("ranges")
        .ok_or_else(|| RequestError::bad("optimize: missing 'ranges'"))?;
    let constraints = match doc.get("constraints") {
        Some(c) => constraints_from_json(c)?,
        None => Constraints::default(),
    };
    let objective = objective_from_json(
        doc.get("objective")
            .ok_or_else(|| RequestError::bad("optimize: missing 'objective'"))?,
    )?;
    let strategy_doc = doc
        .get("strategy")
        .ok_or_else(|| RequestError::bad("optimize: missing 'strategy'"))?;
    let strategy = strategy_doc
        .as_str()
        .and_then(Strategy::from_name)
        .ok_or_else(|| {
            RequestError::bad("strategy must be one of 'monte_carlo', 'lhs', 'sobol' or 'halving'")
        })?;
    let budget = steps(
        doc.get("budget")
            .ok_or_else(|| RequestError::bad("optimize: missing 'budget'"))?,
        "optimize.budget",
    )?;
    let seed = match doc.get("seed") {
        Some(v) => steps(v, "optimize.seed")? as u64,
        None => 0,
    };
    let req = OptimizeRequest {
        name,
        ranges: ranges_from_json(ranges_doc)?,
        constraints,
        objective,
        strategy,
        budget,
        seed,
    };
    req.validate(limits).map_err(|e| RequestError {
        kind: ErrorKind::InvalidQuery,
        message: e.to_string(),
    })?;
    Ok(req)
}

fn shard_from_json(doc: &Json) -> Result<ShardSpec, RequestError> {
    expect_keys(doc, &["index", "count"], "shard")?;
    let field = |key: &str| -> Result<u32, RequestError> {
        let value = doc
            .get(key)
            .ok_or_else(|| RequestError::bad("shard: missing 'index' or 'count'"))?;
        // `steps` caps at 1e9, well inside u32.
        Ok(steps(value, "shard")? as u32)
    };
    // Range sanity (count >= 1, index < count) runs in Query::validate.
    Ok(ShardSpec {
        index: field("index")?,
        count: field("count")?,
    })
}

fn request_from_doc(doc: &Json, limits: &QueryLimits) -> Result<Request, RequestError> {
    expect_keys(
        doc,
        &["id", "trace_id", "query", "optimize", "stats", "trace"],
        "request",
    )?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let trace_id = doc
        .get("trace_id")
        .map(|v| trace_id_from_json(v, "trace_id"))
        .transpose()?;
    let kinds = [
        doc.get("query"),
        doc.get("optimize"),
        doc.get("stats"),
        doc.get("trace"),
    ];
    if kinds.iter().filter(|k| k.is_some()).count() != 1 {
        return Err(RequestError::bad(
            "request: needs exactly one of 'query', 'optimize', 'stats' or 'trace'",
        ));
    }
    if let Some(optimize_doc) = doc.get("optimize") {
        return Ok(Request {
            id,
            trace_id,
            body: RequestBody::Optimize(optimize_from_json(optimize_doc, limits)?),
        });
    }
    if let Some(stats_doc) = doc.get("stats") {
        // Strict like everything else: `stats` takes no parameters.
        expect_keys(stats_doc, &[], "stats")?;
        return Ok(Request {
            id,
            trace_id,
            body: RequestBody::Stats,
        });
    }
    if let Some(trace_doc) = doc.get("trace") {
        return Ok(Request {
            id,
            trace_id,
            body: RequestBody::Trace(trace_query_from_json(trace_doc)?),
        });
    }
    let query_doc = doc
        .get("query")
        .ok_or_else(|| RequestError::bad("request: missing 'query'"))?;
    expect_keys(
        query_doc,
        &[
            "name",
            "ranges",
            "constraints",
            "objective",
            "refine_rounds",
            "refine_steps",
            "shard",
        ],
        "query",
    )?;
    let name = match query_doc.get("name") {
        Some(n) => n
            .as_str()
            .ok_or_else(|| RequestError::bad("name must be a string"))?
            .to_owned(),
        None => "query".to_owned(),
    };
    let ranges_doc = query_doc
        .get("ranges")
        .ok_or_else(|| RequestError::bad("query: missing 'ranges'"))?;
    let constraints = match query_doc.get("constraints") {
        Some(c) => constraints_from_json(c)?,
        None => Constraints::default(),
    };
    let objective = objective_from_json(
        query_doc
            .get("objective")
            .ok_or_else(|| RequestError::bad("query: missing 'objective'"))?,
    )?;
    let fetch_steps = |key: &str| -> Result<usize, RequestError> {
        query_doc.get(key).map_or(Ok(0), |v| steps(v, key))
    };
    let query = Query {
        name,
        ranges: ranges_from_json(ranges_doc)?,
        constraints,
        objective,
        refine_rounds: fetch_steps("refine_rounds")?,
        refine_steps: fetch_steps("refine_steps")?,
        shard: query_doc.get("shard").map(shard_from_json).transpose()?,
    };
    query.validate(limits).map_err(|e| RequestError {
        kind: ErrorKind::InvalidQuery,
        message: e.to_string(),
    })?;
    Ok(Request {
        id,
        trace_id,
        body: RequestBody::Query(query),
    })
}

fn ranges_to_json(ranges: &QueryRanges) -> Json {
    let range = |r: &GridRange| {
        Json::obj()
            .with("min", r.min)
            .with("max", r.max)
            .with("steps", r.steps)
    };
    let mut cells = Json::arr();
    for c in &ranges.cells {
        cells.push(c.to_string());
    }
    Json::obj()
        .with("wheelbase_mm", range(&ranges.wheelbase_mm))
        .with("cells", cells)
        .with("capacity_mah", range(&ranges.capacity_mah))
        .with("compute_power_w", range(&ranges.compute_power_w))
        .with("twr", range(&ranges.twr))
        .with("payload_g", range(&ranges.payload_g))
}

fn constraints_to_json(bounds: &Constraints) -> Json {
    let mut constraints = Json::obj();
    for (key, bound) in [
        ("max_weight_g", bounds.max_weight_g),
        ("min_flight_time_min", bounds.min_flight_time_min),
        ("max_compute_share_hover", bounds.max_compute_share_hover),
        ("max_hover_power_w", bounds.max_hover_power_w),
    ] {
        if let Some(b) = bound {
            constraints.insert(key, b);
        }
    }
    constraints
}

/// Renders a query as a request line body (the client-side inverse of
/// [`parse_request`]).
pub fn request_to_json(id: u64, query: &Query) -> Json {
    let mut query_json = Json::obj()
        .with("name", query.name.as_str())
        .with("ranges", ranges_to_json(&query.ranges))
        .with("constraints", constraints_to_json(&query.constraints))
        .with("objective", objective_to_str(query.objective))
        .with("refine_rounds", query.refine_rounds)
        .with("refine_steps", query.refine_steps);
    if let Some(shard) = query.shard {
        // Opt-in: an unsharded query renders exactly as before.
        query_json.insert(
            "shard",
            Json::obj()
                .with("index", shard.index as usize)
                .with("count", shard.count as usize),
        );
    }
    Json::obj().with("id", id).with("query", query_json)
}

/// Renders an optimize request line body (the client-side inverse of
/// the `optimize` branch of [`parse_request`]).
pub fn optimize_request_to_json(id: u64, req: &OptimizeRequest) -> Json {
    let body = Json::obj()
        .with("name", req.name.as_str())
        .with("ranges", ranges_to_json(&req.ranges))
        .with("constraints", constraints_to_json(&req.constraints))
        .with("objective", objective_to_str(req.objective))
        .with("strategy", req.strategy.as_str())
        .with("budget", req.budget)
        .with("seed", req.seed as f64);
    Json::obj().with("id", id).with("optimize", body)
}

/// [`optimize_request_to_json`] with a client-stamped causal trace id.
pub fn optimize_request_to_json_traced(id: u64, trace_id: u64, req: &OptimizeRequest) -> Json {
    let mut doc = optimize_request_to_json(id, req);
    doc.insert("trace_id", id_hex(trace_id));
    doc
}

/// [`request_to_json`] with a client-stamped causal trace id — what a
/// tracing [`crate::Client`] sends.
pub fn request_to_json_traced(id: u64, trace_id: u64, query: &Query) -> Json {
    let mut doc = request_to_json(id, query);
    doc.insert("trace_id", id_hex(trace_id));
    doc
}

/// Renders a `stats` introspection request line body.
pub fn stats_request_json(id: u64) -> Json {
    Json::obj().with("id", id).with("stats", Json::obj())
}

/// Renders a `trace` introspection request line body.
pub fn trace_request_json(id: u64, trace: &TraceQuery) -> Json {
    let mut body = Json::obj().with("last", trace.last);
    if let Some(trace_id) = trace.trace_id {
        body.insert("trace_id", id_hex(trace_id));
    }
    Json::obj().with("id", id).with("trace", body)
}

fn eval_to_json(eval: &DesignEval) -> Json {
    Json::obj()
        .with("wheelbase_mm", eval.query.wheelbase_mm)
        .with("cells", eval.query.cells.to_string())
        .with("capacity_mah", eval.query.capacity_mah)
        .with("compute_w", eval.query.compute_power_w)
        .with("twr", eval.query.twr)
        .with("payload_g", eval.query.payload_g)
        .with("weight_g", eval.weight_g)
        .with("flight_min", eval.flight_time_min)
        .with("hover_w", eval.hover_power_w)
        .with("compute_share_hover", eval.compute_share_hover)
}

/// Deterministic per-request work units: points dispatched to the
/// engine (cache hits included). This is the "latency" the byte-stable
/// benchmark artifact reports — sim-deterministic, unlike wall time.
pub fn cost_units(answer: &QueryAnswer) -> u64 {
    answer.evaluated as u64
}

/// Renders an answer. Frontier members sort by (flight time desc,
/// weight asc) so the reply bytes are stable however the feasible set
/// was admitted.
pub fn answer_to_json(answer: &QueryAnswer) -> Json {
    let mut members: Vec<&DesignEval> = answer.frontier.iter().collect();
    members.sort_by(|a, b| {
        b.flight_time_min
            .total_cmp(&a.flight_time_min)
            .then(a.weight_g.total_cmp(&b.weight_g))
    });
    let mut frontier = Json::arr();
    for m in members {
        frontier.push(eval_to_json(m));
    }
    Json::obj()
        .with("name", answer.name.as_str())
        .with("evaluated", answer.evaluated)
        .with("feasible", answer.feasible)
        .with("infeasible", answer.infeasible)
        .with("rounds", answer.rounds)
        .with("cost_units", cost_units(answer))
        .with(
            "best",
            answer.best.as_ref().map_or(Json::Null, eval_to_json),
        )
        .with("frontier", frontier)
}

/// A success reply line body.
pub fn ok_reply(id: &Json, answer: &QueryAnswer) -> Json {
    Json::obj()
        .with("id", id.clone())
        .with("ok", true)
        .with("answer", answer_to_json(answer))
}

/// Deterministic work units an optimize run spent: unique points
/// dispatched to the engine — the same currency as [`cost_units`], so
/// grid and optimize traffic share one deadline policy.
pub fn optimize_cost_units(answer: &OptimizeAnswer) -> u64 {
    answer.evaluated as u64
}

/// Renders an optimize answer. Frontier members sort by (flight time
/// desc, weight asc) like [`answer_to_json`]; every number is
/// scheduling-independent, so reply bytes are stable at any thread
/// count.
pub fn optimize_answer_to_json(answer: &OptimizeAnswer) -> Json {
    let mut members: Vec<&DesignEval> = answer.frontier.iter().collect();
    members.sort_by(|a, b| {
        b.flight_time_min
            .total_cmp(&a.flight_time_min)
            .then(a.weight_g.total_cmp(&b.weight_g))
    });
    let mut frontier = Json::arr();
    for m in members {
        frontier.push(eval_to_json(m));
    }
    let mut pool_sizes = Json::arr();
    for p in &answer.pool_sizes {
        pool_sizes.push(*p);
    }
    Json::obj()
        .with("name", answer.name.as_str())
        .with("strategy", answer.strategy.as_str())
        .with("sampled", answer.sampled)
        .with("evaluated", answer.evaluated)
        .with("coarse_evals", answer.coarse_evals)
        .with("prefiltered", answer.prefiltered)
        .with("feasible", answer.feasible)
        .with("infeasible", answer.infeasible)
        .with("rounds", answer.rounds)
        .with("refine_waves", answer.refine_waves)
        .with("pool_sizes", pool_sizes)
        .with("budget", answer.budget)
        .with("cost_units", optimize_cost_units(answer))
        .with(
            "best",
            answer.best.as_ref().map_or(Json::Null, eval_to_json),
        )
        .with("frontier", frontier)
}

/// A success reply line body for an optimize request.
pub fn ok_optimize_reply(id: &Json, answer: &OptimizeAnswer) -> Json {
    Json::obj()
        .with("id", id.clone())
        .with("ok", true)
        .with("answer", optimize_answer_to_json(answer))
}

/// An error reply line body.
pub fn error_reply(id: &Json, error: &RequestError) -> Json {
    Json::obj().with("id", id.clone()).with("ok", false).with(
        "error",
        Json::obj()
            .with("kind", error.kind.as_str())
            .with("message", error.message.as_str()),
    )
}

/// What one batch did, for the caller's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests answered with `ok: true`.
    pub answered: usize,
    /// Lines rejected for not speaking the protocol (parse/shape).
    pub protocol_errors: usize,
    /// Well-formed requests whose query failed the service limits.
    pub query_errors: usize,
    /// Valid requests shed before evaluation: their worst-case cost
    /// exceeded the batch policy's deadline.
    pub deadline_sheds: usize,
    /// Valid requests whose evaluation panicked; each got a typed
    /// `internal_error` reply and the fault went no further.
    pub internal_errors: usize,
    /// Introspection (`stats`/`trace`) requests. Answered live by the
    /// server; rejected with `bad_request` on the pure batch path.
    pub admin_requests: usize,
    /// Of `answered`, requests that ran the optimizer rather than an
    /// exhaustive sweep.
    pub optimize_requests: usize,
    /// Deterministic work units across the answered requests.
    pub cost_units: u64,
}

impl BatchOutcome {
    /// All rejections, whatever the kind.
    pub fn rejected(&self) -> usize {
        self.protocol_errors + self.query_errors + self.deadline_sheds + self.internal_errors
    }
}

/// Degradation knobs applied per batch, mirroring the firmware
/// `ShedPolicy`: work the server refuses *before* spending cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest worst-case [`Query::estimated_cost_units`] a single
    /// request may carry; anything above is shed with a typed
    /// `deadline_exceeded` reply before evaluation starts. `None`
    /// disables shedding.
    pub cost_deadline: Option<u64>,
}

/// The tracing context the server threads through a traced batch: the
/// ring completed span trees land in, the clock spans time against,
/// and the seed used to derive trace ids for requests that did not
/// stamp their own.
pub struct BatchTracing<'a> {
    /// Where finished traces go (the `trace` request reads from here).
    pub ring: &'a TraceRing,
    /// The clock spans measure against.
    pub clock: Clock,
    /// Seed for server-derived trace ids (requests without a
    /// client-stamped `trace_id`).
    pub seed: u64,
}

/// An introspection request the pure batch handler cannot answer — it
/// has no registry, queue or ring. The server resolves these slots
/// against its live state, in input order.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminRequest {
    /// Registry snapshot + queue depth + trace-ring bookkeeping.
    Stats,
    /// Completed span trees from the ring.
    Trace(TraceQuery),
}

/// One reply slot from [`handle_batch_traced`]: either a finished
/// reply line or an introspection request for the server to resolve.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplySlot {
    /// A rendered reply line.
    Line(String),
    /// A live-introspection request; the server renders the reply.
    Admin {
        /// The echoed client id.
        id: Json,
        /// What to introspect.
        request: AdminRequest,
    },
}

/// Evaluated work a valid request carries: an exhaustive sweep or an
/// optimizer run.
#[allow(clippy::large_enum_variant)] // at most max_batch of these live at once
enum Work {
    Query(Query),
    Optimize(OptimizeRequest),
}

impl Work {
    fn estimated_cost_units(&self) -> u64 {
        match self {
            Work::Query(query) => query.estimated_cost_units(),
            Work::Optimize(req) => req.estimated_cost_units(),
        }
    }
}

/// How one parsed line will be handled, decided before the engine runs.
#[allow(clippy::large_enum_variant)] // at most max_batch of these live at once
enum Disposition {
    /// Valid and within deadline: evaluated by the engine.
    Run(Request, Work),
    /// Valid but over the cost deadline: shed with a typed reply.
    Shed(Request, RequestError),
    /// A live-introspection request for the server to resolve.
    Admin(Json, AdminRequest),
    /// Never reached the engine: parse/shape/limit failure. Carries
    /// the client id when the line parsed far enough to have one.
    Reject(Json, RequestError),
}

/// Processes a batch of request lines against one engine: parse and
/// validate each line, evaluate every valid query against the shared
/// engine (one memoization cache across the batch, queries in input
/// order), and return one compact reply line per input, in input
/// order. Never panics, whatever the lines contain — even an
/// evaluation that panics is caught and answered with a typed
/// `internal_error` reply for that request alone. Introspection
/// requests (`stats`/`trace`) are rejected here with `bad_request`;
/// only a live server ([`handle_batch_traced`]) can answer them.
pub fn handle_batch(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
) -> (Vec<String>, BatchOutcome) {
    handle_batch_with(engine, lines, limits, BatchPolicy::default())
}

/// [`handle_batch`] with explicit degradation policy.
pub fn handle_batch_with(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
    policy: BatchPolicy,
) -> (Vec<String>, BatchOutcome) {
    let (slots, outcome) = handle_batch_core(engine, lines, limits, policy, None);
    let replies = slots
        .into_iter()
        .map(|slot| match slot {
            ReplySlot::Line(line) => line,
            // Unreachable: without tracing, admin requests were
            // rejected at disposition time.
            ReplySlot::Admin { id, .. } => error_reply(
                &id,
                &RequestError::bad("introspection requires a live server"),
            )
            .render(),
        })
        .collect();
    (replies, outcome)
}

/// [`handle_batch_with`] plus causal tracing: every evaluated (or
/// shed) request builds a span tree pushed into `tracing.ring`, and
/// introspection requests come back as [`ReplySlot::Admin`] for the
/// server to resolve against its live state — *after* it has done its
/// own metric accounting, so a `stats` reply observes the batch it
/// rode in on.
pub fn handle_batch_traced(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
    policy: BatchPolicy,
    tracing: &BatchTracing<'_>,
) -> (Vec<ReplySlot>, BatchOutcome) {
    handle_batch_core(engine, lines, limits, policy, Some(tracing))
}

/// Applies the cost-deadline policy to one piece of valid work.
fn disposition_for(request: Request, work: Work, policy: BatchPolicy) -> Disposition {
    let estimated = work.estimated_cost_units();
    match policy.cost_deadline {
        Some(deadline) if estimated > deadline => {
            let error = RequestError {
                kind: ErrorKind::DeadlineExceeded,
                message: format!(
                    "estimated {estimated} cost units exceeds the {deadline}-unit deadline"
                ),
            };
            Disposition::Shed(request, error)
        }
        _ => Disposition::Run(request, work),
    }
}

fn handle_batch_core(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
    policy: BatchPolicy,
    tracing: Option<&BatchTracing<'_>>,
) -> (Vec<ReplySlot>, BatchOutcome) {
    let dispositions: Vec<Disposition> = lines
        .iter()
        .map(|line| match parse_request_with_id(line, limits) {
            Ok(request) => match request.body.clone() {
                RequestBody::Stats if tracing.is_some() => {
                    Disposition::Admin(request.id, AdminRequest::Stats)
                }
                RequestBody::Trace(fetch) if tracing.is_some() => {
                    Disposition::Admin(request.id, AdminRequest::Trace(fetch))
                }
                RequestBody::Stats | RequestBody::Trace(_) => Disposition::Reject(
                    request.id,
                    RequestError::bad("introspection requires a live server"),
                ),
                RequestBody::Query(query) => disposition_for(request, Work::Query(query), policy),
                RequestBody::Optimize(req) => disposition_for(request, Work::Optimize(req), policy),
            },
            Err((id, error)) => Disposition::Reject(id, error),
        })
        .collect();
    // Builds this request's trace (root span + engine children) while
    // `record` runs, then pushes it into the ring. The trace id is the
    // client-stamped one when present, else derived deterministically
    // from the request id — identical at any thread count either way.
    let trace_request =
        |request: &Request, record: &mut dyn FnMut(Option<&mut drone_telemetry::Span>)| {
            let Some(tracing) = tracing else {
                record(None);
                return;
            };
            let trace_id = request.trace_id.unwrap_or_else(|| {
                derive_trace_id_bytes(tracing.seed, request.id.render().as_bytes())
            });
            let builder = TraceBuilder::new(trace_id, tracing.clock.clone());
            let mut root = builder.root("serve.request");
            record(Some(&mut root));
            drop(root);
            tracing.ring.push(builder.finish());
        };
    let mut outcome = BatchOutcome::default();
    let slots = dispositions
        .into_iter()
        .map(|disposition| match disposition {
            Disposition::Run(request, work) => {
                let mut reply: Option<Json> = None;
                trace_request(&request, &mut |mut root| {
                    let result = match &work {
                        Work::Query(query) => engine
                            .try_run_spanned(query, root.as_deref())
                            .map(|answer| (cost_units(&answer), ok_reply(&request.id, &answer))),
                        Work::Optimize(req) => engine
                            .try_optimize_spanned(req, root.as_deref())
                            .map(|answer| {
                                (
                                    optimize_cost_units(&answer),
                                    ok_optimize_reply(&request.id, &answer),
                                )
                            }),
                    };
                    reply = Some(match result {
                        Ok((cost, ok)) => {
                            outcome.answered += 1;
                            outcome.cost_units += cost;
                            if let Work::Optimize(req) = &work {
                                outcome.optimize_requests += 1;
                                if let Some(root) = root.as_mut() {
                                    root.tag("strategy", req.strategy.as_str());
                                }
                            }
                            if let Some(root) = root {
                                root.tag("outcome", "ok");
                                root.tag("cost_units", cost);
                            }
                            ok
                        }
                        Err(panic) => {
                            outcome.internal_errors += 1;
                            if let Some(root) = root {
                                root.tag("outcome", "internal_error");
                            }
                            let error = RequestError {
                                kind: ErrorKind::Internal,
                                message: panic.to_string(),
                            };
                            error_reply(&request.id, &error)
                        }
                    });
                });
                ReplySlot::Line(reply.expect("record ran").render())
            }
            Disposition::Shed(request, error) => {
                outcome.deadline_sheds += 1;
                trace_request(&request, &mut |root| {
                    if let Some(root) = root {
                        root.tag("outcome", "deadline_exceeded");
                    }
                });
                ReplySlot::Line(error_reply(&request.id, &error).render())
            }
            Disposition::Admin(id, request) => {
                outcome.admin_requests += 1;
                ReplySlot::Admin { id, request }
            }
            Disposition::Reject(id, error) => {
                if error.kind == ErrorKind::InvalidQuery {
                    outcome.query_errors += 1;
                } else {
                    outcome.protocol_errors += 1;
                }
                ReplySlot::Line(error_reply(&id, &error).render())
            }
        })
        .collect();
    (slots, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Explorer {
        Explorer::new(2)
    }

    fn minimal_line() -> String {
        r#"{"id":7,"query":{"ranges":{"wheelbase_mm":{"min":250,"max":450,"steps":3},"cells":["3S"],"capacity_mah":{"min":2000,"max":6000,"steps":5}},"objective":"max_flight_time"}}"#.to_owned()
    }

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = parse_request(&minimal_line(), &QueryLimits::default()).unwrap();
        assert_eq!(req.id, Json::Num(7.0));
        assert_eq!(req.trace_id, None);
        let query = req.query().expect("query request");
        assert_eq!(query.name, "query");
        assert_eq!(query.ranges.compute_power_w.values(), vec![3.0]);
        assert_eq!(query.refine_rounds, 0);
        assert_eq!(query.objective, Objective::MaxFlightTime);
    }

    #[test]
    fn request_round_trips_through_the_client_renderer() {
        let query = Query::new(
            "rt",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                cells: vec![CellCount::S3, CellCount::S6],
                capacity_mah: GridRange::new(2000.0, 6000.0, 5),
                compute_power_w: GridRange::fixed(20.0),
                twr: GridRange::fixed(2.0),
                payload_g: GridRange::new(0.0, 200.0, 2),
            },
            Objective::MinWeight,
        )
        .with_constraints(Constraints {
            max_weight_g: Some(2000.0),
            ..Constraints::default()
        })
        .with_refinement(1, 3);
        let line = request_to_json(42, &query).render();
        let parsed = parse_request(&line, &QueryLimits::default()).unwrap();
        assert_eq!(parsed.id, Json::Num(42.0));
        assert_eq!(parsed.query(), Some(&query));
        assert_eq!(parsed.trace_id, None);

        // The tracing renderer round-trips the stamped id too.
        let trace_id = drone_telemetry::derive_trace_id(7, 42);
        let line = request_to_json_traced(42, trace_id, &query).render();
        let parsed = parse_request(&line, &QueryLimits::default()).unwrap();
        assert_eq!(parsed.trace_id, Some(trace_id));
        assert_eq!(parsed.query(), Some(&query));
    }

    #[test]
    fn sharded_requests_round_trip_and_validate() {
        let minimal = parse_request(&minimal_line(), &QueryLimits::default()).unwrap();
        let query = minimal.query().unwrap().clone().with_shard(1, 4);
        let line = request_to_json(9, &query).render();
        let parsed = parse_request(&line, &QueryLimits::default()).unwrap();
        assert_eq!(parsed.query(), Some(&query));

        // An out-of-range shard index is a typed invalid_query refusal.
        let bad = request_to_json(9, &minimal.query().unwrap().clone().with_shard(4, 4)).render();
        let err = parse_request(&bad, &QueryLimits::default()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidQuery);
        assert!(err.message.contains("shard"));

        // Strict key checking still applies inside the shard object.
        let err = parse_request(
            r#"{"id":1,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","shard":{"index":0,"count":2,"extra":1}}}"#,
            &QueryLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn introspection_requests_parse_strictly() {
        let limits = QueryLimits::default();
        let stats = parse_request(r#"{"id":1,"stats":{}}"#, &limits).unwrap();
        assert_eq!(stats.body, RequestBody::Stats);
        let trace = parse_request(r#"{"id":2,"trace":{}}"#, &limits).unwrap();
        assert_eq!(trace.body, RequestBody::Trace(TraceQuery::default()));
        let trace = parse_request(r#"{"id":2,"trace":{"last":5}}"#, &limits).unwrap();
        assert_eq!(
            trace.body,
            RequestBody::Trace(TraceQuery {
                last: 5,
                trace_id: None
            })
        );
        let by_id = parse_request(
            r#"{"id":3,"trace":{"trace_id":"00000000deadbeef"}}"#,
            &limits,
        )
        .unwrap();
        assert_eq!(
            by_id.body,
            RequestBody::Trace(TraceQuery {
                last: 1,
                trace_id: Some(0xdead_beef)
            })
        );

        let rejected = [
            r#"{"id":1,"stats":{"verbose":true}}"#, // stats takes no params
            r#"{"id":1,"stats":{},"trace":{}}"#,    // exactly one kind
            r#"{"id":1}"#,                          // at least one kind
            r#"{"id":1,"trace":{"last":0}}"#,       // last out of range
            r#"{"id":1,"trace":{"last":99}}"#,      // over the fetch cap
            r#"{"id":1,"trace":{"nope":1}}"#,       // unknown key
            r#"{"id":1,"trace":{"trace_id":"xyz"}}"#, // malformed hex
            r#"{"id":1,"trace_id":12,"stats":{}}"#, // trace_id must be hex string
            r#"{"id":1,"trace_id":"DEADBEEF","stats":{}}"#, // wrong length/case
        ];
        for line in rejected {
            let err = parse_request(line, &limits).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line}");
        }
    }

    #[test]
    fn pure_batch_rejects_introspection_with_a_typed_error() {
        let lines = [r#"{"id":9,"stats":{}}"#, r#"{"id":10,"trace":{}}"#];
        let (replies, outcome) = handle_batch(&engine(), &lines, &QueryLimits::default());
        assert_eq!(replies.len(), 2);
        for reply in &replies {
            let doc = Json::parse(reply).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
            assert_eq!(
                doc.get("error").and_then(|e| e.get("kind")),
                Some(&Json::Str("bad_request".into()))
            );
        }
        assert_eq!(outcome.protocol_errors, 2);
        assert_eq!(outcome.admin_requests, 0);
    }

    #[test]
    fn traced_batches_push_span_trees_and_surface_admin_slots() {
        use drone_telemetry::{derive_trace_id, id_hex, TraceRing};
        let ring = TraceRing::new(8);
        let tracing = BatchTracing {
            ring: &ring,
            clock: Clock::wall(),
            seed: 7,
        };
        let query_line = minimal_line();
        let trace_id = derive_trace_id(7, 7);
        let stamped = format!(
            r#"{{"id":7,"trace_id":"{}","query":{}}}"#,
            id_hex(trace_id),
            Json::parse(&query_line)
                .unwrap()
                .get("query")
                .unwrap()
                .render(),
        );
        let lines = [stamped.as_str(), r#"{"id":8,"stats":{}}"#];
        let (slots, outcome) = handle_batch_traced(
            &engine(),
            &lines,
            &QueryLimits::default(),
            BatchPolicy::default(),
            &tracing,
        );
        assert_eq!(outcome.answered, 1);
        assert_eq!(outcome.admin_requests, 1);
        assert!(matches!(&slots[0], ReplySlot::Line(l) if l.contains("\"ok\":true")));
        assert!(
            matches!(
                &slots[1],
                ReplySlot::Admin {
                    request: AdminRequest::Stats,
                    ..
                }
            ),
            "stats slot for the server"
        );
        // The evaluated request's trace landed in the ring under the
        // client-stamped id, with engine spans beneath the root.
        let trace = ring.find(trace_id).expect("trace retained");
        assert_eq!(trace.count_named("serve.request"), 1);
        assert_eq!(trace.count_named("explore.round"), 1);
        assert_eq!(trace.count_named("point"), 15);
        assert_eq!(trace.open_at_finish, 0);
        assert_eq!(trace.root_tag("outcome").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn traced_sheds_record_single_span_traces() {
        use drone_telemetry::TraceRing;
        let ring = TraceRing::new(8);
        let tracing = BatchTracing {
            ring: &ring,
            clock: Clock::wall(),
            seed: 7,
        };
        let line = minimal_line();
        let policy = BatchPolicy {
            cost_deadline: Some(10),
        };
        let (slots, outcome) = handle_batch_traced(
            &engine(),
            &[line.as_str()],
            &QueryLimits::default(),
            policy,
            &tracing,
        );
        assert_eq!(outcome.deadline_sheds, 1);
        assert!(matches!(&slots[0], ReplySlot::Line(l) if l.contains("deadline_exceeded")));
        assert_eq!(ring.completed(), 1);
        let trace = &ring.last(1)[0];
        assert_eq!(trace.span_count(), 1, "shed before evaluation: root only");
        assert_eq!(
            trace.root_tag("outcome").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
    }

    #[test]
    fn strictness_rejects_unknown_keys_and_bad_shapes() {
        let limits = QueryLimits::default();
        let cases = [
            ("not json at all", ErrorKind::Parse),
            ("{\"nope\":1}", ErrorKind::BadRequest),
            ("{\"query\":{\"objective\":\"max_flight_time\"}}", ErrorKind::BadRequest),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[3],\"capacity_mah\":1000,\"bogus\":1},\"objective\":\"max_flight_time\"}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[\"9S\"],\"capacity_mah\":1000},\"objective\":\"max_flight_time\"}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[3],\"capacity_mah\":1000},\"objective\":\"fastest\"}}",
                ErrorKind::BadRequest,
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line, &limits).unwrap_err();
            assert_eq!(err.kind, kind, "{line}");
        }
    }

    #[test]
    fn limit_violations_surface_as_invalid_query() {
        let line = r#"{"query":{"ranges":{"wheelbase_mm":{"min":450,"max":250,"steps":3},"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let err = parse_request(line, &QueryLimits::default()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidQuery);
        assert!(err.message.contains("inverted"), "{}", err.message);
    }

    #[test]
    fn handle_batch_replies_in_input_order_and_coalesces() {
        let bad = "garbage";
        let good = minimal_line();
        let lines = [good.as_str(), bad, good.as_str()];
        let (replies, outcome) = handle_batch(&engine(), &lines, &QueryLimits::default());
        assert_eq!(replies.len(), 3);
        let first = Json::parse(&replies[0]).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("id"), Some(&Json::Num(7.0)));
        let second = Json::parse(&replies[1]).unwrap();
        assert_eq!(second.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            second.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("parse".into()))
        );
        assert_eq!(outcome.answered, 2);
        assert_eq!(outcome.protocol_errors, 1);
        assert_eq!(outcome.query_errors, 0);
        assert_eq!(outcome.rejected(), 1);
        assert_eq!(outcome.cost_units, 30, "15 grid points per good request");
        // Identical replies for identical requests.
        assert_eq!(replies[0], replies[2]);
    }

    #[test]
    fn over_deadline_requests_shed_before_evaluation() {
        // The minimal request sweeps a 15-point grid; a 10-unit
        // deadline sheds it, a 15-unit one lets it through.
        let line = minimal_line();
        let policy = BatchPolicy {
            cost_deadline: Some(10),
        };
        let (replies, outcome) =
            handle_batch_with(&engine(), &[line.as_str()], &QueryLimits::default(), policy);
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(7.0)), "shed echoes the id");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert_eq!(outcome.deadline_sheds, 1);
        assert_eq!(outcome.answered, 0);
        assert_eq!(outcome.cost_units, 0, "shed work costs nothing");
        assert_eq!(outcome.rejected(), 1);

        let relaxed = BatchPolicy {
            cost_deadline: Some(15),
        };
        let (replies, outcome) = handle_batch_with(
            &engine(),
            &[line.as_str()],
            &QueryLimits::default(),
            relaxed,
        );
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(outcome.answered, 1);
        assert_eq!(outcome.deadline_sheds, 0);
    }

    #[test]
    fn a_panicking_evaluation_answers_internal_error_for_that_line_only() {
        use drone_explorer::Explorer;
        use std::sync::Arc;

        // Poison exactly the 350 mm wheelbase sample; the minimal
        // request's 3-step 250..450 grid hits it, a pinned 250 mm
        // request does not.
        let engine = Explorer::new(2).with_eval_hook(Arc::new(|q| {
            assert!(
                (q.wheelbase_mm - 350.0).abs() > 1e-9,
                "chaos hook: poisoned wheelbase"
            );
        }));
        let healthy = r#"{"id":1,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let poisoned = minimal_line();
        let lines = [healthy, poisoned.as_str(), healthy];
        let (replies, outcome) = handle_batch(&engine, &lines, &QueryLimits::default());
        assert_eq!(replies.len(), 3);
        for healthy_reply in [&replies[0], &replies[2]] {
            let doc = Json::parse(healthy_reply).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        }
        let doc = Json::parse(&replies[1]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(7.0)), "panic echoes the id");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("internal_error".into()))
        );
        assert_eq!(outcome.answered, 2);
        assert_eq!(outcome.internal_errors, 1);
        assert_eq!(outcome.rejected(), 1);
    }

    fn minimal_optimize_line() -> String {
        r#"{"id":11,"optimize":{"ranges":{"wheelbase_mm":{"min":250,"max":450,"steps":5},"cells":["3S"],"capacity_mah":{"min":2000,"max":6000,"steps":9}},"objective":"max_flight_time","strategy":"sobol","budget":12}}"#
            .to_owned()
    }

    #[test]
    fn optimize_requests_parse_and_round_trip() {
        let limits = QueryLimits::default();
        let req = parse_request(&minimal_optimize_line(), &limits).unwrap();
        let parsed = req.optimize().expect("optimize request");
        assert_eq!(parsed.name, "optimize");
        assert_eq!(parsed.strategy, Strategy::Sobol);
        assert_eq!(parsed.budget, 12);
        assert_eq!(parsed.seed, 0);

        // Client renderer → parser is the identity on the typed value.
        let full = OptimizeRequest::new(
            "rt",
            parsed.ranges.clone(),
            Objective::MinWeight,
            Strategy::Halving,
            64,
        )
        .with_constraints(Constraints {
            max_weight_g: Some(1500.0),
            ..Constraints::default()
        })
        .with_seed(9);
        let line = optimize_request_to_json(5, &full).render();
        let round = parse_request(&line, &limits).unwrap();
        assert_eq!(round.optimize(), Some(&full));
        assert_eq!(round.id, Json::Num(5.0));

        let trace_id = drone_telemetry::derive_trace_id(3, 5);
        let line = optimize_request_to_json_traced(5, trace_id, &full).render();
        let round = parse_request(&line, &limits).unwrap();
        assert_eq!(round.trace_id, Some(trace_id));
        assert_eq!(round.optimize(), Some(&full));
    }

    #[test]
    fn optimize_parsing_is_strict() {
        let limits = QueryLimits::default();
        let cases = [
            // Unknown strategy.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"grid","budget":8}}"#,
                ErrorKind::BadRequest,
            ),
            // Missing budget.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"sobol"}}"#,
                ErrorKind::BadRequest,
            ),
            // Unknown key.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"sobol","budget":8,"bogus":1}}"#,
                ErrorKind::BadRequest,
            ),
            // Exactly one request kind.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"sobol","budget":8},"stats":{}}"#,
                ErrorKind::BadRequest,
            ),
            // Budget over the service cap -> invalid_query.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"sobol","budget":99999}}"#,
                ErrorKind::InvalidQuery,
            ),
            // Budget zero -> invalid_query.
            (
                r#"{"optimize":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time","strategy":"sobol","budget":0}}"#,
                ErrorKind::InvalidQuery,
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line, &limits).unwrap_err();
            assert_eq!(err.kind, kind, "{line}");
        }
    }

    #[test]
    fn optimize_batches_answer_deterministically_and_count() {
        let line = minimal_optimize_line();
        let lines = [line.as_str(), line.as_str()];
        let (replies, outcome) = handle_batch(&engine(), &lines, &QueryLimits::default());
        assert_eq!(outcome.answered, 2);
        assert_eq!(outcome.optimize_requests, 2);
        assert_eq!(replies[0], replies[1], "same seed, same reply bytes");
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        let answer = doc.get("answer").unwrap();
        assert_eq!(
            answer.get("strategy"),
            Some(&Json::Str("sobol".into())),
            "answer echoes the strategy"
        );
        let evaluated = answer.get("evaluated").and_then(Json::as_f64).unwrap();
        assert!(evaluated > 0.0 && evaluated <= 12.0, "budget respected");
        assert_eq!(outcome.cost_units, 2 * evaluated as u64);

        // The optimizer answers fewer points than the 45-point grid
        // sweep of the same region would.
        assert!(evaluated < 45.0);
    }

    #[test]
    fn optimize_requests_shed_against_the_same_cost_deadline() {
        let line = minimal_optimize_line();
        let policy = BatchPolicy {
            cost_deadline: Some(8), // budget 12 > 8
        };
        let (replies, outcome) =
            handle_batch_with(&engine(), &[line.as_str()], &QueryLimits::default(), policy);
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert_eq!(outcome.deadline_sheds, 1);
        assert_eq!(outcome.optimize_requests, 0);
    }

    #[test]
    fn answers_report_a_sorted_frontier_and_null_best_when_empty() {
        let line = minimal_line();
        let (replies, _) = handle_batch(&engine(), &[line.as_str()], &QueryLimits::default());
        let doc = Json::parse(&replies[0]).unwrap();
        let answer = doc.get("answer").unwrap();
        let frontier = answer.get("frontier").and_then(Json::as_arr).unwrap();
        assert!(!frontier.is_empty());
        let flights: Vec<f64> = frontier
            .iter()
            .map(|m| m.get("flight_min").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(flights.windows(2).all(|w| w[0] >= w[1]), "{flights:?}");

        // An unsatisfiable query answers ok with best: null.
        let none = r#"{"id":1,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"constraints":{"min_flight_time_min":10000},"objective":"max_flight_time"}}"#;
        let (replies, outcome) = handle_batch(&engine(), &[none], &QueryLimits::default());
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("answer").unwrap().get("best"), Some(&Json::Null));
        assert_eq!(outcome.answered, 1);
    }
}
