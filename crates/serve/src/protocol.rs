//! The wire vocabulary: newline-delimited JSON requests and replies.
//!
//! One request per line, one reply line per request, always in request
//! order. The parser is **strict** — unknown keys, wrong types, missing
//! required fields and out-of-budget grids all produce a typed
//! [`RequestError`] that renders as a structured error reply; no input,
//! however malformed, may panic the server (`tests/properties.rs` feeds
//! arbitrary bytes through [`handle_batch`] to pin exactly that).
//!
//! ```text
//! -> {"id":1,"query":{"ranges":{"wheelbase_mm":{"min":250,"max":450,"steps":3},
//!      "cells":["3S"],"capacity_mah":{"min":2000,"max":6000,"steps":5}},
//!      "objective":"max_flight_time"}}
//! <- {"id":1,"ok":true,"answer":{"name":"query","evaluated":15,...}}
//! -> not json
//! <- {"id":null,"ok":false,"error":{"kind":"parse","message":"..."}}
//! ```

use drone_components::battery::CellCount;
use drone_dse::eval::DesignEval;
use drone_explorer::{
    Constraints, Explorer, GridRange, Objective, Query, QueryAnswer, QueryLimits, QueryRanges,
};
use drone_telemetry::Json;
use std::fmt;

/// What went wrong with a request, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not a JSON document.
    Parse,
    /// The document does not have the request shape.
    BadRequest,
    /// The query failed [`Query::validate`] against the service limits.
    InvalidQuery,
    /// The request line exceeded the size cap before a newline arrived.
    TooLarge,
    /// The server shed the connection under load.
    Overloaded,
    /// The query's worst-case cost exceeds the per-request deadline;
    /// the server shed it before evaluation started.
    DeadlineExceeded,
    /// The evaluation panicked; the fault was isolated to this request.
    Internal,
}

impl ErrorKind {
    /// The wire spelling (`error.kind`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::InvalidQuery => "invalid_query",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal_error",
        }
    }

    /// The inverse of [`ErrorKind::as_str`], for clients classifying
    /// replies off the wire.
    pub fn from_wire(kind: &str) -> Option<ErrorKind> {
        match kind {
            "parse" => Some(ErrorKind::Parse),
            "bad_request" => Some(ErrorKind::BadRequest),
            "invalid_query" => Some(ErrorKind::InvalidQuery),
            "too_large" => Some(ErrorKind::TooLarge),
            "overloaded" => Some(ErrorKind::Overloaded),
            "deadline_exceeded" => Some(ErrorKind::DeadlineExceeded),
            "internal_error" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// A typed request failure: the reply's `error` object.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for RequestError {}

/// A parsed request: the echoed `id` and the validated query.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed verbatim in the reply (`null` when
    /// absent).
    pub id: Json,
    /// The validated exploration query.
    pub query: Query,
}

fn expect_keys(obj: &Json, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    let pairs = obj
        .as_obj()
        .ok_or_else(|| RequestError::bad(format!("{what} must be an object")))?;
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(RequestError::bad(format!("{what}: unknown key '{key}'")));
        }
    }
    Ok(())
}

fn number(doc: &Json, what: &str) -> Result<f64, RequestError> {
    doc.as_f64()
        .ok_or_else(|| RequestError::bad(format!("{what} must be a number")))
}

fn steps(doc: &Json, what: &str) -> Result<usize, RequestError> {
    let n = number(doc, what)?;
    if n.fract() != 0.0 || !(0.0..=1e9).contains(&n) {
        return Err(RequestError::bad(format!(
            "{what} must be a small non-negative integer"
        )));
    }
    Ok(n as usize)
}

/// A range is either `{"min":..,"max":..,"steps":..}` or a bare number
/// (a pinned coordinate).
fn grid_range(doc: &Json, what: &str) -> Result<GridRange, RequestError> {
    if let Some(v) = doc.as_f64() {
        return Ok(GridRange {
            min: v,
            max: v,
            steps: 1,
        });
    }
    expect_keys(doc, &["min", "max", "steps"], what)?;
    let field = |key: &str| {
        doc.get(key)
            .ok_or_else(|| RequestError::bad(format!("{what}: missing '{key}'")))
    };
    Ok(GridRange {
        min: number(field("min")?, &format!("{what}.min"))?,
        max: number(field("max")?, &format!("{what}.max"))?,
        steps: steps(field("steps")?, &format!("{what}.steps"))?,
    })
}

/// Cells parse from `"3S"` strings or bare cell counts (`3`).
fn cell(doc: &Json) -> Result<CellCount, RequestError> {
    let count = match doc {
        Json::Num(n) if n.fract() == 0.0 && (0.0..=255.0).contains(n) => *n as u8,
        Json::Str(s) => {
            let trimmed = s.strip_suffix('S').or_else(|| s.strip_suffix('s'));
            trimmed
                .and_then(|t| t.parse::<u8>().ok())
                .ok_or_else(|| RequestError::bad(format!("cells: unknown config '{s}'")))?
        }
        _ => {
            return Err(RequestError::bad(
                "cells entries must be \"<n>S\" or a count",
            ))
        }
    };
    CellCount::from_cells(count)
        .ok_or_else(|| RequestError::bad(format!("cells: no {count}-cell configuration")))
}

fn ranges_from_json(doc: &Json) -> Result<QueryRanges, RequestError> {
    expect_keys(
        doc,
        &[
            "wheelbase_mm",
            "cells",
            "capacity_mah",
            "compute_power_w",
            "twr",
            "payload_g",
        ],
        "ranges",
    )?;
    let required = |key: &'static str| {
        doc.get(key)
            .ok_or_else(|| RequestError::bad(format!("ranges: missing '{key}'")))
    };
    let optional = |key: &'static str, default: f64| -> Result<GridRange, RequestError> {
        match doc.get(key) {
            Some(r) => grid_range(r, key),
            None => Ok(GridRange {
                min: default,
                max: default,
                steps: 1,
            }),
        }
    };
    let cells_doc = required("cells")?;
    let cells = cells_doc
        .as_arr()
        .ok_or_else(|| RequestError::bad("cells must be an array"))?
        .iter()
        .map(cell)
        .collect::<Result<Vec<CellCount>, RequestError>>()?;
    Ok(QueryRanges {
        wheelbase_mm: grid_range(required("wheelbase_mm")?, "wheelbase_mm")?,
        cells,
        capacity_mah: grid_range(required("capacity_mah")?, "capacity_mah")?,
        compute_power_w: optional("compute_power_w", 3.0)?,
        twr: optional("twr", drone_components::paper::PAPER_TWR)?,
        payload_g: optional("payload_g", 0.0)?,
    })
}

fn constraints_from_json(doc: &Json) -> Result<Constraints, RequestError> {
    expect_keys(
        doc,
        &[
            "max_weight_g",
            "min_flight_time_min",
            "max_compute_share_hover",
            "max_hover_power_w",
        ],
        "constraints",
    )?;
    let bound = |key: &str| -> Result<Option<f64>, RequestError> {
        doc.get(key).map(|v| number(v, key)).transpose()
    };
    Ok(Constraints {
        max_weight_g: bound("max_weight_g")?,
        min_flight_time_min: bound("min_flight_time_min")?,
        max_compute_share_hover: bound("max_compute_share_hover")?,
        max_hover_power_w: bound("max_hover_power_w")?,
    })
}

fn objective_from_json(doc: &Json) -> Result<Objective, RequestError> {
    match doc.as_str() {
        Some("max_flight_time") => Ok(Objective::MaxFlightTime),
        Some("min_weight") => Ok(Objective::MinWeight),
        Some("min_compute_share") => Ok(Objective::MinComputeShare),
        Some(other) => Err(RequestError::bad(format!("unknown objective '{other}'"))),
        None => Err(RequestError::bad("objective must be a string")),
    }
}

fn objective_to_str(objective: Objective) -> &'static str {
    match objective {
        Objective::MaxFlightTime => "max_flight_time",
        Objective::MinWeight => "min_weight",
        Objective::MinComputeShare => "min_compute_share",
    }
}

/// Parses one request line, validating the query against `limits`.
///
/// # Errors
///
/// Every failure mode is a [`RequestError`]; this function never
/// panics, whatever the bytes.
pub fn parse_request(line: &str, limits: &QueryLimits) -> Result<Request, RequestError> {
    parse_request_with_id(line, limits).map_err(|(_, error)| error)
}

/// [`parse_request`], but failures carry the client's `id` whenever
/// the line parsed far enough to have one — so error replies can echo
/// it and a correlating client can attribute the rejection.
fn parse_request_with_id(
    line: &str,
    limits: &QueryLimits,
) -> Result<Request, (Json, RequestError)> {
    let doc = Json::parse(line).map_err(|e| {
        (
            Json::Null,
            RequestError {
                kind: ErrorKind::Parse,
                message: e.to_string(),
            },
        )
    })?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    request_from_doc(&doc, limits).map_err(|error| (id, error))
}

fn request_from_doc(doc: &Json, limits: &QueryLimits) -> Result<Request, RequestError> {
    expect_keys(doc, &["id", "query"], "request")?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let query_doc = doc
        .get("query")
        .ok_or_else(|| RequestError::bad("request: missing 'query'"))?;
    expect_keys(
        query_doc,
        &[
            "name",
            "ranges",
            "constraints",
            "objective",
            "refine_rounds",
            "refine_steps",
        ],
        "query",
    )?;
    let name = match query_doc.get("name") {
        Some(n) => n
            .as_str()
            .ok_or_else(|| RequestError::bad("name must be a string"))?
            .to_owned(),
        None => "query".to_owned(),
    };
    let ranges_doc = query_doc
        .get("ranges")
        .ok_or_else(|| RequestError::bad("query: missing 'ranges'"))?;
    let constraints = match query_doc.get("constraints") {
        Some(c) => constraints_from_json(c)?,
        None => Constraints::default(),
    };
    let objective = objective_from_json(
        query_doc
            .get("objective")
            .ok_or_else(|| RequestError::bad("query: missing 'objective'"))?,
    )?;
    let fetch_steps = |key: &str| -> Result<usize, RequestError> {
        query_doc.get(key).map_or(Ok(0), |v| steps(v, key))
    };
    let query = Query {
        name,
        ranges: ranges_from_json(ranges_doc)?,
        constraints,
        objective,
        refine_rounds: fetch_steps("refine_rounds")?,
        refine_steps: fetch_steps("refine_steps")?,
    };
    query.validate(limits).map_err(|e| RequestError {
        kind: ErrorKind::InvalidQuery,
        message: e.to_string(),
    })?;
    Ok(Request { id, query })
}

/// Renders a query as a request line body (the client-side inverse of
/// [`parse_request`]).
pub fn request_to_json(id: u64, query: &Query) -> Json {
    let range = |r: &GridRange| {
        Json::obj()
            .with("min", r.min)
            .with("max", r.max)
            .with("steps", r.steps)
    };
    let mut cells = Json::arr();
    for c in &query.ranges.cells {
        cells.push(c.to_string());
    }
    let ranges = Json::obj()
        .with("wheelbase_mm", range(&query.ranges.wheelbase_mm))
        .with("cells", cells)
        .with("capacity_mah", range(&query.ranges.capacity_mah))
        .with("compute_power_w", range(&query.ranges.compute_power_w))
        .with("twr", range(&query.ranges.twr))
        .with("payload_g", range(&query.ranges.payload_g));
    let mut constraints = Json::obj();
    for (key, bound) in [
        ("max_weight_g", query.constraints.max_weight_g),
        ("min_flight_time_min", query.constraints.min_flight_time_min),
        (
            "max_compute_share_hover",
            query.constraints.max_compute_share_hover,
        ),
        ("max_hover_power_w", query.constraints.max_hover_power_w),
    ] {
        if let Some(b) = bound {
            constraints.insert(key, b);
        }
    }
    let query_json = Json::obj()
        .with("name", query.name.as_str())
        .with("ranges", ranges)
        .with("constraints", constraints)
        .with("objective", objective_to_str(query.objective))
        .with("refine_rounds", query.refine_rounds)
        .with("refine_steps", query.refine_steps);
    Json::obj().with("id", id).with("query", query_json)
}

fn eval_to_json(eval: &DesignEval) -> Json {
    Json::obj()
        .with("wheelbase_mm", eval.query.wheelbase_mm)
        .with("cells", eval.query.cells.to_string())
        .with("capacity_mah", eval.query.capacity_mah)
        .with("compute_w", eval.query.compute_power_w)
        .with("twr", eval.query.twr)
        .with("payload_g", eval.query.payload_g)
        .with("weight_g", eval.weight_g)
        .with("flight_min", eval.flight_time_min)
        .with("hover_w", eval.hover_power_w)
        .with("compute_share_hover", eval.compute_share_hover)
}

/// Deterministic per-request work units: points dispatched to the
/// engine (cache hits included). This is the "latency" the byte-stable
/// benchmark artifact reports — sim-deterministic, unlike wall time.
pub fn cost_units(answer: &QueryAnswer) -> u64 {
    answer.evaluated as u64
}

/// Renders an answer. Frontier members sort by (flight time desc,
/// weight asc) so the reply bytes are stable however the feasible set
/// was admitted.
pub fn answer_to_json(answer: &QueryAnswer) -> Json {
    let mut members: Vec<&DesignEval> = answer.frontier.iter().collect();
    members.sort_by(|a, b| {
        b.flight_time_min
            .total_cmp(&a.flight_time_min)
            .then(a.weight_g.total_cmp(&b.weight_g))
    });
    let mut frontier = Json::arr();
    for m in members {
        frontier.push(eval_to_json(m));
    }
    Json::obj()
        .with("name", answer.name.as_str())
        .with("evaluated", answer.evaluated)
        .with("feasible", answer.feasible)
        .with("infeasible", answer.infeasible)
        .with("rounds", answer.rounds)
        .with("cost_units", cost_units(answer))
        .with(
            "best",
            answer.best.as_ref().map_or(Json::Null, eval_to_json),
        )
        .with("frontier", frontier)
}

/// A success reply line body.
pub fn ok_reply(id: &Json, answer: &QueryAnswer) -> Json {
    Json::obj()
        .with("id", id.clone())
        .with("ok", true)
        .with("answer", answer_to_json(answer))
}

/// An error reply line body.
pub fn error_reply(id: &Json, error: &RequestError) -> Json {
    Json::obj().with("id", id.clone()).with("ok", false).with(
        "error",
        Json::obj()
            .with("kind", error.kind.as_str())
            .with("message", error.message.as_str()),
    )
}

/// What one batch did, for the caller's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests answered with `ok: true`.
    pub answered: usize,
    /// Lines rejected for not speaking the protocol (parse/shape).
    pub protocol_errors: usize,
    /// Well-formed requests whose query failed the service limits.
    pub query_errors: usize,
    /// Valid requests shed before evaluation: their worst-case cost
    /// exceeded the batch policy's deadline.
    pub deadline_sheds: usize,
    /// Valid requests whose evaluation panicked; each got a typed
    /// `internal_error` reply and the fault went no further.
    pub internal_errors: usize,
    /// Deterministic work units across the answered requests.
    pub cost_units: u64,
}

impl BatchOutcome {
    /// All rejections, whatever the kind.
    pub fn rejected(&self) -> usize {
        self.protocol_errors + self.query_errors + self.deadline_sheds + self.internal_errors
    }
}

/// Degradation knobs applied per batch, mirroring the firmware
/// `ShedPolicy`: work the server refuses *before* spending cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest worst-case [`Query::estimated_cost_units`] a single
    /// request may carry; anything above is shed with a typed
    /// `deadline_exceeded` reply before evaluation starts. `None`
    /// disables shedding.
    pub cost_deadline: Option<u64>,
}

/// How one parsed line will be handled, decided before the engine runs.
enum Disposition {
    /// Valid and within deadline: evaluated by the engine.
    Run(Request),
    /// Valid but over the cost deadline: shed with a typed reply.
    Shed(Request, RequestError),
    /// Never reached the engine: parse/shape/limit failure. Carries
    /// the client id when the line parsed far enough to have one.
    Reject(Json, RequestError),
}

/// Processes a batch of request lines against one engine: parse and
/// validate each line, coalesce every valid query into **one**
/// [`Explorer::try_run_batch`] call (so the memoization cache and
/// Pareto passes are shared), and return one compact reply line per
/// input, in input order. Never panics, whatever the lines contain —
/// even an evaluation that panics is caught and answered with a typed
/// `internal_error` reply for that request alone.
pub fn handle_batch(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
) -> (Vec<String>, BatchOutcome) {
    handle_batch_with(engine, lines, limits, BatchPolicy::default())
}

/// [`handle_batch`] with explicit degradation policy.
pub fn handle_batch_with(
    engine: &Explorer,
    lines: &[&str],
    limits: &QueryLimits,
    policy: BatchPolicy,
) -> (Vec<String>, BatchOutcome) {
    let dispositions: Vec<Disposition> = lines
        .iter()
        .map(|line| match parse_request_with_id(line, limits) {
            Ok(request) => {
                let estimated = request.query.estimated_cost_units();
                match policy.cost_deadline {
                    Some(deadline) if estimated > deadline => {
                        let error = RequestError {
                            kind: ErrorKind::DeadlineExceeded,
                            message: format!(
                                "estimated {estimated} cost units exceeds the {deadline}-unit deadline"
                            ),
                        };
                        Disposition::Shed(request, error)
                    }
                    _ => Disposition::Run(request),
                }
            }
            Err((id, error)) => Disposition::Reject(id, error),
        })
        .collect();
    let queries: Vec<Query> = dispositions
        .iter()
        .filter_map(|d| match d {
            Disposition::Run(request) => Some(request.query.clone()),
            _ => None,
        })
        .collect();
    let answers = engine.try_run_batch(&queries);
    let mut answers = answers.iter();
    let mut outcome = BatchOutcome::default();
    let replies = dispositions
        .iter()
        .map(|disposition| {
            match disposition {
                Disposition::Run(request) => {
                    match answers.next().expect("one result per valid request") {
                        Ok(answer) => {
                            outcome.answered += 1;
                            outcome.cost_units += cost_units(answer);
                            ok_reply(&request.id, answer)
                        }
                        Err(panic) => {
                            outcome.internal_errors += 1;
                            let error = RequestError {
                                kind: ErrorKind::Internal,
                                message: panic.to_string(),
                            };
                            error_reply(&request.id, &error)
                        }
                    }
                }
                Disposition::Shed(request, error) => {
                    outcome.deadline_sheds += 1;
                    error_reply(&request.id, error)
                }
                Disposition::Reject(id, error) => {
                    if error.kind == ErrorKind::InvalidQuery {
                        outcome.query_errors += 1;
                    } else {
                        outcome.protocol_errors += 1;
                    }
                    error_reply(id, error)
                }
            }
            .render()
        })
        .collect();
    (replies, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Explorer {
        Explorer::new(2)
    }

    fn minimal_line() -> String {
        r#"{"id":7,"query":{"ranges":{"wheelbase_mm":{"min":250,"max":450,"steps":3},"cells":["3S"],"capacity_mah":{"min":2000,"max":6000,"steps":5}},"objective":"max_flight_time"}}"#.to_owned()
    }

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = parse_request(&minimal_line(), &QueryLimits::default()).unwrap();
        assert_eq!(req.id, Json::Num(7.0));
        assert_eq!(req.query.name, "query");
        assert_eq!(req.query.ranges.compute_power_w.values(), vec![3.0]);
        assert_eq!(req.query.refine_rounds, 0);
        assert_eq!(req.query.objective, Objective::MaxFlightTime);
    }

    #[test]
    fn request_round_trips_through_the_client_renderer() {
        let query = Query::new(
            "rt",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                cells: vec![CellCount::S3, CellCount::S6],
                capacity_mah: GridRange::new(2000.0, 6000.0, 5),
                compute_power_w: GridRange::fixed(20.0),
                twr: GridRange::fixed(2.0),
                payload_g: GridRange::new(0.0, 200.0, 2),
            },
            Objective::MinWeight,
        )
        .with_constraints(Constraints {
            max_weight_g: Some(2000.0),
            ..Constraints::default()
        })
        .with_refinement(1, 3);
        let line = request_to_json(42, &query).render();
        let parsed = parse_request(&line, &QueryLimits::default()).unwrap();
        assert_eq!(parsed.id, Json::Num(42.0));
        assert_eq!(parsed.query, query);
    }

    #[test]
    fn strictness_rejects_unknown_keys_and_bad_shapes() {
        let limits = QueryLimits::default();
        let cases = [
            ("not json at all", ErrorKind::Parse),
            ("{\"nope\":1}", ErrorKind::BadRequest),
            ("{\"query\":{\"objective\":\"max_flight_time\"}}", ErrorKind::BadRequest),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[3],\"capacity_mah\":1000,\"bogus\":1},\"objective\":\"max_flight_time\"}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[\"9S\"],\"capacity_mah\":1000},\"objective\":\"max_flight_time\"}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"query\":{\"ranges\":{\"wheelbase_mm\":100,\"cells\":[3],\"capacity_mah\":1000},\"objective\":\"fastest\"}}",
                ErrorKind::BadRequest,
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line, &limits).unwrap_err();
            assert_eq!(err.kind, kind, "{line}");
        }
    }

    #[test]
    fn limit_violations_surface_as_invalid_query() {
        let line = r#"{"query":{"ranges":{"wheelbase_mm":{"min":450,"max":250,"steps":3},"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let err = parse_request(line, &QueryLimits::default()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidQuery);
        assert!(err.message.contains("inverted"), "{}", err.message);
    }

    #[test]
    fn handle_batch_replies_in_input_order_and_coalesces() {
        let bad = "garbage";
        let good = minimal_line();
        let lines = [good.as_str(), bad, good.as_str()];
        let (replies, outcome) = handle_batch(&engine(), &lines, &QueryLimits::default());
        assert_eq!(replies.len(), 3);
        let first = Json::parse(&replies[0]).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("id"), Some(&Json::Num(7.0)));
        let second = Json::parse(&replies[1]).unwrap();
        assert_eq!(second.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            second.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("parse".into()))
        );
        assert_eq!(outcome.answered, 2);
        assert_eq!(outcome.protocol_errors, 1);
        assert_eq!(outcome.query_errors, 0);
        assert_eq!(outcome.rejected(), 1);
        assert_eq!(outcome.cost_units, 30, "15 grid points per good request");
        // Identical replies for identical requests.
        assert_eq!(replies[0], replies[2]);
    }

    #[test]
    fn over_deadline_requests_shed_before_evaluation() {
        // The minimal request sweeps a 15-point grid; a 10-unit
        // deadline sheds it, a 15-unit one lets it through.
        let line = minimal_line();
        let policy = BatchPolicy {
            cost_deadline: Some(10),
        };
        let (replies, outcome) =
            handle_batch_with(&engine(), &[line.as_str()], &QueryLimits::default(), policy);
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(7.0)), "shed echoes the id");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert_eq!(outcome.deadline_sheds, 1);
        assert_eq!(outcome.answered, 0);
        assert_eq!(outcome.cost_units, 0, "shed work costs nothing");
        assert_eq!(outcome.rejected(), 1);

        let relaxed = BatchPolicy {
            cost_deadline: Some(15),
        };
        let (replies, outcome) = handle_batch_with(
            &engine(),
            &[line.as_str()],
            &QueryLimits::default(),
            relaxed,
        );
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(outcome.answered, 1);
        assert_eq!(outcome.deadline_sheds, 0);
    }

    #[test]
    fn a_panicking_evaluation_answers_internal_error_for_that_line_only() {
        use drone_explorer::Explorer;
        use std::sync::Arc;

        // Poison exactly the 350 mm wheelbase sample; the minimal
        // request's 3-step 250..450 grid hits it, a pinned 250 mm
        // request does not.
        let engine = Explorer::new(2).with_eval_hook(Arc::new(|q| {
            assert!(
                (q.wheelbase_mm - 350.0).abs() > 1e-9,
                "chaos hook: poisoned wheelbase"
            );
        }));
        let healthy = r#"{"id":1,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let poisoned = minimal_line();
        let lines = [healthy, poisoned.as_str(), healthy];
        let (replies, outcome) = handle_batch(&engine, &lines, &QueryLimits::default());
        assert_eq!(replies.len(), 3);
        for healthy_reply in [&replies[0], &replies[2]] {
            let doc = Json::parse(healthy_reply).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        }
        let doc = Json::parse(&replies[1]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(7.0)), "panic echoes the id");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("internal_error".into()))
        );
        assert_eq!(outcome.answered, 2);
        assert_eq!(outcome.internal_errors, 1);
        assert_eq!(outcome.rejected(), 1);
    }

    #[test]
    fn answers_report_a_sorted_frontier_and_null_best_when_empty() {
        let line = minimal_line();
        let (replies, _) = handle_batch(&engine(), &[line.as_str()], &QueryLimits::default());
        let doc = Json::parse(&replies[0]).unwrap();
        let answer = doc.get("answer").unwrap();
        let frontier = answer.get("frontier").and_then(Json::as_arr).unwrap();
        assert!(!frontier.is_empty());
        let flights: Vec<f64> = frontier
            .iter()
            .map(|m| m.get("flight_min").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(flights.windows(2).all(|w| w[0] >= w[1]), "{flights:?}");

        // An unsatisfiable query answers ok with best: null.
        let none = r#"{"id":1,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"constraints":{"min_flight_time_min":10000},"objective":"max_flight_time"}}"#;
        let (replies, outcome) = handle_batch(&engine(), &[none], &QueryLimits::default());
        let doc = Json::parse(&replies[0]).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("answer").unwrap().get("best"), Some(&Json::Null));
        assert_eq!(outcome.answered, 1);
    }
}
