//! A batched design-space-exploration query server.
//!
//! `drone-serve` puts the [`drone_explorer`] engine behind a TCP
//! socket speaking newline-delimited JSON: one request per line, one
//! reply per request, in order. It is the serving tier the
//! paper's methodology implies but never builds — once the
//! cycle-accurate model is replaced by closed-form sizing, a
//! design-space query is cheap enough to answer interactively, and the
//! interesting systems problems move to admission control, batching
//! and tail latency.
//!
//! The crate is three layers, each usable on its own:
//!
//! - [`protocol`] — pure request/reply code: strict parsing into
//!   validated [`drone_explorer::Query`] values, typed
//!   [`protocol::RequestError`]s for every malformed shape, and
//!   [`protocol::handle_batch`], which coalesces a batch of request
//!   lines into **one** [`drone_explorer::Explorer::run_batch`] call
//!   so pipelined queries share the memoization cache.
//! - [`server`] — the threaded front-end: a single acceptor feeding a
//!   bounded connection queue drained by a worker pool, structured
//!   `overloaded` sheds once the queue fills, and a graceful
//!   [`server::Server::drain`] that joins every thread.
//! - [`workload`] — deterministic seeded client workloads, so the
//!   `repro serve` benchmark replays the same byte stream every run
//!   and its artifact stays byte-stable across thread counts.
//!
//! Nothing in the request path may panic on untrusted input;
//! `tests/properties.rs` feeds arbitrary bytes and adversarial grids
//! through both the pure batch handler and a live socket to keep that
//! true.
//!
//! On top of the request path sits the **introspection plane**: every
//! served request records a causal span tree (deterministic trace ids,
//! client-stamped or server-derived) into a bounded ring, and two
//! additional wire request kinds — `{"id":..,"stats":{}}` and
//! `{"id":..,"trace":{"last":N}}` — let a live client snapshot the
//! metrics registry, queue depth and recent span trees mid-workload.

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod workload;

pub use chaos::{ChaosProxy, Fault, FaultSchedule, ProxyStats};
pub use client::{CallError, CallSuccess, Client, ClientConfig};
pub use protocol::{
    answer_to_json, cost_units, error_reply, handle_batch, handle_batch_traced, handle_batch_with,
    ok_optimize_reply, ok_reply, optimize_answer_to_json, optimize_cost_units,
    optimize_request_to_json, optimize_request_to_json_traced, parse_request, request_to_json,
    request_to_json_traced, stats_request_json, trace_request_json, AdminRequest, BatchOutcome,
    BatchPolicy, BatchTracing, ErrorKind, ReplySlot, Request, RequestBody, RequestError,
    TraceQuery, MAX_TRACE_FETCH,
};
pub use server::{DrainStats, Server, ServerConfig};
pub use workload::Workload;
