//! A batched design-space-exploration query server.
//!
//! `drone-serve` puts the [`drone_explorer`] engine behind a TCP
//! socket speaking newline-delimited JSON: one request per line, one
//! reply per request, in order. It is the serving tier the
//! paper's methodology implies but never builds — once the
//! cycle-accurate model is replaced by closed-form sizing, a
//! design-space query is cheap enough to answer interactively, and the
//! interesting systems problems move to admission control, batching
//! and tail latency.
//!
//! The crate is layered, each layer usable on its own:
//!
//! - [`protocol`] — pure request/reply code: strict parsing into
//!   validated [`drone_explorer::Query`] values, typed
//!   [`protocol::RequestError`]s for every malformed shape, and
//!   [`protocol::handle_batch`], which coalesces a batch of request
//!   lines into **one** [`drone_explorer::Explorer::run_batch`] call
//!   so pipelined queries share the memoization cache.
//! - [`framer`] — incremental newline framing shared by both
//!   front-ends: linear-time watermark scanning, one copy per line,
//!   `too_large` resynchronization, and the `has_partial` ground
//!   truth the progress deadlines are armed on.
//! - [`server`] — the threaded front-end: a single acceptor feeding a
//!   bounded connection queue drained by a worker pool, structured
//!   `overloaded` sheds once the queue fills, and a graceful
//!   [`server::Server::drain`] that joins every thread.
//! - [`reactor`] — the epoll front-end: per-core reactor threads over
//!   raw readiness syscalls (no libc, no runtime crate), each owning
//!   a slab of nonblocking connections, with no idle busy-polling —
//!   an idle server makes zero `epoll_wait` returns. Same framer,
//!   same batch core, same `serve.*` metrics as [`server`].
//! - [`router`] — process-level sharding: the memo cache's
//!   quantized-FNV scheme lifted to N engine shards behind a thin
//!   scatter/gather front whose input-ordered merge makes replies
//!   byte-identical at every shard count (DESIGN §14).
//! - [`workload`] — deterministic seeded client workloads, so the
//!   `repro serve` / `repro serve_scale` benchmarks replay the same
//!   byte stream every run and their artifacts stay byte-stable
//!   across thread counts.
//!
//! Nothing in the request path may panic on untrusted input;
//! `tests/properties.rs` feeds arbitrary bytes and adversarial grids
//! through both the pure batch handler and a live socket to keep that
//! true.
//!
//! On top of the request path sits the **introspection plane**: every
//! served request records a causal span tree (deterministic trace ids,
//! client-stamped or server-derived) into a bounded ring, and two
//! additional wire request kinds — `{"id":..,"stats":{}}` and
//! `{"id":..,"trace":{"last":N}}` — let a live client snapshot the
//! metrics registry, queue depth and recent span trees mid-workload.

pub mod chaos;
pub mod client;
pub mod framer;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;
pub(crate) mod sys;
pub mod workload;

pub use chaos::{ChaosProxy, Fault, FaultSchedule, ProxyStats};
pub use client::{CallError, CallSuccess, Client, ClientConfig};
pub use framer::{FrameEvent, LineFramer};
pub use protocol::{
    answer_to_json, cost_units, error_reply, handle_batch, handle_batch_traced, handle_batch_with,
    ok_optimize_reply, ok_reply, optimize_answer_to_json, optimize_cost_units,
    optimize_request_to_json, optimize_request_to_json_traced, parse_request, request_to_json,
    request_to_json_traced, stats_request_json, trace_request_json, AdminRequest, BatchOutcome,
    BatchPolicy, BatchTracing, ErrorKind, ReplySlot, Request, RequestBody, RequestError,
    TraceQuery, MAX_TRACE_FETCH,
};
pub use reactor::{EngineService, LineHandler, ReactorConfig, ReactorServer};
pub use router::{Router, RouterConfig, RouterStats};
pub use server::{DrainStats, Server, ServerConfig};
pub use workload::Workload;
