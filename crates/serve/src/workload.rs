//! Deterministic client workloads for benchmarking the server.
//!
//! Every request a benchmark client sends comes from here, derived
//! from a seed and the client's index — so the `repro serve`
//! experiment and `examples/dse_client.rs` replay byte-identical
//! request streams run after run, and the benchmark artifact can be
//! byte-stable across thread counts.

use crate::protocol::request_to_json_traced;
use drone_components::battery::CellCount;
use drone_explorer::{Constraints, GridRange, Objective, Query, QueryRanges};
use drone_math::rng::Pcg32;
use drone_telemetry::derive_trace_id;

/// A deterministic stream of valid, modestly sized queries.
///
/// Grids stay small (≤ ~60 points, at most one refinement round) so a
/// benchmark exercises batching and queueing rather than a single
/// giant sweep. Queries repeat across clients often enough that the
/// shared memoization cache sees real hits.
pub struct Workload {
    rng: Pcg32,
    seed: u64,
    client: u64,
    sent: u64,
}

impl Workload {
    /// The workload for one client. Different clients get different
    /// (but fixed) streams; the same `(seed, client)` always replays
    /// the same requests.
    pub fn new(seed: u64, client: u64) -> Workload {
        Workload {
            rng: Pcg32::new(seed, client.wrapping_mul(2).wrapping_add(1)),
            seed,
            client,
            sent: 0,
        }
    }

    /// The causal trace id this workload stamps on request `id` —
    /// [`derive_trace_id`] over the workload seed, so artifacts can
    /// re-derive it without parsing request lines.
    pub fn trace_id_for(&self, id: u64) -> u64 {
        derive_trace_id(self.seed, id)
    }

    /// The next query in this client's stream.
    pub fn next_query(&mut self) -> Query {
        let rng = &mut self.rng;
        // Draw from a small palette of grid shapes so distinct clients
        // collide on cache granules.
        let wheelbase_lo = 150.0 + 50.0 * f64::from(rng.below(4));
        let capacity_lo = 1500.0 + 500.0 * f64::from(rng.below(4));
        let cells = match rng.below(3) {
            0 => vec![CellCount::S3],
            1 => vec![CellCount::S4],
            _ => vec![CellCount::S3, CellCount::S6],
        };
        let objective = match rng.below(3) {
            0 => Objective::MaxFlightTime,
            1 => Objective::MinWeight,
            _ => Objective::MinComputeShare,
        };
        let constraints = if rng.chance(0.5) {
            Constraints {
                max_weight_g: Some(900.0 + 300.0 * f64::from(rng.below(4))),
                ..Constraints::default()
            }
        } else {
            Constraints::default()
        };
        let refine = usize::from(rng.chance(0.25));
        let name = format!("c{}q{}", self.client, self.sent);
        self.sent += 1;
        Query::new(
            &name,
            QueryRanges {
                wheelbase_mm: GridRange::new(wheelbase_lo, wheelbase_lo + 200.0, 3),
                cells,
                capacity_mah: GridRange::new(capacity_lo, capacity_lo + 2000.0, 5),
                compute_power_w: GridRange::new(2.0, 10.0, 2),
                twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
                payload_g: GridRange::fixed(0.0),
            },
            objective,
        )
        .with_constraints(constraints)
        .with_refinement(refine, 3)
    }

    /// The next request, rendered as a wire line (newline included)
    /// with a stamped causal `trace_id`. Request ids are globally
    /// unique across clients: `client * 10^6 + sequence`.
    pub fn next_request_line(&mut self) -> String {
        let id = self.client * 1_000_000 + self.sent;
        let query = self.next_query();
        let mut line = request_to_json_traced(id, self.trace_id_for(id), &query).render();
        line.push('\n');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use drone_explorer::QueryLimits;

    #[test]
    fn workloads_replay_identically_for_the_same_seed() {
        let mut a = Workload::new(7, 2);
        let mut b = Workload::new(7, 2);
        for _ in 0..20 {
            assert_eq!(a.next_request_line(), b.next_request_line());
        }
        let mut other_client = Workload::new(7, 3);
        assert_ne!(
            Workload::new(7, 2).next_request_line(),
            other_client.next_request_line()
        );
    }

    #[test]
    fn every_generated_request_validates_and_round_trips() {
        let limits = QueryLimits::default();
        let mut workload = Workload::new(42, 0);
        for _ in 0..50 {
            let query = workload.next_query();
            query.validate(&limits).expect("workload query in limits");
            assert!(query.ranges.point_count() <= 60);
            let line = request_to_json_traced(1, workload.trace_id_for(1), &query).render();
            let parsed = parse_request(&line, &limits).expect("round trip");
            assert_eq!(parsed.query(), Some(&query));
            assert_eq!(parsed.trace_id, Some(workload.trace_id_for(1)));
        }
    }
}
