//! Sharded scatter/gather serving: the memo cache's FNV shard scheme
//! lifted to process level.
//!
//! A [`Router`] runs N engine-backed [`ReactorServer`] shards, each
//! answering only its quantized-coordinate partition of any query's
//! grid (see [`drone_explorer::shard_of`]), plus one thin front
//! reactor speaking the ordinary wire protocol. A client query is
//! **scattered** — one sub-query per shard, `shard: {index, count}`
//! set, refinement stripped — and the per-shard answers are
//! **gather-merged** back into a single reply.
//!
//! The merge is deliberately order-pinned so the reply is
//! byte-deterministic in the shard count:
//!
//! * shard replies are read in shard-index order, and the first error
//!   (in that order) is the one propagated — after the whole round is
//!   drained, so a pooled connection never carries an unread reply
//!   into the next query that checks the set out;
//! * `evaluated`/`feasible`/`infeasible` are *sums* over shards, and
//!   the shard grids partition the full grid exactly, so the sums are
//!   shard-count invariant;
//! * frontier members are deduplicated by quantized design coordinates
//!   and re-reduced with [`drone_explorer::extract_frontier`] — the
//!   union of per-shard frontiers always contains the global frontier,
//!   and dominance is transitive, so the reduced set equals the
//!   single-shard frontier whatever N was;
//! * the final rendering sorts members by (flight time desc, weight
//!   asc), exactly like `answer_to_json`, so the reply bytes match the
//!   order a single engine would emit;
//! * the incumbent for refinement re-centring is the best of the shard
//!   bests, ties broken by canonical grid order (cells position in the
//!   query's cell list, then each axis ascending). An exact f64
//!   objective tie between *different* designs is the one case where
//!   the router's incumbent may differ from a single engine's
//!   first-seen tie-break; coordinates, not floats, decide here so the
//!   choice is shard-count independent.
//!
//! Refinement rounds are driven *by the router*: each round scatters
//! the current ranges, gathers, picks the incumbent, and re-centres
//! via `QueryRanges::refined_around` — the same recurrence the engine
//! runs internally. Because every round is a fresh request to the
//! shards, cross-round duplicate points are re-evaluated server-side
//! (the engine's per-request `seen` dedup cannot span rounds), so the
//! router's `evaluated` may exceed a single engine's for the same
//! query; it is still exactly shard-count invariant, which is the
//! property the benchmark artifact pins.

use crate::protocol::{self, ErrorKind, Request, RequestBody, RequestError};
use crate::reactor::{LineHandler, ReactorConfig, ReactorServer};
use crate::server::DrainStats;
use drone_dse::eval::{DesignQuery, OBJECTIVE_SENSES};
use drone_explorer::{
    extract_frontier, CacheKey, Explorer, Objective, Query, QueryLimits, ShardSpec,
};
use drone_math::Sense;
use drone_telemetry::{Counter, Json, Registry};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Read timeout on pooled shard streams: a wedged shard must not pin
/// the front reactor thread (and every connection it owns) forever.
/// The timeout surfaces as an IO error, which retires the set.
const SHARD_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Engine shards behind the front (≥ 1).
    pub shards: usize,
    /// Reactor settings applied to the front and to every shard.
    pub reactor: ReactorConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: 2,
            reactor: ReactorConfig::default(),
        }
    }
}

/// What a completed router drain looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Threads joined across the front *and* every shard.
    pub threads_joined: usize,
    /// The shard-only portion of [`RouterStats::threads_joined`].
    pub shard_threads_joined: usize,
    /// Connections closed unserved during the drain. The router's own
    /// pooled shard connections land here (they are open by design
    /// when the shards drain), so this is bookkeeping, not an error
    /// signal — and it stays out of deterministic benchmark artifacts.
    pub abandoned_connections: usize,
    /// True when every thread joined without panicking.
    pub clean: bool,
}

/// A running scatter/gather deployment: N engine shards plus the
/// routing front.
pub struct Router {
    front: Option<ReactorServer>,
    shards: Vec<ReactorServer>,
    pool: Arc<ShardPool>,
}

impl Router {
    /// Starts `config.shards` engine shards (one fresh engine from
    /// `make_engine` each, so caches stay shard-local like the design
    /// intends) and the routing front. All tiers register their
    /// metrics in `registry` — the `serve.*` family aggregates across
    /// shards, the `router.*` family counts front-door traffic.
    ///
    /// # Errors
    ///
    /// Fails if any listener cannot bind, or on targets without the
    /// epoll shims (see [`crate::sys`]).
    pub fn start(
        mut make_engine: impl FnMut() -> Explorer,
        config: RouterConfig,
        registry: &Registry,
    ) -> std::io::Result<Router> {
        let shard_count = config.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(ReactorServer::start(
                make_engine(),
                config.reactor,
                registry,
            )?);
        }
        let pool = Arc::new(ShardPool {
            addrs: shards.iter().map(ReactorServer::addr).collect(),
            idle: Mutex::new(Vec::new()),
        });
        let service = RouterService {
            limits: config.reactor.limits,
            pool: Arc::clone(&pool),
            requests: registry.counter("router.requests"),
            errors: registry.counter("router.errors"),
            protocol_errors: registry.counter("router.errors.protocol"),
            idle_timeouts: registry.counter("router.idle_timeouts"),
            sheds: registry.counter("router.sheds"),
        };
        let front = ReactorServer::start_with_handler(
            Arc::new(service),
            config.reactor,
            Arc::new(AtomicUsize::new(0)),
        )?;
        Ok(Router {
            front: Some(front),
            shards,
            pool,
        })
    }

    /// The front-door address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.front.as_ref().expect("front runs until drain").addr()
    }

    /// Drains the front first (no new scatters), drops the pooled
    /// shard connections, then drains every shard; joins every thread.
    pub fn drain(mut self) -> RouterStats {
        let front = self
            .front
            .take()
            .map(ReactorServer::drain)
            .unwrap_or(DrainStats {
                threads_joined: 0,
                abandoned_connections: 0,
                clean: true,
            });
        self.pool.clear();
        let mut shard_joined = 0usize;
        let mut abandoned = front.abandoned_connections;
        let mut clean = front.clean;
        for shard in self.shards.drain(..) {
            let stats = shard.drain();
            shard_joined += stats.threads_joined;
            abandoned += stats.abandoned_connections;
            clean &= stats.clean;
        }
        RouterStats {
            threads_joined: front.threads_joined + shard_joined,
            shard_threads_joined: shard_joined,
            abandoned_connections: abandoned,
            clean,
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.front.is_some() || !self.shards.is_empty() {
            let router = Router {
                front: self.front.take(),
                shards: std::mem::take(&mut self.shards),
                pool: Arc::clone(&self.pool),
            };
            router.drain();
        }
    }
}

/// Persistent router→shard connections, checked out as full sets (one
/// stream per shard) so a query's scatter and gather run on a
/// consistent snapshot.
struct ShardPool {
    addrs: Vec<SocketAddr>,
    idle: Mutex<Vec<Vec<BufReader<TcpStream>>>>,
}

impl ShardPool {
    fn checkout(&self) -> std::io::Result<Vec<BufReader<TcpStream>>> {
        if let Some(set) = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
        {
            return Ok(set);
        }
        self.addrs
            .iter()
            .map(|addr| {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(SHARD_READ_TIMEOUT))?;
                Ok(BufReader::new(stream))
            })
            .collect()
    }

    /// Returns a healthy set; a set that saw an IO error is dropped by
    /// the caller instead (the shard side just sees EOF).
    fn checkin(&self, set: Vec<BufReader<TcpStream>>) {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(set);
    }

    fn clear(&self) {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// The front-door [`LineHandler`]: parse, scatter, gather, merge.
struct RouterService {
    limits: QueryLimits,
    pool: Arc<ShardPool>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    idle_timeouts: Arc<Counter>,
    sheds: Arc<Counter>,
}

impl LineHandler for RouterService {
    fn handle_lines(&self, lines: &[String], out: &mut String) {
        for line in lines {
            self.requests.inc();
            let reply = self.answer_line(line);
            if reply.get("ok") != Some(&Json::Bool(true)) {
                self.errors.inc();
            }
            out.push_str(&reply.render());
            out.push('\n');
        }
    }

    fn refusal(&self, kind: ErrorKind, message: &str) -> String {
        match kind {
            ErrorKind::DeadlineExceeded => self.idle_timeouts.inc(),
            _ => self.protocol_errors.inc(),
        }
        protocol::error_reply(
            &Json::Null,
            &RequestError {
                kind,
                message: message.into(),
            },
        )
        .render()
    }

    fn overloaded(&self) -> String {
        self.sheds.inc();
        protocol::error_reply(
            &Json::Null,
            &RequestError {
                kind: ErrorKind::Overloaded,
                message: "queue full; retry later".into(),
            },
        )
        .render()
    }
}

impl RouterService {
    fn answer_line(&self, line: &str) -> Json {
        let (id, query) = match protocol::parse_request_with_id(line, &self.limits) {
            Ok(Request {
                id,
                body: RequestBody::Query(query),
                ..
            }) => (id, query),
            Ok(Request { id, .. }) => {
                return protocol::error_reply(
                    &id,
                    &RequestError {
                        kind: ErrorKind::BadRequest,
                        message: "router serves query requests only".into(),
                    },
                )
            }
            Err((id, error)) => return protocol::error_reply(&id, &error),
        };
        let mut conns = match self.pool.checkout() {
            Ok(conns) => conns,
            Err(_) => return internal_reply(&id, "no shard connection available"),
        };
        match scatter_gather(&query, &mut conns) {
            Ok(answer) => {
                self.pool.checkin(conns);
                Json::obj()
                    .with("id", id)
                    .with("ok", true)
                    .with("answer", answer)
            }
            Err(GatherError::Shard(error)) => {
                // The failing round was drained in full before the
                // error propagated, so the set holds no unread replies
                // and is safe to reuse.
                self.pool.checkin(conns);
                protocol::error_reply(&id, &error)
            }
            // The connection set is poisoned mid-conversation: drop it
            // (the pool reconnects lazily) and fail this request only.
            Err(GatherError::Io) => internal_reply(&id, "shard connection failed"),
        }
    }
}

fn internal_reply(id: &Json, message: &str) -> Json {
    protocol::error_reply(
        id,
        &RequestError {
            kind: ErrorKind::Internal,
            message: message.into(),
        },
    )
}

enum GatherError {
    /// A shard answered with a structured error; propagate the first
    /// one in shard order.
    Shard(RequestError),
    /// The wire itself failed (or spoke garbage); the caller must
    /// retire the connection set. The client sees a stable
    /// `internal_error` message either way, so no detail is carried.
    Io,
}

impl From<std::io::Error> for GatherError {
    fn from(_: std::io::Error) -> GatherError {
        GatherError::Io
    }
}

/// One merged frontier/best candidate: the shard's wire rendering kept
/// verbatim (so the merged reply re-emits identical bytes) plus the
/// parsed fields the merge itself needs.
struct Member {
    doc: Json,
    point: DesignQuery,
    flight: f64,
    weight: f64,
    share: f64,
}

impl Member {
    fn objective_value(&self, objective: Objective) -> f64 {
        match objective {
            Objective::MaxFlightTime => self.flight,
            Objective::MinWeight => self.weight,
            Objective::MinComputeShare => self.share,
        }
    }

    /// Canonical grid-order key: cells position in the query's cell
    /// list, then each axis ascending — the order `QueryRanges::grid`
    /// emits points in, which is how the engine breaks objective ties
    /// ("earliest evaluation wins").
    fn grid_key(&self, query: &Query) -> (usize, [f64; 5]) {
        let cells_pos = query
            .ranges
            .cells
            .iter()
            .position(|&c| c == self.point.cells)
            .unwrap_or(usize::MAX);
        (
            cells_pos,
            [
                self.point.wheelbase_mm,
                self.point.capacity_mah,
                self.point.compute_power_w,
                self.point.twr,
                self.point.payload_g,
            ],
        )
    }
}

fn grid_key_lt(a: &(usize, [f64; 5]), b: &(usize, [f64; 5])) -> bool {
    if a.0 != b.0 {
        return a.0 < b.0;
    }
    for (x, y) in a.1.iter().zip(b.1.iter()) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

/// Drives one client query through every round of scatter/gather and
/// returns the merged `answer` object.
fn scatter_gather(query: &Query, conns: &mut [BufReader<TcpStream>]) -> Result<Json, GatherError> {
    let count = conns.len() as u32;
    let mut ranges = query.ranges.clone();
    let mut evaluated = 0usize;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    let mut rounds = 0usize;
    let mut seen: HashSet<CacheKey> = HashSet::new();
    let mut members: Vec<Member> = Vec::new();
    let mut best: Option<Member> = None;
    for round in 0..=query.refine_rounds {
        if round > 0 {
            // Refinement needs an incumbent to centre on — the same
            // early-out the engine takes, so `rounds` agrees.
            let Some(incumbent) = &best else { break };
            ranges = query
                .ranges
                .refined_around(&incumbent.point, query.refine_steps);
        }
        // Scatter: the same region to every shard, each restricted to
        // its partition, refinement stripped (the router drives it).
        for (index, conn) in conns.iter_mut().enumerate() {
            let sub = Query {
                name: query.name.clone(),
                ranges: ranges.clone(),
                constraints: query.constraints,
                objective: query.objective,
                refine_rounds: 0,
                refine_steps: 0,
                shard: Some(ShardSpec {
                    index: index as u32,
                    count,
                }),
            };
            let line = protocol::request_to_json(index as u64, &sub).render();
            let stream = conn.get_mut();
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        // Gather in shard-index order: replies stay attributable and
        // the merge order (hence the reply bytes) is deterministic.
        // Every scattered sub-query gets its reply read *even after a
        // shard-level error* — returning early would strand unread
        // replies on the pooled connections, to be misread as answers
        // to whichever query checks the set out next.
        let mut round_error: Option<RequestError> = None;
        for (index, conn) in conns.iter_mut().enumerate() {
            let mut line = String::new();
            if conn.read_line(&mut line)? == 0 {
                return Err(GatherError::Io);
            }
            let doc = Json::parse(line.trim_end()).map_err(|_| GatherError::Io)?;
            // The scattered id was the shard index; anything else means
            // the stream is desynchronized and the set must be retired.
            if doc.get("id") != Some(&Json::Num(index as f64)) {
                return Err(GatherError::Io);
            }
            if doc.get("ok") != Some(&Json::Bool(true)) {
                if round_error.is_none() {
                    round_error = Some(shard_error(&doc));
                }
                continue;
            }
            if round_error.is_some() {
                continue; // drain-only: the round already failed
            }
            let answer = doc
                .get("answer")
                .ok_or_else(|| bad_shard_reply("missing answer"))?;
            evaluated += count_field(answer, "evaluated")?;
            feasible += count_field(answer, "feasible")?;
            infeasible += count_field(answer, "infeasible")?;
            for member_doc in answer
                .get("frontier")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad_shard_reply("missing frontier"))?
            {
                let member = member_from_json(member_doc)?;
                if seen.insert(CacheKey::quantize(&member.point)) {
                    members.push(member);
                }
            }
            match answer.get("best") {
                Some(Json::Null) | None => {}
                Some(best_doc) => {
                    let candidate = member_from_json(best_doc)?;
                    best = Some(match best.take() {
                        None => candidate,
                        Some(current) => pick_best(current, candidate, query),
                    });
                }
            }
        }
        if let Some(error) = round_error {
            return Err(GatherError::Shard(error));
        }
        rounds += 1;
    }
    // Re-reduce the union of shard frontiers: dominance is transitive,
    // so this equals the frontier a single shard would have produced.
    let vectors: Vec<[f64; 3]> = members
        .iter()
        .map(|m| [m.flight, m.weight, m.share])
        .collect();
    let keep = extract_frontier(&vectors, &OBJECTIVE_SENSES);
    let mut frontier: Vec<&Member> = keep.iter().map(|&i| &members[i]).collect();
    frontier.sort_by(|a, b| {
        b.flight
            .total_cmp(&a.flight)
            .then(a.weight.total_cmp(&b.weight))
    });
    let mut frontier_json = Json::arr();
    for member in &frontier {
        frontier_json.push(member.doc.clone());
    }
    Ok(Json::obj()
        .with("name", query.name.as_str())
        .with("evaluated", evaluated)
        .with("feasible", feasible)
        .with("infeasible", infeasible)
        .with("rounds", rounds)
        .with("cost_units", evaluated)
        .with("best", best.as_ref().map_or(Json::Null, |m| m.doc.clone()))
        .with("frontier", frontier_json))
}

/// The better of two incumbents under the query objective, exact ties
/// broken by canonical grid order (see the module docs).
fn pick_best(current: Member, candidate: Member, query: &Query) -> Member {
    let (cur, cand) = (
        current.objective_value(query.objective),
        candidate.objective_value(query.objective),
    );
    let candidate_wins = match query.objective.sense() {
        _ if cur == cand => grid_key_lt(&candidate.grid_key(query), &current.grid_key(query)),
        Sense::Maximize => cand > cur,
        Sense::Minimize => cand < cur,
    };
    if candidate_wins {
        candidate
    } else {
        current
    }
}

fn shard_error(doc: &Json) -> RequestError {
    let error = doc.get("error");
    let kind = error
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .and_then(ErrorKind::from_wire)
        .unwrap_or(ErrorKind::Internal);
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("shard error")
        .to_owned();
    RequestError { kind, message }
}

fn bad_shard_reply(_what: &str) -> GatherError {
    GatherError::Io
}

fn count_field(answer: &Json, key: &str) -> Result<usize, GatherError> {
    answer
        .get(key)
        .and_then(Json::as_f64)
        .map(|n| n as usize)
        .ok_or_else(|| bad_shard_reply(key))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, GatherError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad_shard_reply(key))
}

/// Parses one wire frontier/best member back into coordinates, keeping
/// the original object for byte-exact re-rendering.
fn member_from_json(doc: &Json) -> Result<Member, GatherError> {
    let cells_doc = doc
        .get("cells")
        .ok_or_else(|| bad_shard_reply("member cells"))?;
    let cells =
        protocol::cell(cells_doc).map_err(|e| bad_shard_reply(&format!("member cells: {e}")))?;
    let point = DesignQuery {
        wheelbase_mm: num_field(doc, "wheelbase_mm")?,
        cells,
        capacity_mah: num_field(doc, "capacity_mah")?,
        compute_power_w: num_field(doc, "compute_w")?,
        twr: num_field(doc, "twr")?,
        payload_g: num_field(doc, "payload_g")?,
    };
    Ok(Member {
        point,
        flight: num_field(doc, "flight_min")?,
        weight: num_field(doc, "weight_g")?,
        share: num_field(doc, "compute_share_hover")?,
        doc: doc.clone(),
    })
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[cfg(test)]
mod tests {
    use super::*;
    use drone_explorer::{GridRange, QueryRanges};

    fn ranges() -> QueryRanges {
        QueryRanges {
            wheelbase_mm: GridRange::new(250.0, 450.0, 3),
            cells: vec![
                drone_components::battery::CellCount::S3,
                drone_components::battery::CellCount::S6,
            ],
            capacity_mah: GridRange::new(2000.0, 6000.0, 5),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        }
    }

    fn ask(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        reply.trim_end().to_owned()
    }

    fn router(shards: usize) -> (Router, Registry) {
        let registry = Registry::with_wall_clock();
        let config = RouterConfig {
            shards,
            ..RouterConfig::default()
        };
        let router = Router::start(|| Explorer::new(2), config, &registry).expect("start router");
        (router, registry)
    }

    #[test]
    fn single_shard_router_matches_the_direct_engine_byte_for_byte() {
        // refine_rounds = 0 so the engine's cross-round `seen` dedup
        // cannot kick in — with it, feasible counts legitimately differ
        // between the router's round-per-request recurrence and one
        // engine run (see the module docs); the grid sweep itself must
        // be byte-identical.
        let mut query = Query::new("parity", ranges(), Objective::MaxFlightTime);
        query.refine_rounds = 0;
        let line = protocol::request_to_json(7, &query).render();

        let direct = {
            let answer = Explorer::new(2).run(&query);
            protocol::ok_reply(&Json::Num(7.0), &answer).render()
        };
        let (router, _registry) = router(1);
        let via_router = ask(router.addr(), &line);
        assert_eq!(via_router, direct);
        let stats = router.drain();
        assert!(stats.clean);
    }

    #[test]
    fn shard_count_does_not_change_the_reply_bytes() {
        let mut query = Query::new("invariant", ranges(), Objective::MinWeight);
        query.refine_rounds = 1;
        query.refine_steps = 3;
        let line = protocol::request_to_json(3, &query).render();
        let replies: Vec<String> = [1usize, 3]
            .iter()
            .map(|&n| {
                let (router, _registry) = router(n);
                let reply = ask(router.addr(), &line);
                router.drain();
                reply
            })
            .collect();
        assert_eq!(replies[0], replies[1]);
        assert!(replies[0].contains("\"ok\":true"));
    }

    #[test]
    fn non_query_requests_are_refused_with_bad_request() {
        let (router, registry) = router(1);
        let reply = ask(router.addr(), r#"{"id":4,"stats":{}}"#);
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(4.0)));
        assert_eq!(
            doc.get("error").unwrap().get("kind"),
            Some(&Json::Str("bad_request".into()))
        );
        assert_eq!(registry.counter("router.errors").get(), 1);
        router.drain();
    }

    #[test]
    fn a_shard_error_leaves_the_pooled_connections_reusable() {
        let registry = Registry::with_wall_clock();
        let config = RouterConfig {
            shards: 2,
            reactor: ReactorConfig {
                cost_deadline: Some(10),
                ..ReactorConfig::default()
            },
        };
        let router = Router::start(|| Explorer::new(2), config, &registry).expect("start router");
        // 30-point sweep: over the 10-unit cost deadline, so every
        // shard sheds with a structured error. Before the round was
        // drained, shard 1's reply stayed buffered on the pooled set.
        let mut big = Query::new("big", ranges(), Objective::MaxFlightTime);
        big.refine_rounds = 0;
        let reply = ask(router.addr(), &protocol::request_to_json(1, &big).render());
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(1.0)));
        assert_eq!(
            doc.get("error").unwrap().get("kind"),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        // A small query reusing the same connection set must get *its*
        // answer, not a stale buffered reply from the shed round.
        let mut small_ranges = ranges();
        small_ranges.wheelbase_mm = GridRange::fixed(300.0);
        small_ranges.capacity_mah = GridRange::fixed(4000.0);
        let mut small = Query::new("small", small_ranges, Objective::MaxFlightTime);
        small.refine_rounds = 0;
        let reply = ask(
            router.addr(),
            &protocol::request_to_json(2, &small).render(),
        );
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{reply}");
        assert_eq!(doc.get("id"), Some(&Json::Num(2.0)));
        assert!(router.drain().clean);
    }

    #[test]
    fn shard_errors_propagate_with_the_client_id() {
        let (router, _registry) = router(2);
        // An invalid query dies at the router's own parse (same limits
        // as the shards), still echoing the id.
        let reply = ask(
            router.addr(),
            r#"{"id":9,"query":{"ranges":{"wheelbase_mm":{"min":450,"max":250,"steps":3},"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#,
        );
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("id"), Some(&Json::Num(9.0)));
        assert_eq!(
            doc.get("error").unwrap().get("kind"),
            Some(&Json::Str("invalid_query".into()))
        );
        let stats = router.drain();
        assert!(stats.clean);
        assert_eq!(
            stats.threads_joined,
            stats.shard_threads_joined + RouterConfig::default().reactor.reactors + 1
        );
    }
}
