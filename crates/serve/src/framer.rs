//! Newline framing shared by the threaded and reactor front-ends.
//!
//! [`LineFramer`] turns an arbitrary chunk stream into complete request
//! lines with three properties the connection loops used to get wrong
//! or pay too much for:
//!
//! * **Linear-time scanning.** A scanned-offset watermark remembers
//!   that the buffered tail holds no newline, so each byte is examined
//!   exactly once however the sender splits its chunks. (The previous
//!   implementation re-ran `rposition` over the whole buffer per 4 KiB
//!   chunk — O(n²) on a large single-line upload.)
//! * **One copy per line.** Each complete line is decoded straight out
//!   of the buffer (`from_utf8_lossy`, so invalid UTF-8 stays on the
//!   structured-error path), instead of draining the batch into a
//!   scratch `Vec<u8>` and copying again into a `String`.
//! * **Resynchronization.** A line that exceeds the byte cap without
//!   terminating yields one [`FrameEvent::TooLarge`]; the framer then
//!   discards bytes until the next newline and picks the conversation
//!   back up. A long line that *does* complete within already-buffered
//!   data still parses — the cap is on unterminated accumulation.
//!
//! The framer also carries the slow-loris defense's ground truth:
//! [`LineFramer::has_partial`] is true exactly when the peer owes us a
//! newline, which is the condition under which a progress deadline may
//! be armed. Raw byte arrival is deliberately *not* progress.

/// One framing outcome, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, non-blank request line (CR stripped, lossily
    /// decoded).
    Line(String),
    /// An unterminated line outgrew the byte cap; the framer is now
    /// discarding until the next newline.
    TooLarge,
}

/// Incremental newline framer with a scanned-offset watermark.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes `buf[..scanned]` are known newline-free; a push only
    /// examines what it appends.
    scanned: usize,
    /// Discarding until the next newline after a `TooLarge`.
    resyncing: bool,
    max_line_bytes: usize,
    /// Total bytes examined by the newline scan — the linearity
    /// regression test pins this to the bytes pushed.
    bytes_scanned: u64,
}

impl LineFramer {
    /// A framer refusing unterminated lines over `max_line_bytes`.
    pub fn new(max_line_bytes: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            scanned: 0,
            resyncing: false,
            max_line_bytes,
            bytes_scanned: 0,
        }
    }

    /// Feeds one received chunk, appending the resulting events (if
    /// any) in input order.
    pub fn push(&mut self, mut data: &[u8], events: &mut Vec<FrameEvent>) {
        if self.resyncing {
            match data.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    self.bytes_scanned += (newline + 1) as u64;
                    data = &data[newline + 1..];
                    self.resyncing = false;
                }
                None => {
                    self.bytes_scanned += data.len() as u64;
                    return;
                }
            }
        }
        self.buf.extend_from_slice(data);
        let mut start = 0usize;
        let mut scan_from = self.scanned;
        while let Some(offset) = self.buf[scan_from..].iter().position(|&b| b == b'\n') {
            let newline = scan_from + offset;
            self.bytes_scanned += (newline + 1 - scan_from) as u64;
            self.emit(start, newline, events);
            start = newline + 1;
            scan_from = start;
        }
        self.bytes_scanned += (self.buf.len() - scan_from) as u64;
        if start > 0 {
            self.buf.drain(..start);
        }
        self.scanned = self.buf.len();
        if self.buf.len() > self.max_line_bytes {
            events.push(FrameEvent::TooLarge);
            self.buf.clear();
            self.scanned = 0;
            self.resyncing = true;
        }
    }

    /// EOF: a trailing unterminated line (within the cap, not being
    /// discarded) still gets served.
    pub fn finish(&mut self, events: &mut Vec<FrameEvent>) {
        if !self.resyncing && !self.buf.is_empty() {
            self.emit(0, self.buf.len(), events);
            self.buf.clear();
            self.scanned = 0;
        }
    }

    /// True while the peer owes us a newline: bytes are buffered or the
    /// framer is discarding an oversized line. This is the progress
    /// deadline's arming condition.
    pub fn has_partial(&self) -> bool {
        self.resyncing || !self.buf.is_empty()
    }

    /// Total bytes the newline scan has examined (each byte exactly
    /// once — see the module docs).
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned
    }

    fn emit(&self, start: usize, end: usize, events: &mut Vec<FrameEvent>) {
        let mut line = &self.buf[start..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        // Lossy decoding keeps invalid UTF-8 on the structured-error
        // path (the parser rejects it) instead of killing the
        // connection; blank lines are keep-alive noise, not requests.
        let text = String::from_utf8_lossy(line);
        if !text.trim().is_empty() {
            events.push(FrameEvent::Line(text.into_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer, data: &[u8]) -> Vec<FrameEvent> {
        let mut events = Vec::new();
        framer.push(data, &mut events);
        events
    }

    #[test]
    fn splits_lines_across_arbitrary_chunks() {
        let mut framer = LineFramer::new(1024);
        let mut events = Vec::new();
        for chunk in [&b"hel"[..], b"lo\nwor", b"ld\r\n", b"tail"] {
            framer.push(chunk, &mut events);
        }
        framer.finish(&mut events);
        assert_eq!(
            events,
            vec![
                FrameEvent::Line("hello".into()),
                FrameEvent::Line("world".into()),
                FrameEvent::Line("tail".into()),
            ]
        );
        assert!(!framer.has_partial());
    }

    #[test]
    fn blank_lines_are_dropped_and_crlf_stripped() {
        let mut framer = LineFramer::new(1024);
        let events = lines(&mut framer, b"\n  \r\n\na\n");
        assert_eq!(events, vec![FrameEvent::Line("a".into())]);
    }

    #[test]
    fn oversized_unterminated_lines_refuse_then_resync() {
        let mut framer = LineFramer::new(8);
        let mut events = Vec::new();
        framer.push(b"0123456789abcdef", &mut events);
        assert_eq!(events, vec![FrameEvent::TooLarge]);
        assert!(framer.has_partial(), "resync counts as owing a newline");
        events.clear();
        // Still discarding mid-chunk, then the newline ends the junk
        // and the rest of the same chunk parses normally.
        framer.push(b"junk tail\nok\n", &mut events);
        assert_eq!(events, vec![FrameEvent::Line("ok".into())]);
        assert!(!framer.has_partial());
    }

    #[test]
    fn long_lines_that_complete_within_buffered_data_still_parse() {
        let mut framer = LineFramer::new(8);
        // 16 bytes arrive in one chunk but the newline is in there:
        // complete lines are processed before the cap check.
        let events = lines(&mut framer, b"0123456789abcd\nz\n");
        assert_eq!(
            events,
            vec![
                FrameEvent::Line("0123456789abcd".into()),
                FrameEvent::Line("z".into()),
            ]
        );
    }

    #[test]
    fn finish_skips_a_line_being_discarded() {
        let mut framer = LineFramer::new(4);
        let mut events = Vec::new();
        framer.push(b"way too long", &mut events);
        events.clear();
        framer.finish(&mut events);
        assert_eq!(events, vec![], "discarded tail must not be served");
    }

    #[test]
    fn scanning_is_linear_in_bytes_pushed() {
        // Regression for the O(n²) rescan: a 1 MiB single line arriving
        // in 4 KiB chunks must examine each byte exactly once. The old
        // `rposition`-per-chunk implementation would have scanned
        // ~128 MiB here.
        let total = 1 << 20;
        let mut framer = LineFramer::new(2 << 20);
        let chunk = [b'x'; 4096];
        let mut events = Vec::new();
        for _ in 0..(total / chunk.len()) {
            framer.push(&chunk, &mut events);
        }
        assert_eq!(events, vec![]);
        assert_eq!(framer.bytes_scanned(), total as u64);
        framer.push(b"\n", &mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(framer.bytes_scanned(), total as u64 + 1);
    }

    #[test]
    fn invalid_utf8_degrades_lossily_not_fatally() {
        let mut framer = LineFramer::new(64);
        let events = lines(&mut framer, b"\xff\xfe bad\n");
        match &events[..] {
            [FrameEvent::Line(line)] => assert!(line.contains('\u{FFFD}')),
            other => panic!("expected one line, got {other:?}"),
        }
    }
}
