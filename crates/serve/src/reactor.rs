//! The epoll front-end: readiness-driven connection handling on a
//! small fixed set of reactor threads.
//!
//! The threaded [`crate::Server`] pins one worker thread to one
//! connection for the connection's whole lifetime, so its concurrent
//! connection ceiling *is* its worker count. This module replaces that
//! front-end with the classic reactor shape: every socket is
//! nonblocking and registered with an [`crate::sys::Epoll`] instance;
//! each reactor thread owns a slab of connections and sleeps in
//! `epoll_wait` until the kernel reports one of them readable or
//! writable. A reactor wakes *only* for socket readiness, an inbox
//! handoff from the acceptor, or the earliest armed progress deadline —
//! there is no periodic poll tick, so an idle server makes zero
//! wakeups.
//!
//! Everything above the event loop is shared with the threaded server:
//! the same [`LineFramer`] turns chunks into complete lines, and the
//! same `BatchCore` (via [`EngineService`]) answers them, so protocol
//! behaviour cannot drift between the two front-ends. The event loop
//! itself is generic over a [`LineHandler`] — the scatter/gather
//! [`crate::router::Router`] front is the second implementation.
//!
//! The slow-loris defense ports over with stronger mechanics: instead
//! of a per-read timeout, each connection that *owes a newline* carries
//! a progress deadline, and the reactor's `epoll_wait` timeout is the
//! earliest one armed. A byte-dripping client wakes the reactor per
//! byte but never resets the deadline; a fully idle connection arms no
//! deadline and costs no wakeups at all.

use crate::framer::{FrameEvent, LineFramer};
use crate::protocol::ErrorKind;
use crate::server::{BatchCore, DrainStats};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use drone_explorer::{Explorer, QueryLimits};
use drone_telemetry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ReactorServer::start`].
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Reactor threads; connections are dealt round-robin across them.
    pub reactors: usize,
    /// Connection ceiling per reactor; past it a fresh connection gets
    /// one structured `overloaded` reply and closes.
    pub max_connections: usize,
    /// Most pipelined requests coalesced into one engine batch.
    pub max_batch: usize,
    /// Per-line byte cap (see [`crate::ServerConfig::max_line_bytes`]).
    pub max_line_bytes: usize,
    /// Reply-backlog cap per connection: while more than this many
    /// unflushed reply bytes are buffered, the reactor drops the
    /// connection's read interest (the threaded path gets the same
    /// backpressure for free from blocking writes). Without it a client
    /// that pipelines requests but never reads its socket grows server
    /// memory without bound.
    pub max_outbuf_bytes: usize,
    /// Progress-based slow-loris budget: a connection owing a newline
    /// for this long gets a typed `deadline_exceeded` reply and closes.
    /// `None` (the default) waits forever.
    pub line_deadline: Option<Duration>,
    /// Per-request cost-unit deadline (see
    /// [`crate::ServerConfig::cost_deadline`]).
    pub cost_deadline: Option<u64>,
    /// Query validation limits applied to every request.
    pub limits: QueryLimits,
    /// Completed span trees retained for `trace` introspection.
    pub trace_capacity: usize,
    /// Seed for server-derived trace ids.
    pub trace_seed: u64,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            reactors: 2,
            max_connections: 1024,
            max_batch: 32,
            max_line_bytes: 64 * 1024,
            max_outbuf_bytes: 256 * 1024,
            line_deadline: None,
            cost_deadline: None,
            limits: QueryLimits::default(),
            trace_capacity: 64,
            trace_seed: 0,
        }
    }
}

/// What a reactor asks of the layer above it: complete request lines
/// in, newline-terminated reply lines out. Implementations own their
/// batching, metrics and refusal rendering; the reactor owns only
/// sockets, framing and deadlines.
pub trait LineHandler: Send + Sync + 'static {
    /// Answers `lines` in order, appending one newline-terminated reply
    /// per line to `out`.
    fn handle_lines(&self, lines: &[String], out: &mut String);
    /// One refusal line (no trailing newline) for a connection-level
    /// fault, charged to the implementation's counters.
    fn refusal(&self, kind: ErrorKind, message: &str) -> String;
    /// One overload line (no trailing newline) for a connection shed at
    /// the door.
    fn overloaded(&self) -> String;
}

/// [`LineHandler`] over the shared `BatchCore`: the engine-backed
/// service the threaded server and the reactor both speak.
pub struct EngineService {
    core: BatchCore,
    live: Arc<AtomicUsize>,
}

impl EngineService {
    /// Wraps an engine with the reactor's live-connection gauge; a
    /// `stats` introspection reply reports that count as `queue_depth`
    /// (the reactor has no admission queue — its backlog *is* its open
    /// connections).
    pub(crate) fn new(core: BatchCore, live: Arc<AtomicUsize>) -> EngineService {
        EngineService { core, live }
    }
}

impl LineHandler for EngineService {
    fn handle_lines(&self, lines: &[String], out: &mut String) {
        let live = &self.live;
        self.core
            .run_lines(lines, &|| live.load(Ordering::SeqCst), out);
    }

    fn refusal(&self, kind: ErrorKind, message: &str) -> String {
        self.core.refusal_line(kind, message)
    }

    fn overloaded(&self) -> String {
        self.core.overload_line()
    }
}

/// Acceptor → reactor handoff: freshly accepted sockets parked until
/// the reactor's next wakeup.
struct Inbox {
    queue: Mutex<Vec<TcpStream>>,
    wake: EventFd,
    /// Times this reactor returned from `epoll_wait` — the
    /// no-busy-polling invariant is "this does not move while the
    /// server is idle".
    wakeups: AtomicU64,
    /// Times this reactor paused reading a connection because its
    /// reply backlog crossed [`ReactorConfig::max_outbuf_bytes`].
    throttles: AtomicU64,
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    /// Armed iff the peer owes a newline; the earliest one bounds the
    /// reactor's `epoll_wait` timeout.
    deadline: Option<Instant>,
    /// EPOLLIN currently registered (dropped while the reply backlog
    /// exceeds the outbuf cap — read backpressure).
    registered_in: bool,
    /// EPOLLOUT currently registered (only while `out` has a backlog).
    registered_out: bool,
    /// Close once the outbuf flushes (EOF seen or refusal written).
    closing: bool,
}

/// A running reactor server plus the handles needed to stop it.
pub struct ReactorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    inboxes: Vec<Arc<Inbox>>,
    live: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<usize>>,
}

impl ReactorServer {
    /// Binds a loopback port and spins up the acceptor plus
    /// `config.reactors` event-loop threads over an engine-backed
    /// [`EngineService`].
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind, or on targets without the
    /// epoll shims (see [`crate::sys`]).
    pub fn start(
        engine: Explorer,
        config: ReactorConfig,
        registry: &Registry,
    ) -> std::io::Result<ReactorServer> {
        let live = Arc::new(AtomicUsize::new(0));
        let core = BatchCore::new(
            engine,
            registry,
            config.limits,
            config.max_batch,
            config.cost_deadline,
            config.trace_capacity,
            config.trace_seed,
        );
        let service = EngineService::new(core, Arc::clone(&live));
        ReactorServer::start_with_handler(Arc::new(service), config, live)
    }

    /// [`ReactorServer::start`] with a caller-supplied [`LineHandler`]
    /// (the router front uses this). `live` is the open-connection
    /// gauge the reactors maintain; pass the same `Arc` the handler
    /// reads, or a fresh one if the handler does not care.
    pub fn start_with_handler(
        handler: Arc<dyn LineHandler>,
        config: ReactorConfig,
        live: Arc<AtomicUsize>,
    ) -> std::io::Result<ReactorServer> {
        // Fail fast on unsupported targets instead of spawning threads
        // that error per connection.
        drop(Epoll::new()?);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let reactor_count = config.reactors.max(1);
        let mut inboxes = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            inboxes.push(Arc::new(Inbox {
                queue: Mutex::new(Vec::new()),
                wake: EventFd::new()?,
                wakeups: AtomicU64::new(0),
                throttles: AtomicU64::new(0),
            }));
        }
        let mut reactors = Vec::with_capacity(reactor_count);
        for (i, inbox) in inboxes.iter().enumerate() {
            let inbox = Arc::clone(inbox);
            let handler = Arc::clone(&handler);
            let shutdown = Arc::clone(&shutdown);
            let live = Arc::clone(&live);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("serve-reactor-{i}"))
                    .spawn(move || reactor_loop(&inbox, &*handler, &config, &shutdown, &live))?,
            );
        }
        let acceptor = {
            let inboxes = inboxes.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-reactor-acceptor".into())
                .spawn(move || accept_loop(&listener, &inboxes, &shutdown))?
        };
        Ok(ReactorServer {
            addr,
            shutdown,
            inboxes,
            live,
            acceptor: Some(acceptor),
            reactors,
        })
    }

    /// The bound loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered across all reactors.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Total `epoll_wait` returns across all reactors. An idle server
    /// must not move this — the no-busy-polling invariant CI pins.
    pub fn wakeups(&self) -> u64 {
        self.inboxes
            .iter()
            .map(|i| i.wakeups.load(Ordering::SeqCst))
            .sum()
    }

    /// Times any reactor paused reading a connection because its reply
    /// backlog crossed [`ReactorConfig::max_outbuf_bytes`].
    pub fn throttles(&self) -> u64 {
        self.inboxes
            .iter()
            .map(|i| i.throttles.load(Ordering::SeqCst))
            .sum()
    }

    /// Stops admitting, closes every connection (open ones count as
    /// abandoned), and joins every thread.
    pub fn drain(mut self) -> DrainStats {
        self.shutdown.store(true, Ordering::SeqCst);
        for inbox in &self.inboxes {
            inbox.wake.signal();
        }
        // The acceptor blocks in accept(); one throwaway connection
        // unblocks it so it can observe the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        let mut joined = 0usize;
        let mut clean = true;
        let mut abandoned = 0usize;
        if let Some(acceptor) = self.acceptor.take() {
            clean &= acceptor.join().is_ok();
            joined += 1;
        }
        for reactor in self.reactors.drain(..) {
            match reactor.join() {
                Ok(open) => abandoned += open,
                Err(_) => clean = false,
            }
            joined += 1;
        }
        DrainStats {
            threads_joined: joined,
            abandoned_connections: abandoned,
            clean,
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        // A dropped server must not leak threads (mirrors Server).
        if self.acceptor.is_some() || !self.reactors.is_empty() {
            let server = ReactorServer {
                addr: self.addr,
                shutdown: Arc::clone(&self.shutdown),
                inboxes: std::mem::take(&mut self.inboxes),
                live: Arc::clone(&self.live),
                acceptor: self.acceptor.take(),
                reactors: std::mem::take(&mut self.reactors),
            };
            server.drain();
        }
    }
}

fn accept_loop(listener: &TcpListener, inboxes: &[Arc<Inbox>], shutdown: &AtomicBool) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inbox = &inboxes[next % inboxes.len()];
        next = next.wrapping_add(1);
        inbox
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stream);
        inbox.wake.signal();
    }
}

/// Wakeup token reserved for the inbox eventfd; connection slots map to
/// `slot + 1`.
const WAKE_TOKEN: u64 = 0;

fn reactor_loop(
    inbox: &Inbox,
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    shutdown: &AtomicBool,
    live: &AtomicUsize,
) -> usize {
    // On setup failure (no epoll on this target) nothing registered.
    reactor_run(inbox, handler, config, shutdown, live).unwrap_or_default()
}

fn reactor_run(
    inbox: &Inbox,
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    shutdown: &AtomicBool,
    live: &AtomicUsize,
) -> std::io::Result<usize> {
    let epoll = Epoll::new()?;
    epoll.add(inbox.wake.raw(), EPOLLIN, WAKE_TOKEN)?;
    let mut slab: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent::zeroed(); 128];
    loop {
        let timeout = earliest_deadline_ms(&slab);
        let ready = epoll.wait(&mut events, timeout)?;
        inbox.wakeups.fetch_add(1, Ordering::SeqCst);
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        for event in events.iter().take(ready) {
            let token = event.token();
            if token == WAKE_TOKEN {
                inbox.wake.drain();
                admit_pending(inbox, handler, config, &epoll, &mut slab, &mut free, live);
            } else {
                let slot = (token - 1) as usize;
                let readiness = event.readiness();
                service_conn(
                    slot,
                    readiness,
                    handler,
                    config,
                    &epoll,
                    &mut slab,
                    &mut free,
                    live,
                    &inbox.throttles,
                );
            }
        }
        sweep_deadlines(handler, config, &epoll, &mut slab, &mut free, live);
    }
    // Shutdown: everything still registered closes unserved.
    let abandoned = slab.iter().filter(|c| c.is_some()).count();
    live.fetch_sub(abandoned, Ordering::SeqCst);
    Ok(abandoned)
}

/// Registers every socket parked in the inbox, shedding past the
/// per-reactor ceiling.
fn admit_pending(
    inbox: &Inbox,
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    epoll: &Epoll,
    slab: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    live: &AtomicUsize,
) {
    let pending = std::mem::take(&mut *inbox.queue.lock().unwrap_or_else(PoisonError::into_inner));
    for mut stream in pending {
        let open = slab.len() - free.len();
        if open >= config.max_connections.max(1) {
            // Shed at the door, mirroring the threaded server: one
            // structured reply on the still-blocking socket, then close.
            let _ = writeln!(stream, "{}", handler.overloaded());
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let slot = free.pop().unwrap_or_else(|| {
            slab.push(None);
            slab.len() - 1
        });
        let token = (slot + 1) as u64;
        if epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            free.push(slot);
            continue;
        }
        slab[slot] = Some(Conn {
            stream,
            framer: LineFramer::new(config.max_line_bytes),
            out: Vec::new(),
            out_pos: 0,
            deadline: None,
            registered_in: true,
            registered_out: false,
            closing: false,
        });
        live.fetch_add(1, Ordering::SeqCst);
    }
}

/// The earliest armed progress deadline as an `epoll_wait` timeout:
/// `-1` (sleep forever) when nothing is armed — the no-busy-polling
/// property — else the ceiling of the remaining time in ms.
fn earliest_deadline_ms(slab: &[Option<Conn>]) -> i32 {
    let earliest = slab.iter().flatten().filter_map(|c| c.deadline).min();
    match earliest {
        None => -1,
        Some(deadline) => timeout_ms(deadline.saturating_duration_since(Instant::now())),
    }
}

/// Ceiling of `remaining` in whole milliseconds, saturating at
/// `i32::MAX`. The saturating round-up matters: `min(i32::MAX) + 1`
/// would overflow for a deadline ~24.8 days out, turning the epoll
/// timeout negative (= sleep forever) in release builds.
fn timeout_ms(remaining: Duration) -> i32 {
    let whole = remaining.as_millis().min(i32::MAX as u128) as i32;
    whole.saturating_add(i32::from(!remaining.subsec_micros().is_multiple_of(1000)))
}

/// Handles one readiness event for one connection slot.
#[allow(clippy::too_many_arguments)] // event-loop plumbing, all borrowed
fn service_conn(
    slot: usize,
    readiness: u32,
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    epoll: &Epoll,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    live: &AtomicUsize,
    throttles: &AtomicU64,
) {
    let Some(conn) = slab.get_mut(slot).and_then(Option::as_mut) else {
        return; // already closed this wakeup batch
    };
    let mut dead = false;
    if readiness & EPOLLOUT != 0 {
        dead |= !flush_out(conn);
    }
    // EPOLLERR/EPOLLHUP are unsolicited; folding them into the read
    // path lets read() surface the actual error (or EOF) instead of
    // this level-triggered event spinning forever. (A read-throttled
    // connection skips the read, but the unconditional flush below
    // still surfaces the broken pipe and closes the slot.)
    if !dead && readiness & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 && !conn.closing {
        dead |= !drain_readable(conn, handler, config, throttles);
    }
    if !dead {
        dead |= !flush_out(conn);
    }
    let token = (slot + 1) as u64;
    if dead || (conn.closing && conn.out_pos >= conn.out.len()) {
        close_slot(slot, epoll, slab, free, live);
    } else if let Err(e) = update_interest(conn, epoll, token, config.max_outbuf_bytes) {
        let _ = e;
        close_slot(slot, epoll, slab, free, live);
    }
}

/// Reads until `WouldBlock`/EOF, frames, answers complete lines into
/// the outbuf, and re-arms the progress deadline. Returns false when
/// the connection errored and must close immediately.
fn drain_readable(
    conn: &mut Conn,
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    throttles: &AtomicU64,
) -> bool {
    let mut chunk = [0u8; 4096];
    let mut events: Vec<FrameEvent> = Vec::new();
    let mut progressed = false;
    loop {
        // Backpressure: once the reply backlog crosses the cap, leave
        // further input in the kernel buffer. If the flush that follows
        // cannot clear the backlog, `update_interest` also drops
        // EPOLLIN until the peer drains its replies, so `out` stays
        // bounded however fast the peer pipelines. Replies are
        // dispatched per chunk so this check sees the bytes each chunk
        // generated.
        if conn.out.len() - conn.out_pos > config.max_outbuf_bytes {
            throttles.fetch_add(1, Ordering::SeqCst);
            break;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a trailing unterminated line still gets served.
                conn.framer.finish(&mut events);
                conn.closing = true;
                progressed |= !events.is_empty();
                dispatch_events(&mut events, conn, handler);
                break;
            }
            Ok(n) => {
                conn.framer.push(&chunk[..n], &mut events);
                progressed |= !events.is_empty();
                dispatch_events(&mut events, conn, handler);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    // The slow-loris rule, shared with the threaded path: completing a
    // line (or owing nothing) resets the budget; raw bytes do not.
    if progressed || !conn.framer.has_partial() {
        conn.deadline = if conn.framer.has_partial() {
            config.line_deadline.map(|d| Instant::now() + d)
        } else {
            None
        };
    } else if conn.deadline.is_none() {
        conn.deadline = config.line_deadline.map(|d| Instant::now() + d);
    }
    true
}

/// Plays framer events in input order into the outbuf: runs of complete
/// lines become handler batches, an oversized line becomes one
/// `too_large` refusal.
fn dispatch_events(events: &mut Vec<FrameEvent>, conn: &mut Conn, handler: &dyn LineHandler) {
    let mut lines: Vec<String> = Vec::new();
    let mut reply = String::new();
    for event in events.drain(..) {
        match event {
            FrameEvent::Line(line) => lines.push(line),
            FrameEvent::TooLarge => {
                if !lines.is_empty() {
                    handler.handle_lines(&lines, &mut reply);
                    lines.clear();
                }
                reply.push_str(
                    &handler.refusal(ErrorKind::TooLarge, "request line exceeds size cap"),
                );
                reply.push('\n');
            }
        }
    }
    if !lines.is_empty() {
        handler.handle_lines(&lines, &mut reply);
    }
    conn.out.extend_from_slice(reply.as_bytes());
}

/// Writes as much of the outbuf as the socket accepts. Returns false on
/// a connection error.
fn flush_out(conn: &mut Conn) -> bool {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    true
}

/// Arms EPOLLOUT exactly while the outbuf has a backlog, and drops
/// EPOLLIN while that backlog exceeds the outbuf cap (or the
/// connection is closing): a peer that pipelines requests but never
/// reads its replies is throttled instead of buffered without bound.
fn update_interest(
    conn: &mut Conn,
    epoll: &Epoll,
    token: u64,
    max_outbuf_bytes: usize,
) -> std::io::Result<()> {
    let backlog = conn.out.len() - conn.out_pos;
    let want_out = backlog > 0;
    let want_in = !conn.closing && backlog <= max_outbuf_bytes;
    if want_out == conn.registered_out && want_in == conn.registered_in {
        return Ok(());
    }
    let mut interest = 0;
    if want_in {
        interest |= EPOLLIN | EPOLLRDHUP;
    }
    if want_out {
        interest |= EPOLLOUT;
    }
    epoll.modify(conn.stream.as_raw_fd(), interest, token)?;
    conn.registered_in = want_in;
    conn.registered_out = want_out;
    Ok(())
}

/// Refuses every connection whose progress deadline has passed.
fn sweep_deadlines(
    handler: &dyn LineHandler,
    config: &ReactorConfig,
    epoll: &Epoll,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    live: &AtomicUsize,
) {
    let now = Instant::now();
    for slot in 0..slab.len() {
        let Some(conn) = slab[slot].as_mut() else {
            continue;
        };
        if conn.closing || conn.deadline.is_none_or(|d| d > now) {
            continue;
        }
        let mut reply = handler.refusal(
            ErrorKind::DeadlineExceeded,
            "no complete request line within the progress deadline",
        );
        reply.push('\n');
        conn.out.extend_from_slice(reply.as_bytes());
        conn.deadline = None;
        conn.closing = true;
        if !flush_out(conn) || conn.out_pos >= conn.out.len() {
            close_slot(slot, epoll, slab, free, live);
        } else {
            let token = (slot + 1) as u64;
            let registered = {
                let conn = slab[slot].as_mut().expect("just checked");
                update_interest(conn, epoll, token, config.max_outbuf_bytes).is_ok()
            };
            if !registered {
                close_slot(slot, epoll, slab, free, live);
            }
        }
    }
}

fn close_slot(
    slot: usize,
    epoll: &Epoll,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    live: &AtomicUsize,
) {
    if let Some(conn) = slab[slot].take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        free.push(slot);
        live.fetch_sub(1, Ordering::SeqCst);
        // Panic isolation for Drop impls; the stream just closes.
        let _ = catch_unwind(AssertUnwindSafe(move || drop(conn)));
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[cfg(test)]
mod tests {
    use super::*;
    use drone_telemetry::Json;
    use std::io::{BufRead, BufReader, Write};

    fn request_line(id: u64) -> String {
        format!(
            r#"{{"id":{id},"query":{{"ranges":{{"wheelbase_mm":{{"min":250,"max":450,"steps":3}},"cells":["3S"],"capacity_mah":{{"min":2000,"max":6000,"steps":5}}}},"objective":"max_flight_time"}}}}"#
        )
    }

    fn start(config: ReactorConfig) -> (ReactorServer, Registry) {
        let registry = Registry::with_wall_clock();
        let server =
            ReactorServer::start(Explorer::new(2), config, &registry).expect("bind loopback");
        (server, registry)
    }

    #[test]
    fn serves_pipelined_requests_in_order_and_drains_cleanly() {
        let (server, registry) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut payload = String::new();
        for id in 0..5 {
            payload.push_str(&request_line(id));
            payload.push('\n');
        }
        payload.push_str("junk line\n");
        stream.write_all(payload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 6);
        for (id, line) in replies[..5].iter().enumerate() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
            assert_eq!(doc.get("id"), Some(&Json::Num(id as f64)));
        }
        let junk = Json::parse(&replies[5]).unwrap();
        assert_eq!(junk.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(registry.counter("serve.requests").get(), 6);

        let stats = server.drain();
        assert_eq!(
            stats.threads_joined,
            ReactorConfig::default().reactors + 1,
            "acceptor plus every reactor"
        );
        assert!(stats.clean);
        assert_eq!(stats.abandoned_connections, 0);
    }

    #[test]
    fn eof_without_trailing_newline_still_serves_the_line() {
        let (server, _registry) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(request_line(9).as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let doc = Json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("id"), Some(&Json::Num(9.0)));
        server.drain();
    }

    #[test]
    fn oversized_lines_refuse_and_resynchronize() {
        let config = ReactorConfig {
            max_line_bytes: 512,
            ..ReactorConfig::default()
        };
        let (server, registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let blob = "x".repeat(2048);
        stream.write_all(blob.as_bytes()).unwrap();
        stream.flush().unwrap();
        // Finish the oversized junk, then a valid request on the same
        // connection: the framer must resynchronize.
        std::thread::sleep(Duration::from_millis(40));
        stream.write_all(b"\n").unwrap();
        stream.write_all(request_line(3).as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 2, "{replies:?}");
        let refusal = Json::parse(&replies[0]).unwrap();
        assert_eq!(
            refusal.get("error").unwrap().get("kind"),
            Some(&Json::Str("too_large".into()))
        );
        let ok = Json::parse(&replies[1]).unwrap();
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(registry.counter("serve.errors.protocol").get(), 1);
        server.drain();
    }

    #[test]
    fn drip_fed_partial_lines_are_refused_within_the_progress_budget() {
        let config = ReactorConfig {
            line_deadline: Some(Duration::from_millis(150)),
            ..ReactorConfig::default()
        };
        let (server, registry) = start(config);
        let stream = TcpStream::connect(server.addr()).unwrap();
        let started = Instant::now();
        // A slow-loris drip: keep bytes (but never a newline) flowing,
        // so a naive last-activity clock would reset forever. The writer
        // runs aside while this thread blocks in read_line, consuming
        // the refusal the moment it lands.
        let mut writer = stream.try_clone().unwrap();
        let drip = std::thread::spawn(move || {
            for _ in 0..150 {
                if writer.write_all(b"x").is_err() {
                    break;
                }
                writer.flush().ok();
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("server must refuse with a reply line, not a silent close");
        assert!(!line.is_empty(), "connection closed without a refusal");
        let doc = Json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("error").unwrap().get("kind"),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "refused before the budget elapsed"
        );
        assert_eq!(registry.counter("serve.idle_timeouts").get(), 1);
        drip.join().unwrap();
        server.drain();
    }

    #[test]
    fn timeout_ms_rounds_up_and_saturates_instead_of_overflowing() {
        assert_eq!(timeout_ms(Duration::ZERO), 0);
        assert_eq!(timeout_ms(Duration::from_millis(5)), 5);
        // Fractional milliseconds round up so a deadline never fires
        // before `epoll_wait` returns.
        assert_eq!(timeout_ms(Duration::from_micros(5500)), 6);
        // A deadline past ~24.8 days used to overflow the +1 round-up
        // into a negative (= infinite) epoll timeout.
        assert_eq!(timeout_ms(Duration::from_millis(i32::MAX as u64)), i32::MAX);
        assert_eq!(timeout_ms(Duration::from_secs(365 * 24 * 3600)), i32::MAX);
        assert_eq!(timeout_ms(Duration::MAX), i32::MAX);
    }

    #[test]
    fn a_client_that_never_reads_is_throttled_not_buffered_without_bound() {
        let config = ReactorConfig {
            reactors: 1,
            max_outbuf_bytes: 1024,
            ..ReactorConfig::default()
        };
        let (server, _registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        const REQUESTS: usize = 200;
        let mut payload = String::new();
        for id in 0..REQUESTS {
            payload.push_str(&request_line(id as u64));
            payload.push('\n');
        }
        stream.write_all(payload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // Nothing is reading the replies yet: they overflow the 1 KiB
        // outbuf cap, so the reactor must drop read interest rather
        // than keep swallowing input and buffering replies.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.throttles() == 0 {
            assert!(
                Instant::now() < deadline,
                "reply backlog over the cap never throttled reads"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Draining the replies un-throttles reads; every request is
        // still answered exactly once, in order.
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), REQUESTS);
        for (id, line) in replies.iter().enumerate() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
            assert_eq!(doc.get("id"), Some(&Json::Num(id as f64)));
        }
        assert!(server.drain().clean);
    }

    #[test]
    fn idle_connections_cost_zero_wakeups() {
        let (server, _registry) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("{}\n", request_line(1)).as_bytes())
            .unwrap();
        let mut line = String::new();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"));
        // The connection stays open but idle, and no deadline is
        // armed: the reactors must sleep in epoll_wait indefinitely.
        let before = server.wakeups();
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(
            server.wakeups() - before,
            0,
            "an idle reactor must not busy-poll"
        );
        drop(stream);
        server.drain();
    }

    #[test]
    fn connections_past_the_ceiling_are_shed_with_a_structured_reply() {
        let config = ReactorConfig {
            reactors: 1,
            max_connections: 2,
            ..ReactorConfig::default()
        };
        let (server, _registry) = start(config);
        // Two held connections fill the reactor; they must register
        // before the third arrives (registration is async via inbox).
        let held: Vec<TcpStream> = (0..2)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.live_connections() < 2 {
            assert!(
                Instant::now() < deadline,
                "held connections never registered"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let third = TcpStream::connect(server.addr()).unwrap();
        let mut line = String::new();
        BufReader::new(third).read_line(&mut line).unwrap();
        let doc = Json::parse(line.trim()).unwrap();
        assert_eq!(
            doc.get("error").unwrap().get("kind"),
            Some(&Json::Str("overloaded".into()))
        );
        drop(held);
        server.drain();
    }

    #[test]
    fn held_open_connections_all_get_served_concurrently() {
        // The capacity claim at small scale: more simultaneously-open,
        // actively-served connections than there are reactor threads.
        let (server, _registry) = start(ReactorConfig::default());
        let streams: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        let mut readers: Vec<BufReader<TcpStream>> = Vec::new();
        for (i, mut s) in streams.into_iter().enumerate() {
            s.write_all(format!("{}\n", request_line(i as u64)).as_bytes())
                .unwrap();
            readers.push(BufReader::new(s));
        }
        for (i, reader) in readers.iter_mut().enumerate() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let doc = Json::parse(line.trim()).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "conn {i}");
            assert_eq!(doc.get("id"), Some(&Json::Num(i as f64)));
        }
        let stats = server.drain();
        assert!(stats.clean);
    }
}
