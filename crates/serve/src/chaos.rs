//! A deterministic network-fault injector: the TCP analogue of the
//! airframe's `FaultSchedule` (PR 1), aimed at the serving stack.
//!
//! [`ChaosProxy`] is a std-only loopback relay that sits between a
//! client and a [`crate::Server`], forwarding bytes while injecting
//! one configured [`Fault`] per connection according to a
//! [`FaultSchedule`]. Faults model the classic network misbehaviors:
//!
//! * [`Fault::ResetAfter`] — connection reset mid-line: both sides
//!   dropped after N client bytes.
//! * [`Fault::SplitEvery`] — pathological framing: client bytes
//!   re-chunked into tiny writes with pauses between them, so request
//!   lines arrive split at arbitrary byte boundaries.
//! * [`Fault::Coalesce`] — the opposite: every client byte buffered
//!   until half-close, then delivered as one giant write.
//! * [`Fault::TruncateReplyAfter`] — the reply cut off mid-line.
//! * [`Fault::StallAfter`] — slow-loris: N bytes, then silence long
//!   enough to trip the server's idle deadline.
//! * [`Fault::GarbagePrefix`] — a seeded garbage line interleaved
//!   ahead of the real request.
//!
//! Everything is seeded and connection-indexed: the same
//! (schedule, seed) pair replays the same byte stream, which is what
//! lets the `repro chaos` campaign pin exact survival counts.

use drone_math::rng::Pcg32;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One per-connection network misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully.
    None,
    /// Drop both directions after forwarding this many client bytes.
    ResetAfter(usize),
    /// Re-chunk client bytes into writes of at most this many bytes,
    /// pausing briefly between them.
    SplitEvery(usize),
    /// Buffer every client byte until half-close, then forward them
    /// in one write.
    Coalesce,
    /// Close both directions after forwarding this many reply bytes.
    TruncateReplyAfter(usize),
    /// Forward this many client bytes, then go silent for `millis`
    /// before relaying the rest — the slow-loris shape.
    StallAfter {
        /// Client bytes forwarded before the stall.
        bytes: usize,
        /// Silence, in milliseconds.
        millis: u64,
    },
    /// Write a seeded garbage line of this many bytes to the server
    /// before relaying the real request.
    GarbagePrefix(usize),
}

/// Which connections get the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Every connection.
    Always(Fault),
    /// Even-indexed connections (0, 2, …) get the fault; odd ones are
    /// relayed clean — so a client's first attempt fails and its
    /// retry succeeds, deterministically.
    EveryOther(Fault),
}

impl FaultSchedule {
    fn fault_for(self, connection: u64) -> Fault {
        match self {
            FaultSchedule::Always(fault) => fault,
            FaultSchedule::EveryOther(fault) => {
                if connection.is_multiple_of(2) {
                    fault
                } else {
                    Fault::None
                }
            }
        }
    }
}

/// What a stopped proxy did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections that had a non-[`Fault::None`] fault applied.
    pub faults_injected: u64,
    /// Threads joined at stop: the acceptor plus one relay per
    /// connection. Campaign CI pins this exactly — the chaos layer
    /// itself must not leak.
    pub threads_joined: usize,
}

/// A seeded TCP fault-injection relay. See the module docs.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    relays: Arc<Mutex<Vec<JoinHandle<()>>>>,
    connections: Arc<AtomicU64>,
    faults_injected: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Starts a relay on a fresh loopback port, forwarding to
    /// `upstream` under the given schedule and seed.
    ///
    /// # Errors
    ///
    /// Fails only if the listener cannot bind.
    pub fn start(
        upstream: SocketAddr,
        schedule: FaultSchedule,
        seed: u64,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let relays: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let connections = Arc::new(AtomicU64::new(0));
        let faults_injected = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let relays = Arc::clone(&relays);
            let connections = Arc::clone(&connections);
            let faults_injected = Arc::clone(&faults_injected);
            std::thread::Builder::new()
                .name("chaos-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        let index = connections.fetch_add(1, Ordering::SeqCst);
                        let fault = schedule.fault_for(index);
                        if fault != Fault::None {
                            faults_injected.fetch_add(1, Ordering::SeqCst);
                        }
                        let handle = std::thread::Builder::new()
                            .name(format!("chaos-relay-{index}"))
                            .spawn(move || relay(client, upstream, fault, seed, index))
                            .expect("spawn relay thread");
                        relays
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(handle);
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            relays,
            connections,
            faults_injected,
        })
    }

    /// The loopback address clients should dial instead of the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every thread.
    pub fn stop(mut self) -> ProxyStats {
        self.finish()
    }

    fn finish(&mut self) -> ProxyStats {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() so the acceptor can observe the flag.
        let _ = TcpStream::connect(self.addr);
        let mut joined = 0usize;
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
            joined += 1;
        }
        let relays =
            std::mem::take(&mut *self.relays.lock().unwrap_or_else(PoisonError::into_inner));
        for relay in relays {
            let _ = relay.join();
            joined += 1;
        }
        // The shutdown self-connect above is counted by the acceptor
        // before it breaks; its relay (if spawned) was joined too.
        ProxyStats {
            connections: self.connections.load(Ordering::SeqCst),
            faults_injected: self.faults_injected.load(Ordering::SeqCst),
            threads_joined: joined,
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.finish();
        }
    }
}

/// The poll tick for the full-duplex relay loop.
const POLL: Duration = Duration::from_millis(5);
/// Hard ceiling on one relayed connection's lifetime: whatever the
/// fault, the relay thread always exits.
const RELAY_DEADLINE: Duration = Duration::from_secs(10);

fn relay(client: TcpStream, upstream: SocketAddr, fault: Fault, seed: u64, index: u64) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let _ = client.set_read_timeout(Some(POLL));
    let _ = server.set_read_timeout(Some(POLL));
    let _ = run_relay(client, server, fault, seed, index);
}

/// Forwards both directions with the fault applied; any I/O error
/// tears the pair down, which is always an acceptable chaos outcome.
fn run_relay(
    mut client: TcpStream,
    mut server: TcpStream,
    fault: Fault,
    seed: u64,
    index: u64,
) -> std::io::Result<()> {
    if let Fault::GarbagePrefix(len) = fault {
        let mut rng = Pcg32::new(seed, index);
        let mut garbage = String::with_capacity(len + 1);
        // Printable, newline-terminated, never valid JSON.
        garbage.push('!');
        while garbage.len() < len {
            garbage.push((b'a' + (rng.below(26)) as u8) as char);
        }
        garbage.push('\n');
        server.write_all(garbage.as_bytes())?;
    }
    let started = Instant::now();
    let mut chunk = [0u8; 4096];
    let mut c2s_forwarded = 0usize; // client bytes already forwarded
    let mut s2c_forwarded = 0usize; // reply bytes already forwarded
    let mut client_done = false;
    let mut server_done = false;
    let mut coalesced: Vec<u8> = Vec::new();
    let mut stalled = false;
    while !(client_done && server_done) {
        if started.elapsed() > RELAY_DEADLINE {
            break;
        }
        if !client_done {
            match client.read(&mut chunk) {
                Ok(0) => {
                    client_done = true;
                    if fault == Fault::Coalesce && !coalesced.is_empty() {
                        server.write_all(&coalesced)?;
                    }
                    let _ = server.shutdown(Shutdown::Write);
                }
                Ok(n) => {
                    let data = &chunk[..n];
                    match fault {
                        Fault::ResetAfter(limit) => {
                            let take = limit.saturating_sub(c2s_forwarded).min(n);
                            server.write_all(&data[..take])?;
                            c2s_forwarded += take;
                            if c2s_forwarded >= limit {
                                // Drop both sides mid-line: the client
                                // sees the connection die before any
                                // correlated reply.
                                return Ok(());
                            }
                        }
                        Fault::SplitEvery(size) => {
                            for piece in data.chunks(size.max(1)) {
                                server.write_all(piece)?;
                                server.flush()?;
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            c2s_forwarded += n;
                        }
                        Fault::Coalesce => coalesced.extend_from_slice(data),
                        Fault::StallAfter { bytes, millis } => {
                            let take = bytes.saturating_sub(c2s_forwarded).min(n);
                            server.write_all(&data[..take])?;
                            c2s_forwarded += take;
                            if c2s_forwarded >= bytes && !stalled {
                                stalled = true;
                                std::thread::sleep(Duration::from_millis(millis));
                                server.write_all(&data[take..])?;
                                c2s_forwarded += n - take;
                            }
                        }
                        _ => {
                            server.write_all(data)?;
                            c2s_forwarded += n;
                        }
                    }
                }
                Err(e) if would_block(&e) => {}
                Err(_) => {
                    client_done = true;
                    let _ = server.shutdown(Shutdown::Write);
                }
            }
        }
        if !server_done {
            match server.read(&mut chunk) {
                Ok(0) => {
                    server_done = true;
                    let _ = client.shutdown(Shutdown::Write);
                }
                Ok(n) => {
                    let data = &chunk[..n];
                    if let Fault::TruncateReplyAfter(limit) = fault {
                        let take = limit.saturating_sub(s2c_forwarded).min(n);
                        client.write_all(&data[..take])?;
                        s2c_forwarded += take;
                        if s2c_forwarded >= limit {
                            return Ok(());
                        }
                    } else {
                        client.write_all(data)?;
                        s2c_forwarded += n;
                    }
                }
                Err(e) if would_block(&e) => {}
                Err(_) => {
                    server_done = true;
                    let _ = client.shutdown(Shutdown::Write);
                }
            }
        }
    }
    Ok(())
}

fn would_block(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CallError, Client, ClientConfig};
    use crate::server::{Server, ServerConfig};
    use drone_components::battery::CellCount;
    use drone_explorer::{Explorer, GridRange, Objective, Query, QueryRanges};
    use drone_telemetry::Registry;

    fn query() -> Query {
        Query::new(
            "chaos",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                cells: vec![CellCount::S3],
                capacity_mah: GridRange::new(2000.0, 6000.0, 5),
                compute_power_w: GridRange::fixed(20.0),
                twr: GridRange::fixed(2.0),
                payload_g: GridRange::fixed(0.0),
            },
            Objective::MaxFlightTime,
        )
    }

    fn client_config() -> ClientConfig {
        ClientConfig {
            retries: 2,
            backoff_initial_ms: 1,
            backoff_max_ms: 4,
            breaker_threshold: 0,
            reply_timeout: Duration::from_millis(800),
            ..ClientConfig::default()
        }
    }

    fn run_through(schedule: FaultSchedule) -> (Result<u32, CallError>, ProxyStats, Registry) {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        let proxy = ChaosProxy::start(server.addr(), schedule, 42).unwrap();
        let mut client = Client::new(proxy.addr(), client_config(), &registry);
        let outcome = client.call(&query()).map(|s| s.attempts);
        let stats = proxy.stop();
        assert!(server.drain().clean);
        (outcome, stats, registry)
    }

    #[test]
    fn a_clean_schedule_relays_verbatim() {
        let (outcome, stats, _) = run_through(FaultSchedule::Always(Fault::None));
        assert_eq!(outcome.unwrap(), 1);
        assert_eq!(stats.faults_injected, 0);
        // Acceptor + one relay per connection (including the shutdown
        // self-connect, which may or may not produce a relay in time).
        assert!(stats.threads_joined >= 1 + stats.connections as usize - 1);
    }

    #[test]
    fn a_reset_first_connection_is_survived_by_retry() {
        let (outcome, stats, registry) =
            run_through(FaultSchedule::EveryOther(Fault::ResetAfter(8)));
        assert_eq!(outcome.unwrap(), 2, "first attempt reset, retry clean");
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(registry.counter("client.retries").get(), 1);
    }

    #[test]
    fn split_frames_reassemble_into_one_answer() {
        let (outcome, _, _) = run_through(FaultSchedule::Always(Fault::SplitEvery(7)));
        assert_eq!(outcome.unwrap(), 1, "splitting never corrupts framing");
    }

    #[test]
    fn truncated_replies_are_retried_to_success() {
        let (outcome, _, registry) =
            run_through(FaultSchedule::EveryOther(Fault::TruncateReplyAfter(20)));
        assert_eq!(outcome.unwrap(), 2);
        assert_eq!(registry.counter("client.retries").get(), 1);
    }

    #[test]
    fn garbage_prefix_lines_do_not_confuse_correlation() {
        let (outcome, _, _) = run_through(FaultSchedule::Always(Fault::GarbagePrefix(24)));
        assert_eq!(
            outcome.unwrap(),
            1,
            "the client skips the garbage's parse-error reply"
        );
    }
}
