//! The threaded TCP front-end: a single acceptor feeding a bounded
//! connection queue drained by a fixed worker pool.
//!
//! Admission control happens at the front door. When the queue is
//! full the acceptor does not block and does not buffer: it writes one
//! structured `overloaded` reply on the fresh connection and closes
//! it — the TCP analogue of the firmware scheduler's shed policy
//! (drop the newest work, keep the pipeline moving). Everything past
//! admission is deterministic protocol code from [`crate::protocol`].
//!
//! Shutdown is a **drain**: stop admitting, let every worker finish
//! the connection it holds, then join every thread. [`DrainStats`]
//! reports the join count so tests (and CI) can pin "no thread leaked"
//! as an invariant rather than a hope.

use crate::framer::{FrameEvent, LineFramer};
use crate::protocol::{
    self, AdminRequest, BatchPolicy, BatchTracing, ErrorKind, ReplySlot, RequestError,
};
use drone_explorer::{Explorer, QueryLimits};
use drone_telemetry::{Clock, Counter, Gauge, Json, Registry, SharedHistogram, TraceRing};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Connections admitted but not yet picked up; beyond this the
    /// acceptor sheds.
    pub queue_capacity: usize,
    /// Most pipelined requests coalesced into one engine batch.
    pub max_batch: usize,
    /// Per-line byte cap; a longer line gets a `too_large` reply and
    /// the parser resynchronizes at the next newline.
    pub max_line_bytes: usize,
    /// Slow-loris defense, progress-based: a connection that goes this
    /// long without completing a request line gets a typed
    /// `deadline_exceeded` reply and closes. Raw byte arrival is *not*
    /// progress — a client dripping one byte at a time burns its budget
    /// just like a silent one. `None` (the default) waits forever.
    pub idle_timeout: Option<Duration>,
    /// Per-request cost-unit deadline: a request whose worst-case
    /// budget exceeds this is shed with a typed `deadline_exceeded`
    /// reply before evaluation starts. `None` disables shedding.
    pub cost_deadline: Option<u64>,
    /// Query validation limits applied to every request.
    pub limits: QueryLimits,
    /// Completed span trees retained for the `trace` introspection
    /// request; older traces are evicted oldest-first.
    pub trace_capacity: usize,
    /// Seed for server-derived trace ids, used only for requests that
    /// arrive without a client-stamped `trace_id`.
    pub trace_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            max_batch: 32,
            max_line_bytes: 64 * 1024,
            idle_timeout: None,
            cost_deadline: None,
            limits: QueryLimits::default(),
            trace_capacity: 64,
            trace_seed: 0,
        }
    }
}

/// What a completed drain looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Threads joined: the acceptor plus every worker.
    pub threads_joined: usize,
    /// Queued connections closed unserved during the drain.
    pub abandoned_connections: usize,
    /// True when every thread joined without panicking.
    pub clean: bool,
}

/// The `serve.*` metric family, shared verbatim by the threaded and
/// reactor front-ends (both register against the same names, so a
/// process running both — the router does — reports aggregates).
pub(crate) struct Metrics {
    pub(crate) requests: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) sheds: Arc<Counter>,
    pub(crate) protocol_errors: Arc<Counter>,
    pub(crate) query_errors: Arc<Counter>,
    pub(crate) panics_caught: Arc<Counter>,
    pub(crate) deadline_sheds: Arc<Counter>,
    pub(crate) idle_timeouts: Arc<Counter>,
    pub(crate) admin_requests: Arc<Counter>,
    pub(crate) optimize_requests: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) batch_size: Arc<SharedHistogram>,
    pub(crate) cost_units: Arc<SharedHistogram>,
    pub(crate) latency_s: Arc<SharedHistogram>,
}

impl Metrics {
    pub(crate) fn new(registry: &Registry) -> Metrics {
        Metrics {
            requests: registry.counter("serve.requests"),
            batches: registry.counter("serve.batches"),
            sheds: registry.counter("serve.sheds"),
            protocol_errors: registry.counter("serve.errors.protocol"),
            query_errors: registry.counter("serve.errors.query"),
            panics_caught: registry.counter("serve.panics_caught"),
            deadline_sheds: registry.counter("serve.deadline_sheds"),
            idle_timeouts: registry.counter("serve.idle_timeouts"),
            admin_requests: registry.counter("serve.admin_requests"),
            optimize_requests: registry.counter("serve.optimize_requests"),
            queue_depth: registry.gauge("serve.queue.depth"),
            batch_size: registry.histogram("serve.batch.size"),
            cost_units: registry.histogram("serve.request.cost_units"),
            latency_s: registry.histogram("serve.request.latency_s"),
        }
    }

    /// Accounts one completed batch. Runs *before* introspection slots
    /// resolve, so a `stats` reply observes the batch it rode in on.
    pub(crate) fn account(&self, batch_len: usize, outcome: &protocol::BatchOutcome, elapsed: f64) {
        self.batches.inc();
        self.requests.add(batch_len as u64);
        self.protocol_errors.add(outcome.protocol_errors as u64);
        self.query_errors.add(outcome.query_errors as u64);
        self.panics_caught.add(outcome.internal_errors as u64);
        self.deadline_sheds.add(outcome.deadline_sheds as u64);
        self.admin_requests.add(outcome.admin_requests as u64);
        self.optimize_requests.add(outcome.optimize_requests as u64);
        self.batch_size.record(batch_len as f64);
        self.cost_units.record(outcome.cost_units as f64);
        if batch_len > 0 {
            self.latency_s.record(elapsed / batch_len as f64);
        }
    }
}

/// Everything needed to answer a batch of complete request lines:
/// engine, limits, tracing, and metric accounting. Both front-ends
/// (threaded [`Server`] and the epoll [`crate::ReactorServer`]) drive
/// their framers into this one code path, so protocol behaviour —
/// batching, panic isolation, introspection, accounting — cannot
/// drift between them.
pub(crate) struct BatchCore {
    pub(crate) engine: Explorer,
    pub(crate) limits: QueryLimits,
    pub(crate) max_batch: usize,
    pub(crate) cost_deadline: Option<u64>,
    pub(crate) trace_seed: u64,
    pub(crate) clock: Clock,
    pub(crate) metrics: Metrics,
    pub(crate) registry: Registry,
    pub(crate) traces: TraceRing,
}

impl BatchCore {
    pub(crate) fn new(
        engine: Explorer,
        registry: &Registry,
        limits: QueryLimits,
        max_batch: usize,
        cost_deadline: Option<u64>,
        trace_capacity: usize,
        trace_seed: u64,
    ) -> BatchCore {
        BatchCore {
            engine,
            limits,
            max_batch,
            cost_deadline,
            trace_seed,
            clock: registry.clock().clone(),
            metrics: Metrics::new(registry),
            registry: registry.clone(),
            traces: TraceRing::new(trace_capacity),
        }
    }

    /// Answers `lines` in input order, appending one newline-terminated
    /// reply per line to `out`. `queue_depth` supplies the live value a
    /// `stats` reply should report (connection-queue length for the
    /// threaded server, open-connection count for the reactor).
    pub(crate) fn run_lines(
        &self,
        lines: &[String],
        queue_depth: &dyn Fn() -> usize,
        out: &mut String,
    ) {
        let policy = BatchPolicy {
            cost_deadline: self.cost_deadline,
        };
        for chunk in lines.chunks(self.max_batch.max(1)) {
            let batch: Vec<&str> = chunk.iter().map(String::as_str).collect();
            let started = self.clock.now();
            // handle_batch_traced already converts evaluation panics
            // into per-request internal_error replies; this second
            // layer covers the protocol code itself, answering the
            // whole batch with typed errors rather than dropping the
            // connection.
            let (slots, outcome) = catch_unwind(AssertUnwindSafe(|| {
                let tracing = BatchTracing {
                    ring: &self.traces,
                    clock: self.clock.clone(),
                    seed: self.trace_seed,
                };
                protocol::handle_batch_traced(&self.engine, &batch, &self.limits, policy, &tracing)
            }))
            .unwrap_or_else(|_| {
                let error = RequestError {
                    kind: ErrorKind::Internal,
                    message: "batch processing panicked".into(),
                };
                let slots = batch
                    .iter()
                    .map(|_| ReplySlot::Line(protocol::error_reply(&Json::Null, &error).render()))
                    .collect();
                let outcome = protocol::BatchOutcome {
                    internal_errors: batch.len(),
                    ..protocol::BatchOutcome::default()
                };
                (slots, outcome)
            });
            let elapsed = self.clock.now() - started;
            self.metrics.account(batch.len(), &outcome, elapsed);
            for slot in &slots {
                match slot {
                    ReplySlot::Line(line) => out.push_str(line),
                    ReplySlot::Admin { id, request } => {
                        out.push_str(&self.admin_reply(queue_depth(), id, request).render());
                    }
                }
                out.push('\n');
            }
        }
    }

    /// Resolves one introspection slot against live server state.
    pub(crate) fn admin_reply(
        &self,
        queue_depth: usize,
        id: &Json,
        request: &AdminRequest,
    ) -> Json {
        match request {
            AdminRequest::Stats => {
                let stats = Json::obj()
                    .with("registry", self.registry.snapshot())
                    .with("queue_depth", queue_depth as f64)
                    .with(
                        "traces",
                        Json::obj()
                            .with("completed", self.traces.completed() as f64)
                            .with("retained", self.traces.len() as f64)
                            .with("dropped_spans", self.traces.dropped_spans() as f64),
                    );
                Json::obj()
                    .with("id", id.clone())
                    .with("ok", true)
                    .with("stats", stats)
            }
            AdminRequest::Trace(fetch) => {
                let traces = match fetch.trace_id {
                    Some(trace_id) => self.traces.find(trace_id).into_iter().collect(),
                    None => self.traces.last(fetch.last),
                };
                let mut arr = Json::arr();
                for trace in &traces {
                    arr.push(trace.to_json());
                }
                Json::obj()
                    .with("id", id.clone())
                    .with("ok", true)
                    .with("traces", arr)
            }
        }
    }

    /// One refusal line for a connection-level fault (oversized line,
    /// progress deadline), charged to the matching counter.
    pub(crate) fn refusal_line(&self, kind: ErrorKind, message: &str) -> String {
        let counter = match kind {
            ErrorKind::DeadlineExceeded => &self.metrics.idle_timeouts,
            _ => &self.metrics.protocol_errors,
        };
        counter.inc();
        protocol::error_reply(
            &Json::Null,
            &RequestError {
                kind,
                message: message.into(),
            },
        )
        .render()
    }

    /// One structured overload line for a connection shed at the door.
    pub(crate) fn overload_line(&self) -> String {
        self.metrics.sheds.inc();
        protocol::error_reply(
            &Json::Null,
            &RequestError {
                kind: ErrorKind::Overloaded,
                message: "queue full; retry later".into(),
            },
        )
        .render()
    }
}

struct QueueState {
    connections: VecDeque<TcpStream>,
    shutdown: bool,
    paused: bool,
}

struct Shared {
    /// Engine, limits, tracing, metrics — the protocol brain shared
    /// with the reactor front-end.
    core: BatchCore,
    config: ServerConfig,
    queue: Mutex<QueueState>,
    wakeup: Condvar,
    draining: AtomicBool,
}

impl Shared {
    /// Locks the connection queue, shrugging off poison: the state is
    /// a plain deque plus two flags, valid whatever a panicking holder
    /// was doing, so one caught panic must not cascade into aborts
    /// across acceptor, workers and drain.
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a connection, or hands it back when the queue is full;
    /// never blocks.
    fn try_admit(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.lock_queue();
        if queue.shutdown || queue.connections.len() >= self.config.queue_capacity {
            return Err(stream);
        }
        queue.connections.push_back(stream);
        self.core
            .metrics
            .queue_depth
            .set(queue.connections.len() as f64);
        drop(queue);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available or shutdown is flagged.
    fn next_connection(&self) -> Option<TcpStream> {
        let mut queue = self.lock_queue();
        loop {
            if queue.shutdown {
                return None;
            }
            if !queue.paused {
                if let Some(stream) = queue.connections.pop_front() {
                    self.core
                        .metrics
                        .queue_depth
                        .set(queue.connections.len() as f64);
                    return Some(stream);
                }
            }
            queue = self
                .wakeup
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A running server plus the handles needed to stop it.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback port and spins up the acceptor and worker
    /// threads. The engine is shared by all workers, so every batch
    /// benefits from one memoization cache.
    ///
    /// # Errors
    ///
    /// Fails only if the listener cannot bind.
    pub fn start(
        engine: Explorer,
        config: ServerConfig,
        registry: &Registry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: BatchCore::new(
                engine,
                registry,
                config.limits,
                config.max_batch,
                config.cost_deadline,
                config.trace_capacity,
                config.trace_seed,
            ),
            config,
            queue: Mutex::new(QueueState {
                connections: VecDeque::new(),
                shutdown: false,
                paused: false,
            }),
            wakeup: Condvar::new(),
            draining: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Holds workers back from picking up queued connections. The
    /// acceptor keeps admitting until the queue fills, so a test can
    /// stage a deterministic overload.
    pub fn pause_workers(&self) {
        self.shared.lock_queue().paused = true;
    }

    /// Releases [`Server::pause_workers`].
    pub fn resume_workers(&self) {
        self.shared.lock_queue().paused = false;
        self.shared.wakeup.notify_all();
    }

    /// Stops admitting, lets in-flight connections finish, closes any
    /// still-queued connections unserved, and joins every thread.
    pub fn drain(mut self) -> DrainStats {
        self.shared.draining.store(true, Ordering::SeqCst);
        let abandoned = {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
            queue.paused = false;
            let abandoned = queue.connections.len();
            queue.connections.clear();
            self.shared.core.metrics.queue_depth.set(0.0);
            abandoned
        };
        self.shared.wakeup.notify_all();
        // The acceptor blocks in accept(); one throwaway connection
        // unblocks it so it can observe the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        let mut joined = 0usize;
        let mut clean = true;
        if let Some(acceptor) = self.acceptor.take() {
            clean &= acceptor.join().is_ok();
            joined += 1;
        }
        for worker in self.workers.drain(..) {
            clean &= worker.join().is_ok();
            joined += 1;
        }
        DrainStats {
            threads_joined: joined,
            abandoned_connections: abandoned,
            clean,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt and braces for early returns in tests: a dropped server
        // must not leak threads. drain() leaves both handles empty.
        if self.acceptor.is_some() || !self.workers.is_empty() {
            let server = Server {
                shared: Arc::clone(&self.shared),
                addr: self.addr,
                acceptor: self.acceptor.take(),
                workers: std::mem::take(&mut self.workers),
            };
            server.drain();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Err(refused) = shared.try_admit(stream) {
            shed(refused, shared);
        }
    }
}

/// Writes the structured shed reply and closes the connection.
fn shed(mut stream: TcpStream, shared: &Shared) {
    let _ = writeln!(stream, "{}", shared.core.overload_line());
    let _ = stream.flush();
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.next_connection() {
        // Panic isolation, outermost layer: whatever a connection does
        // to this worker, the pool keeps draining the queue.
        if catch_unwind(AssertUnwindSafe(|| serve_connection(stream, shared))).is_err() {
            shared.core.metrics.panics_caught.inc();
        }
    }
}

/// One reply line, used when the connection itself misbehaves (a line
/// over the byte cap, a blown progress deadline), charged to the
/// matching counter.
fn refuse(stream: &mut TcpStream, shared: &Shared, kind: ErrorKind, message: &str) {
    let _ = writeln!(stream, "{}", shared.core.refusal_line(kind, message));
    let _ = stream.flush();
}

/// Reads newline-delimited requests until EOF, answering each batch of
/// complete lines with one engine run. A drain lets the current batch
/// finish, then closes even if the client would send more.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut framer = LineFramer::new(shared.config.max_line_bytes);
    let mut chunk = [0u8; 4096];
    let mut events: Vec<FrameEvent> = Vec::new();
    // The slow-loris clock: reset only when the connection completes a
    // line (or owes us nothing), never on raw byte arrival — a client
    // dripping one byte per 40 ms used to reset `last_activity` on
    // every read and hold this worker forever.
    let mut last_progress = Instant::now();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a trailing unterminated line still gets served.
                framer.finish(&mut events);
                dispatch_events(&mut events, &mut stream, shared);
                return;
            }
            Ok(n) => {
                framer.push(&chunk[..n], &mut events);
                let progressed = !events.is_empty();
                if !dispatch_events(&mut events, &mut stream, shared) {
                    return;
                }
                if progressed || !framer.has_partial() {
                    last_progress = Instant::now();
                } else if progress_expired(shared, last_progress) {
                    // The drip path: reads keep succeeding, so the
                    // WouldBlock arm below never runs.
                    refuse_no_progress(&mut stream, shared);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                if progress_expired(shared, last_progress) {
                    refuse_no_progress(&mut stream, shared);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn progress_expired(shared: &Shared, last_progress: Instant) -> bool {
    shared
        .config
        .idle_timeout
        .is_some_and(|limit| last_progress.elapsed() >= limit)
}

fn refuse_no_progress(stream: &mut TcpStream, shared: &Shared) {
    refuse(
        stream,
        shared,
        ErrorKind::DeadlineExceeded,
        "no complete request line within the progress deadline",
    );
}

/// Plays framer events in input order: runs of complete lines become
/// engine batches, an oversized line becomes one `too_large` refusal.
/// Returns false once the client stops accepting replies.
fn dispatch_events(events: &mut Vec<FrameEvent>, stream: &mut TcpStream, shared: &Shared) -> bool {
    let mut lines: Vec<String> = Vec::new();
    let mut alive = true;
    for event in events.drain(..) {
        match event {
            FrameEvent::Line(line) => lines.push(line),
            FrameEvent::TooLarge => {
                alive &= flush_lines(&lines, stream, shared);
                lines.clear();
                refuse(
                    stream,
                    shared,
                    ErrorKind::TooLarge,
                    "request line exceeds size cap",
                );
            }
        }
    }
    let flushed = flush_lines(&lines, stream, shared);
    alive && flushed
}

/// Answers a run of complete lines through the shared [`BatchCore`].
fn flush_lines(lines: &[String], stream: &mut TcpStream, shared: &Shared) -> bool {
    if lines.is_empty() {
        return true;
    }
    let mut out = String::new();
    shared
        .core
        .run_lines(lines, &|| shared.lock_queue().connections.len(), &mut out);
    if stream.write_all(out.as_bytes()).is_err() {
        return false;
    }
    let _ = stream.flush();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn request_line(id: u64) -> String {
        format!(
            r#"{{"id":{id},"query":{{"ranges":{{"wheelbase_mm":{{"min":250,"max":450,"steps":3}},"cells":["3S"],"capacity_mah":{{"min":2000,"max":6000,"steps":5}}}},"objective":"max_flight_time"}}}}"#
        )
    }

    fn start(config: ServerConfig) -> (Server, Registry) {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), config, &registry).expect("bind loopback");
        (server, registry)
    }

    #[test]
    fn serves_pipelined_requests_in_order_and_drains_cleanly() {
        let (server, registry) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut payload = String::new();
        for id in 0..5 {
            payload.push_str(&request_line(id));
            payload.push('\n');
        }
        payload.push_str("junk line\n");
        stream.write_all(payload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 6);
        for (id, line) in replies[..5].iter().enumerate() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{line}");
            assert_eq!(doc.get("id"), Some(&Json::Num(id as f64)));
        }
        let junk = Json::parse(&replies[5]).unwrap();
        assert_eq!(junk.get("ok"), Some(&Json::Bool(false)));

        assert_eq!(registry.counter("serve.requests").get(), 6);
        assert_eq!(registry.counter("serve.errors.protocol").get(), 1);
        assert_eq!(registry.counter("serve.errors.query").get(), 0);

        let stats = server.drain();
        assert_eq!(stats.threads_joined, ServerConfig::default().workers + 1);
        assert!(stats.clean);
    }

    #[test]
    fn sheds_with_a_structured_reply_once_the_queue_fills() {
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        };
        let (server, registry) = start(config);
        server.pause_workers();
        // With workers held, the queue admits exactly `queue_capacity`
        // connections; the next ones are shed in accept order.
        let mut held: Vec<TcpStream> = Vec::new();
        let mut shed_replies = 0usize;
        for i in 0..4 {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            if i < 2 {
                stream
                    .write_all(format!("{}\n", request_line(i)).as_bytes())
                    .unwrap();
                held.push(stream);
            } else {
                // The server sheds without waiting for a request; the
                // socket may already be closing, so don't write to it.
                // Shed connections get exactly one overloaded line.
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let doc = Json::parse(&line).unwrap();
                assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
                assert_eq!(
                    doc.get("error").and_then(|e| e.get("kind")),
                    Some(&Json::Str("overloaded".into()))
                );
                shed_replies += 1;
            }
        }
        assert_eq!(shed_replies, 2);
        assert_eq!(registry.counter("serve.sheds").get(), 2);

        server.resume_workers();
        for stream in held {
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let doc = Json::parse(&line).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        }
        let stats = server.drain();
        assert_eq!(stats.threads_joined, 2);
        assert!(stats.clean);
        assert_eq!(stats.abandoned_connections, 0);
    }

    #[test]
    fn oversized_lines_get_refused_not_buffered_forever() {
        let config = ServerConfig {
            max_line_bytes: 512,
            ..ServerConfig::default()
        };
        let (server, _registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&vec![b'x'; 4096]).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("too_large".into()))
        );
        server.drain();
    }

    #[test]
    fn dropping_an_undrained_server_joins_its_threads() {
        let (server, _registry) = start(ServerConfig::default());
        drop(server); // must not hang or leak; nothing to assert beyond returning.
    }

    #[test]
    fn a_poisoned_queue_mutex_degrades_gracefully() {
        let (server, _registry) = start(ServerConfig::default());
        // Poison the queue mutex the hard way: panic while holding it.
        let shared = Arc::clone(&server.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.queue.lock().unwrap();
            panic!("deliberate poison");
        });
        assert!(poisoner.join().is_err());
        assert!(server.shared.queue.is_poisoned());

        // Every lock site must recover: pause/resume, admission, a
        // served round trip, and the drain.
        server.pause_workers();
        server.resume_workers();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("{}\n", request_line(1)).as_bytes())
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));

        let stats = server.drain();
        assert!(stats.clean);
        assert_eq!(stats.threads_joined, ServerConfig::default().workers + 1);
    }

    #[test]
    fn too_large_lines_resynchronize_instead_of_closing() {
        let config = ServerConfig {
            max_line_bytes: 512,
            ..ServerConfig::default()
        };
        let (server, registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // An oversized un-newlined blob, then its terminating newline,
        // then two normal pipelined requests on the same connection.
        stream.write_all(&vec![b'x'; 4096]).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        stream.write_all(b"more oversized tail\n").unwrap();
        stream
            .write_all(format!("{}\n{}\n", request_line(1), request_line(2)).as_bytes())
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 3, "{replies:?}");
        let refusal = Json::parse(&replies[0]).unwrap();
        assert_eq!(
            refusal.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("too_large".into()))
        );
        for (reply, id) in replies[1..].iter().zip([1.0, 2.0]) {
            let doc = Json::parse(reply).unwrap();
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{reply}");
            assert_eq!(doc.get("id"), Some(&Json::Num(id)));
        }
        assert_eq!(registry.counter("serve.requests").get(), 2);
        assert!(server.drain().clean);
    }

    #[test]
    fn a_panicking_evaluation_never_kills_the_server() {
        let registry = Registry::with_wall_clock();
        // Poison the 350 mm wheelbase sample: request_line's 3-step
        // 250..450 grid hits it.
        let engine = Explorer::new(2).with_eval_hook(Arc::new(|q| {
            assert!(
                (q.wheelbase_mm - 350.0).abs() > 1e-9,
                "chaos hook: poisoned wheelbase"
            );
        }));
        let server =
            Server::start(engine, ServerConfig::default(), &registry).expect("bind loopback");
        let healthy = r#"{"id":9,"query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("{}\n{healthy}\n", request_line(1)).as_bytes())
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 2);
        let poisoned = Json::parse(&replies[0]).unwrap();
        assert_eq!(poisoned.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            poisoned.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("internal_error".into()))
        );
        let ok = Json::parse(&replies[1]).unwrap();
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(registry.counter("serve.panics_caught").get(), 1);

        // The server is still fully alive for the next connection.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(format!("{healthy}\n").as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(
            Json::parse(&line).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
        let stats = server.drain();
        assert!(stats.clean);
        assert_eq!(stats.threads_joined, ServerConfig::default().workers + 1);
    }

    #[test]
    fn idle_connections_hit_the_read_deadline() {
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        };
        let (server, registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A partial line, then silence: the slow-loris shape.
        stream.write_all(b"{\"id\":1,").unwrap();
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert_eq!(registry.counter("serve.idle_timeouts").get(), 1);
        assert!(server.drain().clean);
    }

    #[test]
    fn drip_fed_bytes_do_not_reset_the_progress_deadline() {
        // Regression for the slow-loris hole: the old loop reset
        // `last_activity` on *any* received byte, so a client dripping
        // one byte per read-timeout window held its worker forever.
        // Progress now means completing a request line.
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        };
        let (server, registry) = start(config);
        let stream = TcpStream::connect(server.addr()).unwrap();
        let started = Instant::now();
        // The drip runs aside while this thread blocks in read_line,
        // consuming the refusal the moment it lands.
        let mut writer = stream.try_clone().unwrap();
        let drip = std::thread::spawn(move || {
            for _ in 0..150 {
                if writer.write_all(b"x").is_err() {
                    break;
                }
                let _ = writer.flush();
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(&stream)
            .read_line(&mut line)
            .expect("server must refuse with a reply line, not a silent close");
        assert!(!line.is_empty(), "connection closed without a refusal");
        let doc = Json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "refused before the budget elapsed"
        );
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "the drip held its worker far past the progress budget"
        );
        assert_eq!(registry.counter("serve.idle_timeouts").get(), 1);
        drip.join().unwrap();
        assert!(server.drain().clean);
    }

    #[test]
    fn over_budget_requests_shed_before_the_engine_runs() {
        let config = ServerConfig {
            cost_deadline: Some(10),
            ..ServerConfig::default()
        };
        let (server, registry) = start(config);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // request_line sweeps 15 points; the 10-unit deadline sheds it.
        stream
            .write_all(format!("{}\n", request_line(3)).as_bytes())
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("id"), Some(&Json::Num(3.0)));
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("deadline_exceeded".into()))
        );
        assert_eq!(registry.counter("serve.deadline_sheds").get(), 1);
        assert!(server.drain().clean);
    }

    #[test]
    fn a_live_server_answers_stats_and_trace_requests_mid_workload() {
        let (server, registry) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Two real queries bracketing a stats probe, then a trace fetch
        // for the span trees those queries produced — all pipelined on
        // one connection, answered in input order.
        let payload = format!(
            "{}\n{}\n{}\n{}\n",
            request_line(1),
            r#"{"id":2,"stats":{}}"#,
            request_line(3),
            r#"{"id":4,"trace":{"last":2}}"#,
        );
        stream.write_all(payload.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<Json> = reader
            .lines()
            .map(|l| Json::parse(&l.unwrap()).unwrap())
            .collect();
        assert_eq!(replies.len(), 4);
        for (reply, id) in replies.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
            assert_eq!(reply.get("id"), Some(&Json::Num(id)));
        }

        // The stats reply observed the batch it rode in on: all four
        // requests (two queries, two introspections) were already
        // accounted when the snapshot was taken.
        let stats = replies[1].get("stats").expect("stats body");
        let counters = stats
            .get("registry")
            .and_then(|r| r.get("counters"))
            .expect("registry counters");
        assert_eq!(counters.get("serve.requests"), Some(&Json::Num(4.0)));
        assert_eq!(counters.get("serve.admin_requests"), Some(&Json::Num(2.0)));
        let traces_meta = stats.get("traces").expect("trace bookkeeping");
        assert_eq!(traces_meta.get("dropped_spans"), Some(&Json::Num(0.0)));

        // The trace fetch returned both span trees, each rooted at
        // serve.request with a derived (nonzero) trace id.
        let traces = replies[3].get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces.len(), 2);
        for trace in traces {
            let tree = trace.get("tree").and_then(Json::as_arr).unwrap();
            assert_eq!(tree.len(), 1);
            assert_eq!(
                tree[0].get("name"),
                Some(&Json::Str("serve.request".into()))
            );
            let hex = trace.get("trace_id").and_then(Json::as_str).unwrap();
            assert!(drone_telemetry::parse_id_hex(hex).is_some(), "{hex}");
            assert!(
                trace.get("spans").and_then(Json::as_f64).unwrap() > 1.0,
                "engine children recorded"
            );
        }

        assert_eq!(registry.counter("serve.admin_requests").get(), 2);
        assert!(server.drain().clean);
    }

    #[test]
    fn trace_fetch_by_id_returns_the_stamped_trace() {
        let (server, _registry) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let stamped = r#"{"id":1,"trace_id":"00000000deadbeef","query":{"ranges":{"wheelbase_mm":250,"cells":["3S"],"capacity_mah":2000},"objective":"max_flight_time"}}"#;
        let fetch = r#"{"id":2,"trace":{"trace_id":"00000000deadbeef"}}"#;
        stream
            .write_all(format!("{stamped}\n{fetch}\n").as_bytes())
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        let replies: Vec<Json> = reader
            .lines()
            .map(|l| Json::parse(&l.unwrap()).unwrap())
            .collect();
        assert_eq!(replies.len(), 2);
        let traces = replies[1].get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("trace_id"),
            Some(&Json::Str("00000000deadbeef".into()))
        );
        assert!(server.drain().clean);
    }
}
