//! Zero-dependency epoll/eventfd syscall shims for the reactor.
//!
//! The repo's ground rule is no external runtime deps, so there is no
//! `libc` or `mio` to lean on; this module is the `drone_math`-style
//! vendored equivalent — raw Linux syscalls through stable
//! `core::arch::asm!`, wrapped in safe RAII types (`OwnedFd` closes on
//! drop). Only the five calls the reactor needs are shimmed:
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`/`epoll_pwait`,
//! `eventfd2`, and `read`/`write` on the eventfd.
//!
//! Portability: the asm paths cover `linux + (x86_64 | aarch64)` — the
//! dev boxes and CI runners this repo targets. Elsewhere every entry
//! point returns `ENOSYS`-flavoured `io::Error`s, so the crate still
//! builds and the threaded [`crate::Server`] remains the portable
//! front-end.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never subscribed).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;
const EINTR: i32 = 4;

/// One readiness event. The kernel ABI packs this struct on x86_64
/// (4-byte `events` directly followed by the 8-byte `data`); other
/// architectures use natural alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// EPOLL* readiness bits.
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The registered token (copied out, packed-field safe).
    pub fn token(&self) -> u64 {
        self.data
    }

    /// The readiness bits (copied out, packed-field safe).
    pub fn readiness(&self) -> u32 {
        self.events
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
}

/// Raw 6-argument syscall. Unused trailing arguments are passed as 0;
/// the kernel ignores registers beyond a call's arity.
///
/// # Safety
///
/// The caller must uphold the invariants of the specific syscall:
/// valid fds, live buffers of the stated length, correct flag values.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// See the x86_64 variant.
///
/// # Safety
///
/// Same contract: the caller upholds the target syscall's invariants.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

/// Stub for unsupported targets: always `ENOSYS` (38), so the reactor
/// constructors fail with a clean `io::Error` instead of linking libc.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
unsafe fn syscall6(
    _n: usize,
    _a: usize,
    _b: usize,
    _c: usize,
    _d: usize,
    _e: usize,
    _f: usize,
) -> isize {
    -38
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 0;
    pub const EPOLL_CTL: usize = 0;
    pub const EVENTFD2: usize = 0;
    pub const EPOLL_CREATE1: usize = 0;
    pub const EPOLL_PWAIT: usize = 0;
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event as *mut EpollEvent
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Subscribes `fd` with the given interest bits and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Rewrites `fd`'s interest bits (the token rides along).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Unsubscribes `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for up to `timeout_ms` (−1 = forever, 0 = poll) and
    /// fills `events`. Returns the number of ready events; `EINTR`
    /// reports as 0 ready events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        let ret = unsafe {
            syscall6(
                nr::EPOLL_WAIT,
                self.fd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            )
        };
        // aarch64 never had plain epoll_wait; epoll_pwait with a null
        // sigmask is the same call. _NSIG/8 == 8 rides in sigsetsize.
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            )
        };
        match check(ret) {
            Err(e) if e.raw_os_error() == Some(EINTR) => Ok(0),
            other => other,
        }
    }
}

/// A nonblocking eventfd used to wake a reactor out of `epoll_wait`
/// (closed on drop).
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Adds 1 to the counter, waking any epoll watcher. A saturated
    /// counter (`EAGAIN`) is already a pending wakeup, so errors are
    /// ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = check(unsafe {
            syscall6(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                (&one as *const u64) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }

    /// Resets the counter so the next `signal` re-arms readiness.
    pub fn drain(&self) {
        let mut value: u64 = 0;
        let _ = check(unsafe {
            syscall6(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                (&mut value as *mut u64) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signal_wakes_an_epoll_wait() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd2");
        epoll.add(efd.raw(), EPOLLIN, 42).expect("ctl add");

        let mut events = vec![EpollEvent::zeroed(); 4];
        // Nothing pending: a zero-timeout poll returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Drained, the fd goes quiet again (level-triggered).
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        epoll.delete(efd.raw()).expect("ctl del");
    }

    #[test]
    fn sockets_report_read_readiness_and_rdhup() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7)
            .unwrap();

        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "idle socket");

        client.write_all(b"ping\n").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        drop(client);
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(
            events[0].readiness() & (EPOLLRDHUP | EPOLLHUP | EPOLLIN),
            0,
            "peer close must surface"
        );
    }
}
