//! A resilient query client: bounded retries with seeded-jitter
//! exponential backoff and a half-open circuit breaker.
//!
//! The retry shape mirrors the firmware link watchdog
//! (`drone_firmware::link::LinkMonitor`): delays double from an
//! initial value up to a ceiling and reset on recovery. On top of
//! that sits a circuit breaker: after `breaker_threshold` consecutive
//! transport-level call failures the client stops dialing for
//! `breaker_cooldown` calls (fast-failing each one), then lets a
//! single half-open probe through — success closes the circuit,
//! failure reopens it. The cooldown is counted in *calls*, not wall
//! time, so chaos-campaign runs are deterministic.
//!
//! Every call opens a fresh connection. That keeps one retry attempt
//! aligned with one connection — exactly the granularity the
//! [`crate::chaos::ChaosProxy`] injects faults at — and sidesteps
//! half-dead keepalive sockets entirely.
//!
//! Error classification:
//!
//! * **Transient** (retried): connect/read/write I/O errors, EOF or
//!   garbage before a correlated reply, `overloaded`, and
//!   `internal_error` — the server may well answer a fresh attempt.
//! * **Rejected** (not retried): `parse`, `bad_request`,
//!   `invalid_query`, `too_large`, `deadline_exceeded` — the server is
//!   healthy and has already said no; retrying is wasted load.
//!   A rejection also resets the breaker's failure count, since it
//!   proves the server is alive and speaking the protocol.

use crate::protocol::{self, ErrorKind, RequestError, TraceQuery};
use drone_explorer::{OptimizeRequest, Query};
use drone_math::rng::Pcg32;
use drone_telemetry::{derive_trace_id, Counter, Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for [`Client`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Retries after the first attempt fails transiently (so a call
    /// dials at most `1 + retries` connections).
    pub retries: u32,
    /// First retry delay in milliseconds; doubles per retry.
    pub backoff_initial_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_max_ms: u64,
    /// Seed for the backoff jitter stream (delays are scaled by a
    /// seeded factor in [0.5, 1.0] so synchronized clients desync).
    pub jitter_seed: u64,
    /// Consecutive failed calls before the breaker opens; `0` disables
    /// the breaker.
    pub breaker_threshold: u32,
    /// Calls fast-failed while the breaker is open, before the next
    /// half-open probe.
    pub breaker_cooldown: u32,
    /// Per-connection read timeout while waiting for the reply.
    pub reply_timeout: Duration,
    /// Seed for the causal trace ids stamped on every query call
    /// ([`drone_telemetry::derive_trace_id`] over the call id). Give
    /// concurrent clients distinct seeds so their trace ids never
    /// collide.
    pub trace_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            retries: 2,
            backoff_initial_ms: 25,
            backoff_max_ms: 400,
            jitter_seed: 1,
            breaker_threshold: 4,
            breaker_cooldown: 4,
            reply_timeout: Duration::from_secs(2),
            trace_seed: 0,
        }
    }
}

/// Why a [`Client::call`] did not return an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// The server answered with a typed, non-transient rejection.
    Rejected {
        /// The server's error object.
        error: RequestError,
        /// Connections dialed for this call.
        attempts: u32,
    },
    /// Every allowed attempt failed transiently.
    Exhausted {
        /// Connections dialed for this call.
        attempts: u32,
        /// Human-readable detail from the last attempt.
        last: String,
    },
    /// The circuit breaker is open; the call never dialed.
    BreakerOpen,
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Rejected { error, attempts } => {
                write!(f, "rejected after {attempts} attempt(s): {error}")
            }
            CallError::Exhausted { attempts, last } => {
                write!(f, "exhausted {attempts} attempt(s): {last}")
            }
            CallError::BreakerOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for CallError {}

/// A successful [`Client::call`]: the full reply document plus how
/// hard the client had to work for it.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSuccess {
    /// The whole reply line, parsed (`id`, `ok`, `answer`).
    pub reply: Json,
    /// Connections dialed for this call (1 = no retries needed).
    pub attempts: u32,
    /// The causal trace id stamped on the request, for fetching its
    /// span tree later via [`Client::fetch_trace`]. `None` for
    /// introspection calls, which are not traced.
    pub trace_id: Option<u64>,
}

/// Circuit-breaker state, counted in calls for determinism.
enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// What the breaker lets a call do.
enum Admit {
    /// Normal operation: full retry budget.
    Normal,
    /// Half-open probe: one attempt, no retries.
    Probe,
    /// Fast-fail without dialing.
    FastFail,
}

struct ClientMetrics {
    calls: Arc<Counter>,
    retries: Arc<Counter>,
    breaker_opens: Arc<Counter>,
    breaker_fast_fails: Arc<Counter>,
}

/// The resilient DSE query client. See the module docs for the retry
/// and breaker semantics.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    jitter: Pcg32,
    breaker: Breaker,
    next_id: u64,
    metrics: ClientMetrics,
}

impl Client {
    /// A client for the server at `addr`, reporting `client.*`
    /// counters into `registry`.
    pub fn new(addr: SocketAddr, config: ClientConfig, registry: &Registry) -> Client {
        Client {
            addr,
            config,
            jitter: Pcg32::new(config.jitter_seed, 0xC11E),
            breaker: Breaker::Closed { failures: 0 },
            next_id: 1,
            metrics: ClientMetrics {
                calls: registry.counter("client.calls"),
                retries: registry.counter("client.retries"),
                breaker_opens: registry.counter("client.breaker_opens"),
                breaker_fast_fails: registry.counter("client.breaker_fast_fails"),
            },
        }
    }

    /// Sends one query and returns the correlated reply, retrying
    /// transient failures within the configured budget. The request
    /// carries a deterministic causal `trace_id` (derived from the
    /// configured seed and the call id) which the server uses to label
    /// the span tree it records; [`CallSuccess::trace_id`] echoes it
    /// so the tree can be fetched with [`Client::fetch_trace`].
    ///
    /// # Errors
    ///
    /// [`CallError::Rejected`] for typed server rejections,
    /// [`CallError::Exhausted`] when the retry budget runs out,
    /// [`CallError::BreakerOpen`] while the breaker blocks dialing.
    pub fn call(&mut self, query: &Query) -> Result<CallSuccess, CallError> {
        let id = self.fresh_id();
        let trace_id = derive_trace_id(self.config.trace_seed, id);
        let line = protocol::request_to_json_traced(id, trace_id, query).render();
        self.call_line(&line, id, Some(trace_id))
    }

    /// Sends one optimize request and returns the correlated reply,
    /// with the same retry, breaker and tracing treatment as
    /// [`Client::call`].
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn optimize(&mut self, req: &OptimizeRequest) -> Result<CallSuccess, CallError> {
        let id = self.fresh_id();
        let trace_id = derive_trace_id(self.config.trace_seed, id);
        let line = protocol::optimize_request_to_json_traced(id, trace_id, req).render();
        self.call_line(&line, id, Some(trace_id))
    }

    /// Asks the server for its live stats snapshot (registry metrics,
    /// queue depth, trace-ring bookkeeping), through the same retry
    /// and breaker machinery as [`Client::call`].
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn stats(&mut self) -> Result<CallSuccess, CallError> {
        let id = self.fresh_id();
        let line = protocol::stats_request_json(id).render();
        self.call_line(&line, id, None)
    }

    /// Fetches the completed span tree for `trace_id` from the
    /// server's trace ring. The reply's `traces` array is empty when
    /// the trace has been evicted (or never existed).
    ///
    /// # Errors
    ///
    /// Same as [`Client::call`].
    pub fn fetch_trace(&mut self, trace_id: u64) -> Result<CallSuccess, CallError> {
        let id = self.fresh_id();
        let fetch = TraceQuery {
            last: 1,
            trace_id: Some(trace_id),
        };
        let line = protocol::trace_request_json(id, &fetch).render();
        self.call_line(&line, id, None)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The shared retry/breaker engine behind every call kind: sends
    /// one rendered request line and returns the correlated reply.
    fn call_line(
        &mut self,
        line: &str,
        id: u64,
        trace_id: Option<u64>,
    ) -> Result<CallSuccess, CallError> {
        self.metrics.calls.inc();
        let attempts_allowed = match self.admit() {
            Admit::FastFail => {
                self.metrics.breaker_fast_fails.inc();
                return Err(CallError::BreakerOpen);
            }
            Admit::Probe => 1,
            Admit::Normal => 1 + self.config.retries,
        };
        let mut last = String::new();
        for attempt in 1..=attempts_allowed {
            if attempt > 1 {
                self.metrics.retries.inc();
                std::thread::sleep(self.backoff_delay(attempt - 1));
            }
            match self.attempt(line, id) {
                Ok(reply) => {
                    if reply.get("ok") == Some(&Json::Bool(true)) {
                        self.on_success();
                        return Ok(CallSuccess {
                            reply,
                            attempts: attempt,
                            trace_id,
                        });
                    }
                    let error = reply_error(&reply);
                    if is_transient(error.kind) {
                        last = error.to_string();
                        continue;
                    }
                    // A typed rejection proves the server is healthy:
                    // it closes the breaker but fails the call.
                    self.on_success();
                    return Err(CallError::Rejected {
                        error,
                        attempts: attempt,
                    });
                }
                Err(detail) => last = detail,
            }
        }
        if self.on_failure() {
            self.metrics.breaker_opens.inc();
        }
        Err(CallError::Exhausted {
            attempts: attempts_allowed,
            last,
        })
    }

    /// One connection: dial, send the line, read until the reply with
    /// our id shows up. Uncorrelated lines (replies to injected
    /// garbage) are skipped, a few at most.
    fn attempt(&self, line: &str, id: u64) -> Result<Json, String> {
        let mut stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.reply_timeout));
        stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("half-close: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut null_id_error: Option<String> = None;
        for _ in 0..16 {
            let mut reply_line = String::new();
            match reader.read_line(&mut reply_line) {
                Ok(0) => {
                    return Err(null_id_error.map_or_else(
                        || "connection closed before a correlated reply".to_owned(),
                        |e| format!("closed after uncorrelated error: {e}"),
                    ))
                }
                Ok(_) => {}
                Err(e) => return Err(format!("read: {e}")),
            }
            let Ok(reply) = Json::parse(reply_line.trim_end()) else {
                // A truncated or garbled reply; keep reading — the
                // correlated one may still arrive intact.
                null_id_error = Some("garbled reply line".to_owned());
                continue;
            };
            match reply.get("id") {
                Some(&Json::Num(n)) if n == id as f64 => return Ok(reply),
                _ => {
                    // `id: null` errors can't be attributed (a garbage
                    // interleave, or our own line mangled in flight);
                    // remember the detail and keep reading.
                    null_id_error = Some(reply_error(&reply).to_string());
                }
            }
        }
        Err("no correlated reply within the skip budget".to_owned())
    }

    /// Delay before retry number `retry` (1-based): bounded
    /// exponential, scaled by a seeded jitter factor in [0.5, 1.0].
    /// `retry == 0` is tolerated and treated like the first retry —
    /// `retry - 1` used to underflow (a debug-build panic, and a
    /// 2^20-scaled delay in release) if a caller ever passed 0.
    fn backoff_delay(&mut self, retry: u32) -> Duration {
        let doubled = self
            .config
            .backoff_initial_ms
            .saturating_mul(1u64 << retry.saturating_sub(1).min(20));
        let base = doubled.min(self.config.backoff_max_ms);
        Duration::from_millis((base as f64 * self.jitter.uniform(0.5, 1.0)).round() as u64)
    }

    fn admit(&mut self) -> Admit {
        match &mut self.breaker {
            Breaker::Closed { .. } => Admit::Normal,
            Breaker::Open { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    Admit::FastFail
                } else {
                    self.breaker = Breaker::HalfOpen;
                    Admit::Probe
                }
            }
            Breaker::HalfOpen => Admit::Probe,
        }
    }

    fn on_success(&mut self) {
        self.breaker = Breaker::Closed { failures: 0 };
    }

    /// Records a failed call; true when this transition opened the
    /// breaker.
    fn on_failure(&mut self) -> bool {
        if self.config.breaker_threshold == 0 {
            return false;
        }
        let open = match self.breaker {
            Breaker::Closed { failures } => failures + 1 >= self.config.breaker_threshold,
            Breaker::HalfOpen => true,
            Breaker::Open { .. } => return false,
        };
        if open {
            self.breaker = Breaker::Open {
                remaining: self.config.breaker_cooldown,
            };
        } else if let Breaker::Closed { failures } = &mut self.breaker {
            *failures += 1;
        }
        open
    }
}

/// True for failures worth retrying: the server may answer next time.
fn is_transient(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Overloaded | ErrorKind::Internal)
}

/// The error object out of a reply document, tolerating any shape.
fn reply_error(reply: &Json) -> RequestError {
    let kind = reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .and_then(ErrorKind::from_wire)
        .unwrap_or(ErrorKind::Internal);
    let message = reply
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("malformed error reply")
        .to_owned();
    RequestError { kind, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use drone_components::battery::CellCount;
    use drone_explorer::{Explorer, GridRange, Objective, QueryRanges};
    use std::net::TcpListener;

    fn small_query(name: &str) -> Query {
        Query::new(
            name,
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                cells: vec![CellCount::S3],
                capacity_mah: GridRange::new(2000.0, 6000.0, 5),
                compute_power_w: GridRange::fixed(20.0),
                twr: GridRange::fixed(2.0),
                payload_g: GridRange::fixed(0.0),
            },
            Objective::MaxFlightTime,
        )
    }

    fn fast_config() -> ClientConfig {
        ClientConfig {
            backoff_initial_ms: 1,
            backoff_max_ms: 4,
            reply_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn a_clean_call_answers_on_the_first_attempt() {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        let mut client = Client::new(server.addr(), fast_config(), &registry);
        let success = client.call(&small_query("clean")).unwrap();
        assert_eq!(success.attempts, 1);
        assert_eq!(success.reply.get("ok"), Some(&Json::Bool(true)));
        assert!(success.reply.get("answer").is_some());
        assert_eq!(registry.counter("client.retries").get(), 0);
        assert_eq!(registry.counter("client.calls").get(), 1);
        assert!(server.drain().clean);
    }

    #[test]
    fn a_reset_connection_is_retried_to_success() {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        // A one-shot flaky front: first connection dropped on the
        // floor, later ones relayed verbatim to the real server.
        let front = TcpListener::bind("127.0.0.1:0").unwrap();
        let front_addr = front.local_addr().unwrap();
        let upstream = server.addr();
        let relay = std::thread::spawn(move || {
            let (first, _) = front.accept().unwrap();
            drop(first); // reset mid-handshake
            let (mut downstream, _) = front.accept().unwrap();
            let mut up = TcpStream::connect(upstream).unwrap();
            let mut down_read = downstream.try_clone().unwrap();
            let mut up_write = up.try_clone().unwrap();
            let pump = std::thread::spawn(move || {
                let _ = std::io::copy(&mut down_read, &mut up_write);
                let _ = up_write.shutdown(std::net::Shutdown::Write);
            });
            let _ = std::io::copy(&mut up, &mut downstream);
            pump.join().unwrap();
        });
        let mut client = Client::new(front_addr, fast_config(), &registry);
        let success = client.call(&small_query("retry")).unwrap();
        assert_eq!(success.attempts, 2);
        assert_eq!(registry.counter("client.retries").get(), 1);
        relay.join().unwrap();
        assert!(server.drain().clean);
    }

    #[test]
    fn typed_rejections_are_not_retried() {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        let mut client = Client::new(server.addr(), fast_config(), &registry);
        // An inverted range fails validation server-side.
        let mut bad = small_query("bad");
        bad.ranges.wheelbase_mm = GridRange {
            min: 450.0,
            max: 250.0,
            steps: 3,
        };
        match client.call(&bad) {
            Err(CallError::Rejected { error, attempts }) => {
                assert_eq!(error.kind, ErrorKind::InvalidQuery);
                assert_eq!(attempts, 1, "rejections must not burn retries");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(registry.counter("client.retries").get(), 0);
        assert!(server.drain().clean);
    }

    #[test]
    fn the_breaker_opens_fast_fails_and_probes_half_open() {
        let registry = Registry::with_wall_clock();
        // A port with nothing behind it: bind, note the address, drop.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = ClientConfig {
            retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: 2,
            ..fast_config()
        };
        let mut client = Client::new(dead, config, &registry);
        let query = small_query("dead");
        // Two failures open the breaker…
        assert!(matches!(
            client.call(&query),
            Err(CallError::Exhausted { .. })
        ));
        assert!(matches!(
            client.call(&query),
            Err(CallError::Exhausted { .. })
        ));
        assert_eq!(registry.counter("client.breaker_opens").get(), 1);
        // …the cooldown fast-fails without dialing…
        assert!(matches!(client.call(&query), Err(CallError::BreakerOpen)));
        assert!(matches!(client.call(&query), Err(CallError::BreakerOpen)));
        assert_eq!(registry.counter("client.breaker_fast_fails").get(), 2);
        // …and the half-open probe fails, reopening it.
        assert!(matches!(
            client.call(&query),
            Err(CallError::Exhausted { attempts: 1, .. })
        ));
        assert_eq!(registry.counter("client.breaker_opens").get(), 2);
        assert!(matches!(client.call(&query), Err(CallError::BreakerOpen)));
    }

    #[test]
    fn a_successful_probe_closes_the_breaker() {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        let config = ClientConfig {
            retries: 0,
            breaker_threshold: 1,
            breaker_cooldown: 0,
            ..fast_config()
        };
        // Open the breaker against a dead port, then point the same
        // breaker state at the live server for the probe.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let mut client = Client::new(dead, config, &registry);
        let query = small_query("probe");
        assert!(matches!(
            client.call(&query),
            Err(CallError::Exhausted { .. })
        ));
        client.addr = server.addr();
        // Cooldown 0: the very next call is the half-open probe.
        let success = client.call(&query).unwrap();
        assert_eq!(success.attempts, 1);
        assert!(matches!(client.breaker, Breaker::Closed { failures: 0 }));
        // And the circuit stays closed for normal calls.
        assert!(client.call(&query).is_ok());
        assert!(server.drain().clean);
    }

    #[test]
    fn a_call_stamps_a_trace_the_client_can_fetch_back() {
        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).unwrap();
        let config = ClientConfig {
            trace_seed: 99,
            ..fast_config()
        };
        let mut client = Client::new(server.addr(), config, &registry);
        let success = client.call(&small_query("traced")).unwrap();
        let trace_id = success.trace_id.expect("query calls are traced");
        assert_eq!(trace_id, drone_telemetry::derive_trace_id(99, 1));

        let fetched = client.fetch_trace(trace_id).unwrap();
        assert_eq!(fetched.trace_id, None, "introspection is not traced");
        let traces = fetched.reply.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("trace_id").and_then(Json::as_str),
            Some(drone_telemetry::id_hex(trace_id).as_str())
        );

        let stats = client.stats().unwrap();
        let counters = stats
            .reply
            .get("stats")
            .and_then(|s| s.get("registry"))
            .and_then(|r| r.get("counters"))
            .expect("registry counters");
        assert_eq!(counters.get("serve.admin_requests"), Some(&Json::Num(2.0)));
        assert!(server.drain().clean);
    }

    #[test]
    fn backoff_delays_are_pinned_for_retry_zero_one_and_past_the_cap() {
        let registry = Registry::with_wall_clock();
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut client = Client::new(addr, ClientConfig::default(), &registry);
        // Replicate the client's jitter stream so every delay pins
        // exactly, not just within bounds.
        let mut jitter = Pcg32::new(ClientConfig::default().jitter_seed, 0xC11E);
        let mut expect = |base_ms: f64| {
            let factor = jitter.uniform(0.5, 1.0);
            assert!((0.5..=1.0).contains(&factor), "jitter factor {factor}");
            Duration::from_millis((base_ms * factor).round() as u64)
        };

        // Regression: retry 0 used to compute `(0 - 1).min(20)` — a
        // debug-build panic and a 2^20-scaled delay in release. It now
        // saturates to the first-retry delay.
        let zero = client.backoff_delay(0);
        assert_eq!(zero, expect(25.0));
        assert!(
            zero <= Duration::from_millis(25),
            "retry 0 must not blow up"
        );

        let one = client.backoff_delay(1);
        assert_eq!(one, expect(25.0));
        assert!((13..=25).contains(&(one.as_millis() as u64)));

        // Past the shift cap the 400 ms ceiling bounds the base; the
        // jitter keeps the delay in [200, 400].
        let far = client.backoff_delay(21);
        assert_eq!(far, expect(400.0));
        assert!((200..=400).contains(&(far.as_millis() as u64)));
    }
}
