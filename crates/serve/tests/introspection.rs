//! Integration tests for the live introspection plane: the `stats`
//! wire snapshot must agree exactly with the in-process registry, the
//! server must answer introspection mid-workload without panicking or
//! leaking threads, and the span trees a traced batch records must be
//! byte-identical at every engine thread count.

use drone_explorer::{Explorer, QueryLimits};
use drone_serve::protocol::{handle_batch_traced, BatchPolicy, BatchTracing, ReplySlot};
use drone_serve::{Client, ClientConfig, Server, ServerConfig, Workload};
use drone_telemetry::{Clock, Json, Registry, TraceRing};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Pipelines `lines` on one connection and returns every reply parsed.
fn round_trip(addr: std::net::SocketAddr, lines: &[String]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload: String = lines.concat();
    stream.write_all(payload.as_bytes()).expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| Json::parse(&l.expect("read")).expect("parseable reply"))
        .collect()
}

/// Satellite 6: the registry snapshot a `stats` wire request returns
/// must equal the in-process `Registry::snapshot()` taken after the
/// drain — byte for byte — when the stats request is the last traffic
/// the server sees. The server accounts the whole batch *before*
/// resolving the stats slot, so nothing moves between the two.
#[test]
fn wire_stats_equal_the_in_process_snapshot_after_drain() {
    let registry = Registry::with_wall_clock();
    let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry).expect("bind");
    let mut workload = Workload::new(11, 0);
    let mut lines: Vec<String> = (0..6).map(|_| workload.next_request_line()).collect();
    lines.push("{\"id\":999,\"stats\":{}}\n".to_owned());
    let replies = round_trip(server.addr(), &lines);
    assert_eq!(replies.len(), 7);
    for reply in &replies {
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    }
    let wire_registry = replies[6]
        .get("stats")
        .and_then(|s| s.get("registry"))
        .expect("stats.registry")
        .clone();
    let stats = server.drain();
    assert!(stats.clean);
    assert_eq!(
        wire_registry.render(),
        registry.snapshot().render(),
        "wire snapshot diverged from the live registry"
    );
}

/// The acceptance path: a live server answers `stats` and `trace`
/// requests *while* seeded workload clients hammer it, with zero
/// panics caught and a clean drain joining every thread.
#[test]
fn introspection_answers_mid_workload_without_panics_or_leaks() {
    const SEED: u64 = 7;
    const CLIENTS: u64 = 3;
    const REQUESTS_PER_CLIENT: u64 = 8;
    let registry = Registry::with_wall_clock();
    let config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let server = Server::start(Explorer::new(2), config, &registry).expect("bind");
    let addr = server.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut workload = Workload::new(SEED, client);
                let lines: Vec<String> = (0..REQUESTS_PER_CLIENT)
                    .map(|_| workload.next_request_line())
                    .collect();
                let replies = round_trip(addr, &lines);
                assert_eq!(replies.len(), REQUESTS_PER_CLIENT as usize);
                replies
                    .iter()
                    .filter(|r| r.get("ok") == Some(&Json::Bool(true)))
                    .count()
            })
        })
        .collect();

    // Poll introspection from the side while the workload runs; every
    // probe must come back ok on a healthy server.
    let mut probe = Client::new(
        addr,
        ClientConfig {
            reply_timeout: Duration::from_secs(2),
            ..ClientConfig::default()
        },
        &registry,
    );
    for _ in 0..4 {
        let stats = probe.stats().expect("stats mid-workload");
        assert_eq!(stats.reply.get("ok"), Some(&Json::Bool(true)));
        let fetched = probe.fetch_trace(0xdead_beef).expect("trace mid-workload");
        // Unknown id: still an ok reply, with an empty traces array.
        assert_eq!(
            fetched
                .reply
                .get("traces")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let answered: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
    assert_eq!(answered, (CLIENTS * REQUESTS_PER_CLIENT) as usize);
    assert_eq!(registry.counter("serve.panics_caught").get(), 0);
    assert_eq!(registry.counter("serve.admin_requests").get(), 8);

    let stats = server.drain();
    assert!(stats.clean);
    assert_eq!(stats.threads_joined, 3 + 1, "workers plus acceptor");
}

/// Satellite 3, wire part: the span trees recorded for one seeded
/// workload batch must be byte-identical whatever the engine thread
/// count — scheduling may reorder execution, never the trace shape.
#[test]
fn traced_batches_are_byte_identical_across_thread_counts() {
    let render_traces = |threads: usize| -> String {
        let engine = Explorer::new(threads);
        let ring = TraceRing::new(64);
        let tracing = BatchTracing {
            ring: &ring,
            clock: Clock::sim(),
            seed: 42,
        };
        let mut workload = Workload::new(42, 1);
        let lines: Vec<String> = (0..10).map(|_| workload.next_request_line()).collect();
        let refs: Vec<&str> = lines.iter().map(|l| l.trim_end()).collect();
        let (slots, outcome) = handle_batch_traced(
            &engine,
            &refs,
            &QueryLimits::default(),
            BatchPolicy::default(),
            &tracing,
        );
        assert_eq!(slots.len(), 10);
        assert_eq!(outcome.answered, 10);
        assert!(slots.iter().all(|s| matches!(s, ReplySlot::Line(_))));
        assert_eq!(ring.dropped_spans(), 0);
        ring.last(10)
            .iter()
            .map(|t| t.deterministic_json().render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = render_traces(1);
    assert!(!serial.is_empty());
    assert_eq!(serial, render_traces(2));
    assert_eq!(serial, render_traces(8));
}
