//! Property-based tests for the server request path: no input —
//! arbitrary bytes, adversarial grids, hostile nesting — may panic
//! it, and every rejection must be a parseable structured error.

use drone_explorer::{Explorer, QueryLimits};
use drone_serve::protocol::{handle_batch, parse_request};
use drone_serve::{Server, ServerConfig, Workload};
use drone_telemetry::{Json, Registry};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn engine() -> Explorer {
    Explorer::new(1)
}

/// Every reply line must itself be valid JSON with an `ok` bool and,
/// when `ok` is false, a structured `error` object.
fn assert_reply_shape(reply: &str) {
    let doc = Json::parse(reply).expect("reply must be valid JSON");
    match doc.get("ok") {
        Some(&Json::Bool(true)) => {
            assert!(doc.get("answer").is_some(), "ok reply missing answer");
        }
        Some(&Json::Bool(false)) => {
            let error = doc.get("error").expect("error reply missing error object");
            assert!(error.get("kind").and_then(Json::as_str).is_some());
            assert!(error.get("message").and_then(Json::as_str).is_some());
        }
        other => panic!("reply has no ok bool: {other:?} in {reply}"),
    }
}

proptest! {
    /// Arbitrary byte junk (decoded lossily, as the server does)
    /// through the batch handler: one structured reply per line, no
    /// panics.
    #[test]
    fn arbitrary_bytes_get_structured_errors(raw in prop::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&raw);
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        let (replies, outcome) = handle_batch(&engine(), &lines, &QueryLimits::default());
        prop_assert_eq!(replies.len(), lines.len());
        for reply in &replies {
            assert_reply_shape(reply);
        }
        prop_assert_eq!(outcome.answered + outcome.rejected(), lines.len());
    }

    /// JSON-shaped junk: fuzz the numeric fields of an otherwise valid
    /// request with extreme magnitudes, NaN-producing strings, inverted
    /// ranges and absurd step counts. Never panics; either answers or
    /// rejects with a typed error.
    #[test]
    fn hostile_grids_never_panic(
        min in prop_oneof![any::<f64>(), -1.0e12..1.0e12, Just(f64::NAN), Just(f64::INFINITY)],
        max in prop_oneof![any::<f64>(), -1.0e12..1.0e12, Just(f64::NEG_INFINITY)],
        steps in prop_oneof![0u64..10, Just(u64::MAX / 2), 1_000_000u64..2_000_000],
        capacity in -1.0e9f64..1.0e9,
        rounds in 0u64..200,
    ) {
        let fmt = |v: f64| if v.is_finite() { format!("{v}") } else { "null".to_owned() };
        let line = format!(
            r#"{{"id":1,"query":{{"ranges":{{"wheelbase_mm":{{"min":{},"max":{},"steps":{}}},"cells":["3S"],"capacity_mah":{}}},"objective":"max_flight_time","refine_rounds":{}}}}}"#,
            fmt(min), fmt(max), steps, fmt(capacity), rounds,
        );
        let (replies, _) = handle_batch(&engine(), &[line.as_str()], &QueryLimits::default());
        prop_assert_eq!(replies.len(), 1);
        assert_reply_shape(&replies[0]);
    }

    /// The workload generator and the wire protocol agree: every
    /// generated request parses back to the query that produced it.
    #[test]
    fn workload_requests_round_trip(seed in any::<u64>(), client in 0u64..64) {
        let mut workload = Workload::new(seed, client);
        for _ in 0..4 {
            let line = workload.next_request_line();
            let parsed = parse_request(line.trim_end(), &QueryLimits::default());
            prop_assert!(parsed.is_ok(), "workload produced invalid request: {:?}", parsed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mid-line disconnects and partial-UTF-8 writes: an arbitrary
    /// prefix of a valid pipelined payload, delivered in arbitrarily
    /// split chunks, must yield exactly one in-order ok reply per
    /// fully-delivered request — never losing or reordering them —
    /// plus at most one structured error for the truncated tail. One
    /// request carries a multi-byte name, so cuts can land inside a
    /// UTF-8 sequence.
    #[test]
    fn split_payloads_never_lose_or_reorder_delivered_requests(
        keep_permille in 0u32..=1000,
        cuts in prop::collection::vec(0usize..4000, 0..6),
    ) {
        use drone_components::battery::CellCount;
        use drone_explorer::{GridRange, Objective, Query, QueryRanges};
        use drone_serve::request_to_json;

        let registry = Registry::with_wall_clock();
        let server = Server::start(Explorer::new(2), ServerConfig::default(), &registry)
            .expect("bind loopback");
        let mut payload: Vec<u8> = Vec::new();
        let mut line_ends: Vec<usize> = Vec::new();
        for id in 0..5u64 {
            let query = Query::new(
                &format!("sweep-π-{id}"),
                QueryRanges {
                    wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                    cells: vec![CellCount::S3],
                    capacity_mah: GridRange::new(2000.0, 6000.0, 3),
                    compute_power_w: GridRange::fixed(20.0),
                    twr: GridRange::fixed(2.0),
                    payload_g: GridRange::fixed(0.0),
                },
                Objective::MaxFlightTime,
            );
            payload.extend_from_slice(request_to_json(id, &query).render().as_bytes());
            payload.push(b'\n');
            line_ends.push(payload.len());
        }
        let keep = (payload.len() as u64 * u64::from(keep_permille) / 1000) as usize;
        let fully_delivered = line_ends.iter().filter(|&&end| end <= keep).count();

        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (keep + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut sent = 0usize;
        for point in points.into_iter().chain(std::iter::once(keep)) {
            stream.write_all(&payload[sent..point]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
            sent = point;
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        let replies: Vec<String> = BufReader::new(stream)
            .lines()
            .map(|l| l.unwrap())
            .collect();
        prop_assert!(
            replies.len() == fully_delivered || replies.len() == fully_delivered + 1,
            "{} complete requests sent, {} replies", fully_delivered, replies.len()
        );
        for (id, reply) in replies.iter().take(fully_delivered).enumerate() {
            assert_reply_shape(reply);
            let doc = Json::parse(reply).unwrap();
            prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{}", reply);
            prop_assert_eq!(doc.get("id"), Some(&Json::Num(id as f64)), "{}", reply);
        }
        // The truncated tail, if it produced anything, produced one
        // structured error — never a bogus answer.
        if replies.len() == fully_delivered + 1 {
            assert_reply_shape(&replies[fully_delivered]);
            let doc = Json::parse(&replies[fully_delivered]).unwrap();
            prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        }
        let stats = server.drain();
        prop_assert!(stats.clean);
    }
}

/// End-to-end: junk bytes and valid requests interleaved over a real
/// socket. The server answers the valid ones, rejects the junk with
/// structured errors, and drains with every thread joined.
#[test]
fn socket_survives_junk_interleaved_with_valid_requests() {
    let registry = Registry::with_wall_clock();
    let server =
        Server::start(Explorer::new(2), ServerConfig::default(), &registry).expect("bind loopback");
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut workload = Workload::new(9, 0);
    let mut expected_ok = 0usize;
    let mut expected_err = 0usize;
    let mut payload: Vec<u8> = Vec::new();
    for i in 0..12 {
        if i % 3 == 0 {
            payload.extend_from_slice(b"\x00\xffgarbage {]\n");
            expected_err += 1;
        } else {
            payload.extend_from_slice(workload.next_request_line().as_bytes());
            expected_ok += 1;
        }
    }
    stream.write_all(&payload).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut replies = String::new();
    BufReader::new(stream).read_to_string(&mut replies).unwrap();
    let lines: Vec<&str> = replies.lines().collect();
    assert_eq!(lines.len(), expected_ok + expected_err);
    let oks = lines
        .iter()
        .filter(|l| Json::parse(l).unwrap().get("ok") == Some(&Json::Bool(true)))
        .count();
    assert_eq!(oks, expected_ok);
    for line in &lines {
        assert_reply_shape(line);
    }
    let stats = server.drain();
    assert_eq!(
        stats.threads_joined,
        ServerConfig::default().workers + 1,
        "drain must join the acceptor and every worker"
    );
    assert!(stats.clean);
}

/// Property tests for the epoll reactor front-end and the sharded
/// scatter/gather router. Gated like `drone_serve::sys`: the raw
/// epoll shims exist only on Linux x86_64/aarch64.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod reactor_props {
    use super::*;
    use drone_serve::{ReactorConfig, ReactorServer, Router, RouterConfig};
    use std::time::{Duration, Instant};

    fn drip_chunks(stream: &mut TcpStream, payload: &[u8], cuts: Vec<usize>, keep: usize) {
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (keep + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut sent = 0usize;
        for point in points.into_iter().chain(std::iter::once(keep)) {
            stream.write_all(&payload[sent..point]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
            sent = point;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The reactor analogue of the threaded split-payload
        /// property: an arbitrary prefix of a pipelined payload,
        /// delivered in arbitrarily split chunks across epoll
        /// readiness events, yields exactly one in-order ok reply per
        /// fully-delivered request — complete requests are never lost
        /// or reordered — plus at most one structured error for the
        /// truncated tail.
        #[test]
        fn reactor_never_loses_or_reorders_chunked_requests(
            keep_permille in 0u32..=1000,
            cuts in prop::collection::vec(0usize..4000, 0..6),
        ) {
            let registry = Registry::with_wall_clock();
            let server = ReactorServer::start(
                Explorer::new(2),
                ReactorConfig::default(),
                &registry,
            ).expect("bind reactor");
            let mut payload: Vec<u8> = Vec::new();
            let mut line_ends: Vec<usize> = Vec::new();
            let mut workload = Workload::new(13, 0);
            for _ in 0..5u64 {
                payload.extend_from_slice(workload.next_request_line().as_bytes());
                line_ends.push(payload.len());
            }
            let keep = (payload.len() as u64 * u64::from(keep_permille) / 1000) as usize;
            let fully_delivered = line_ends.iter().filter(|&&end| end <= keep).count();

            let mut stream = TcpStream::connect(server.addr()).unwrap();
            drip_chunks(&mut stream, &payload, cuts, keep);
            stream.shutdown(std::net::Shutdown::Write).unwrap();

            let replies: Vec<String> = BufReader::new(stream)
                .lines()
                .map(|l| l.unwrap())
                .collect();
            prop_assert!(
                replies.len() == fully_delivered || replies.len() == fully_delivered + 1,
                "{} complete requests sent, {} replies", fully_delivered, replies.len()
            );
            for (i, reply) in replies.iter().take(fully_delivered).enumerate() {
                assert_reply_shape(reply);
                let doc = Json::parse(reply).unwrap();
                prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{}", reply);
                prop_assert_eq!(doc.get("id"), Some(&Json::Num(i as f64)), "{}", reply);
            }
            if replies.len() == fully_delivered + 1 {
                let doc = Json::parse(&replies[fully_delivered]).unwrap();
                prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
            }
            let stats = server.drain();
            prop_assert!(stats.clean);
        }

        /// An oversized line that crosses the byte cap while still
        /// unterminated gets one `too_large` refusal, and the framer
        /// resynchronizes at the next newline *even when that newline
        /// lands mid-chunk*: the requests before and after the blob
        /// are both answered, in order. The pause between the two
        /// phases guarantees the reactor buffers the over-cap prefix
        /// before the terminating newline exists anywhere (a long
        /// line that completes within one buffered read is fed to the
        /// parser instead — that is the framer's documented contract).
        #[test]
        fn reactor_resynchronizes_after_an_oversized_line_split_anywhere(
            over_cap in 1usize..600,
            tail_len in 1usize..1500,
            cuts_before in prop::collection::vec(0usize..2000, 0..4),
            cuts_after in prop::collection::vec(0usize..2000, 0..4),
        ) {
            let registry = Registry::with_wall_clock();
            let config = ReactorConfig {
                max_line_bytes: 512,
                ..ReactorConfig::default()
            };
            let server = ReactorServer::start(Explorer::new(2), config, &registry)
                .expect("bind reactor");
            let mut workload = Workload::new(17, 0);
            // Phase one: a full request, then 512 + over_cap blob
            // bytes with no newline in sight.
            let mut before: Vec<u8> = Vec::new();
            before.extend_from_slice(workload.next_request_line().as_bytes());
            before.extend_from_slice(&vec![b'x'; 512 + over_cap]);
            // Phase two: the rest of the blob, its terminating
            // newline mid-chunk, and a second full request.
            let mut after: Vec<u8> = vec![b'x'; tail_len];
            after.push(b'\n');
            after.extend_from_slice(workload.next_request_line().as_bytes());

            let mut stream = TcpStream::connect(server.addr()).unwrap();
            let keep = before.len();
            drip_chunks(&mut stream, &before, cuts_before, keep);
            std::thread::sleep(Duration::from_millis(60));
            let keep = after.len();
            drip_chunks(&mut stream, &after, cuts_after, keep);
            stream.shutdown(std::net::Shutdown::Write).unwrap();

            let replies: Vec<String> = BufReader::new(stream)
                .lines()
                .map(|l| l.unwrap())
                .collect();
            prop_assert_eq!(replies.len(), 3, "{:?}", replies);
            let first = Json::parse(&replies[0]).unwrap();
            prop_assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{}", replies[0]);
            let refusal = Json::parse(&replies[1]).unwrap();
            prop_assert_eq!(refusal.get("ok"), Some(&Json::Bool(false)));
            prop_assert_eq!(
                refusal.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("too_large"),
                "{}", replies[1]
            );
            let third = Json::parse(&replies[2]).unwrap();
            prop_assert_eq!(third.get("ok"), Some(&Json::Bool(true)), "{}", replies[2]);
            let stats = server.drain();
            prop_assert!(stats.clean);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Slow-loris drips at arbitrary cadence: a connection that
        /// keeps sending bytes but never completes a request line is
        /// refused with a typed `deadline_exceeded` no earlier than
        /// the progress deadline and well within budget — byte
        /// arrival alone must not reset the clock.
        #[test]
        fn slow_loris_drips_are_refused_within_budget(
            drip_ms in 15u64..45,
            prefix_len in 1usize..8,
        ) {
            let deadline = Duration::from_millis(150);
            let registry = Registry::with_wall_clock();
            let config = ReactorConfig {
                line_deadline: Some(deadline),
                ..ReactorConfig::default()
            };
            let server = ReactorServer::start(Explorer::new(1), config, &registry)
                .expect("bind reactor");
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all("p".repeat(prefix_len).as_bytes()).unwrap();
            let started = Instant::now();
            // Drip from a background thread while this thread blocks
            // in read_line, so the refusal is consumed the moment it
            // lands (a post-refusal drip write races an RST that could
            // discard an unread reply).
            let drip = {
                let mut clone = stream.try_clone().unwrap();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        std::thread::sleep(Duration::from_millis(drip_ms));
                        if clone.write_all(b"x").is_err() {
                            break;
                        }
                    }
                })
            };
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut line = String::new();
            BufReader::new(&stream).read_line(&mut line).unwrap();
            let elapsed = started.elapsed();
            let doc = Json::parse(&line).unwrap();
            prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{}", line);
            prop_assert_eq!(
                doc.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("deadline_exceeded"),
                "{}", line
            );
            prop_assert!(elapsed >= deadline, "refused early: {elapsed:?}");
            prop_assert!(elapsed < Duration::from_secs(4), "refused late: {elapsed:?}");
            drop(stream);
            drip.join().unwrap();
            let stats = server.drain();
            prop_assert!(stats.clean);
        }

        /// Scatter/gather parity: the same pipelined workload through
        /// a 1-shard and a 4-shard router produces byte-identical
        /// reply lines — merged Pareto frontiers, counts and
        /// incumbents do not depend on the shard count. Workload
        /// queries include refinement rounds ~25% of the time, so the
        /// router-driven refinement recurrence is covered too.
        #[test]
        fn router_replies_are_byte_identical_at_one_and_four_shards(
            seed in any::<u64>(),
            client in 0u64..16,
        ) {
            let mut payload = String::new();
            let mut workload = Workload::new(seed, client);
            for _ in 0..3 {
                payload.push_str(&workload.next_request_line());
            }
            let run = |shards: usize| -> Vec<String> {
                let registry = Registry::with_wall_clock();
                let config = RouterConfig {
                    shards,
                    reactor: ReactorConfig {
                        reactors: 1,
                        ..ReactorConfig::default()
                    },
                };
                let router = Router::start(|| Explorer::new(1), config, &registry)
                    .expect("bind router");
                let mut stream = TcpStream::connect(router.addr()).unwrap();
                stream.write_all(payload.as_bytes()).unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let replies: Vec<String> = BufReader::new(stream)
                    .lines()
                    .map(|l| l.unwrap())
                    .collect();
                let stats = router.drain();
                assert!(stats.clean, "router drain must join every thread");
                replies
            };
            let one = run(1);
            let four = run(4);
            prop_assert_eq!(one.len(), 3);
            for reply in &one {
                assert_reply_shape(reply);
                let doc = Json::parse(reply).unwrap();
                prop_assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{}", reply);
            }
            prop_assert_eq!(one, four, "shard count changed the reply bytes");
        }
    }
}

/// A client that opens a connection, sends nothing and hangs up must
/// not wedge a worker or leave threads behind.
#[test]
fn silent_clients_do_not_wedge_the_pool() {
    let registry = Registry::with_wall_clock();
    let server =
        Server::start(Explorer::new(1), ServerConfig::default(), &registry).expect("bind loopback");
    for _ in 0..3 {
        let stream = TcpStream::connect(server.addr()).unwrap();
        drop(stream);
    }
    // A real request still gets through afterwards.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut workload = Workload::new(1, 0);
    stream
        .write_all(workload.next_request_line().as_bytes())
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert_eq!(
        Json::parse(&line).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    let stats = server.drain();
    assert!(stats.clean);
}
