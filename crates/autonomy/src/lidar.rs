//! Simulated planar LiDAR over a world of axis-aligned box obstacles —
//! the stand-in for the paper's Table 4 LiDAR payloads (Ultra Puck
//! class: 360°, tens of metres of range).

use drone_math::{Pcg32, Vec3};
use drone_sim::RigidBodyState;
use serde::{Deserialize, Serialize};

/// An axis-aligned box obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Obstacle {
    /// Creates a box from two corners (normalized).
    pub fn new(a: Vec3, b: Vec3) -> Obstacle {
        Obstacle {
            min: Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Whether a point lies inside the box.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Ray/box intersection distance (slab method), if the ray starting
    /// at `origin` along unit `dir` hits within `max_range`.
    pub fn raycast(&self, origin: Vec3, dir: Vec3, max_range: f64) -> Option<f64> {
        let mut t_near = 0.0f64;
        let mut t_far = max_range;
        for axis in 0..3 {
            let o = origin[axis];
            let d = dir[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let mut t0 = (lo - o) / d;
            let mut t1 = (hi - o) / d;
            if t0 > t1 {
                std::mem::swap(&mut t0, &mut t1);
            }
            t_near = t_near.max(t0);
            t_far = t_far.min(t1);
            if t_near > t_far {
                return None;
            }
        }
        (t_near <= max_range && t_near >= 0.0).then_some(t_near)
    }
}

/// A static world of box obstacles for the LiDAR to see.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObstacleWorld {
    /// The obstacles.
    pub obstacles: Vec<Obstacle>,
}

impl ObstacleWorld {
    /// An empty world.
    pub fn new() -> ObstacleWorld {
        ObstacleWorld::default()
    }

    /// Adds a box obstacle.
    pub fn add_box(&mut self, a: Vec3, b: Vec3) -> &mut Self {
        self.obstacles.push(Obstacle::new(a, b));
        self
    }

    /// Whether a point is inside any obstacle (collision test).
    pub fn collides(&self, p: Vec3) -> bool {
        self.obstacles.iter().any(|o| o.contains(p))
    }

    /// Nearest hit distance along a ray, if any.
    pub fn raycast(&self, origin: Vec3, dir: Vec3, max_range: f64) -> Option<f64> {
        self.obstacles
            .iter()
            .filter_map(|o| o.raycast(origin, dir, max_range))
            .min_by(f64::total_cmp)
    }
}

/// One LiDAR return.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LidarReturn {
    /// Beam azimuth in the world frame, rad.
    pub azimuth: f64,
    /// Measured range, m (= max range when nothing was hit).
    pub range: f64,
    /// Whether an obstacle was hit within range.
    pub hit: bool,
}

/// A horizontally scanning LiDAR.
///
/// # Example
///
/// ```
/// use drone_autonomy::lidar::{Lidar, ObstacleWorld};
/// use drone_math::Vec3;
/// use drone_sim::RigidBodyState;
///
/// let mut world = ObstacleWorld::new();
/// world.add_box(Vec3::new(4.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 20.0));
/// let mut lidar = Lidar::new(36, 30.0, 0.01, 3);
/// let scan = lidar.scan(&world, &RigidBodyState::at_altitude(10.0));
/// assert!(scan.iter().any(|r| r.hit));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lidar {
    beams: usize,
    max_range: f64,
    range_noise: f64,
    rng: Pcg32,
}

impl Lidar {
    /// Creates a scanner with `beams` evenly spaced azimuths, `max_range`
    /// metres and relative range noise `range_noise`.
    ///
    /// # Panics
    ///
    /// Panics on zero beams or non-positive range.
    pub fn new(beams: usize, max_range: f64, range_noise: f64, seed: u64) -> Lidar {
        assert!(beams > 0, "need at least one beam");
        assert!(max_range > 0.0, "range must be positive");
        Lidar {
            beams,
            max_range,
            range_noise,
            rng: Pcg32::seed_from(seed),
        }
    }

    /// Maximum range, m.
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// Performs one 360° scan from the vehicle's position (beams stay in
    /// the world horizontal plane, like a gimballed scanner).
    pub fn scan(&mut self, world: &ObstacleWorld, state: &RigidBodyState) -> Vec<LidarReturn> {
        let origin = state.position;
        (0..self.beams)
            .map(|i| {
                let azimuth = i as f64 / self.beams as f64 * std::f64::consts::TAU;
                let dir = Vec3::new(azimuth.cos(), azimuth.sin(), 0.0);
                match world.raycast(origin, dir, self.max_range) {
                    Some(d) => {
                        let noisy =
                            (d * (1.0 + self.rng.normal_with(0.0, self.range_noise))).max(0.05);
                        LidarReturn {
                            azimuth,
                            range: noisy.min(self.max_range),
                            hit: true,
                        }
                    }
                    None => LidarReturn {
                        azimuth,
                        range: self.max_range,
                        hit: false,
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall_world() -> ObstacleWorld {
        let mut w = ObstacleWorld::new();
        w.add_box(Vec3::new(5.0, -10.0, 0.0), Vec3::new(6.0, 10.0, 20.0));
        w
    }

    #[test]
    fn raycast_hits_facing_wall() {
        let w = wall_world();
        let d = w
            .raycast(Vec3::new(0.0, 0.0, 5.0), Vec3::X, 30.0)
            .expect("hit");
        assert!((d - 5.0).abs() < 1e-9, "distance {d}");
    }

    #[test]
    fn raycast_misses_behind() {
        let w = wall_world();
        assert!(w
            .raycast(Vec3::new(0.0, 0.0, 5.0), -Vec3::X, 30.0)
            .is_none());
        assert!(w.raycast(Vec3::new(0.0, 0.0, 5.0), Vec3::Y, 30.0).is_none());
    }

    #[test]
    fn raycast_respects_max_range() {
        let w = wall_world();
        assert!(w.raycast(Vec3::new(0.0, 0.0, 5.0), Vec3::X, 4.0).is_none());
    }

    #[test]
    fn nearest_of_two_obstacles_wins() {
        let mut w = wall_world();
        w.add_box(Vec3::new(2.0, -1.0, 0.0), Vec3::new(3.0, 1.0, 20.0));
        let d = w
            .raycast(Vec3::new(0.0, 0.0, 5.0), Vec3::X, 30.0)
            .expect("hit");
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn collision_test() {
        let w = wall_world();
        assert!(w.collides(Vec3::new(5.5, 0.0, 5.0)));
        assert!(!w.collides(Vec3::new(0.0, 0.0, 5.0)));
    }

    #[test]
    fn scan_sees_wall_on_correct_side() {
        let mut lidar = Lidar::new(72, 30.0, 0.0, 1);
        let scan = lidar.scan(&wall_world(), &RigidBodyState::at_altitude(5.0));
        // The beam along +X hits at ~5 m; the beam along −X misses.
        let forward = &scan[0];
        assert!(
            forward.hit && (forward.range - 5.0).abs() < 0.1,
            "{forward:?}"
        );
        let backward = &scan[36];
        assert!(!backward.hit);
    }

    #[test]
    fn ray_starting_inside_reports_zero_distance() {
        let w = wall_world();
        let d = w
            .raycast(Vec3::new(5.5, 0.0, 5.0), Vec3::X, 30.0)
            .expect("inside");
        assert!(d.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one beam")]
    fn zero_beams_panics() {
        let _ = Lidar::new(0, 10.0, 0.0, 0);
    }
}
