//! 2-D occupancy grid mapping.
//!
//! The grid covers the flight altitude plane: cells are unknown until a
//! LiDAR ray crosses them (free) or ends on them (occupied). Log-odds
//! style counting keeps single spurious returns from flipping cells.

use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// Tri-state cell classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellState {
    /// Never observed.
    Unknown,
    /// Observed traversable.
    Free,
    /// Observed blocked.
    Occupied,
}

/// A fixed-size 2-D occupancy grid.
///
/// # Example
///
/// ```
/// use drone_autonomy::grid::{CellState, OccupancyGrid};
/// let mut g = OccupancyGrid::new(10, 10, 1.0, 0.0, 0.0);
/// g.set_occupied(5, 5);
/// assert_eq!(g.state(5, 5), CellState::Occupied);
/// assert_eq!(g.state(0, 0), CellState::Unknown);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OccupancyGrid {
    width: usize,
    height: usize,
    resolution: f64,
    origin_x: f64,
    origin_y: f64,
    /// Signed evidence counter per cell: positive = occupied.
    evidence: Vec<i32>,
}

/// Evidence threshold before a cell flips state.
const OCCUPIED_THRESHOLD: i32 = 2;
const FREE_THRESHOLD: i32 = -2;
/// Evidence clamp (bounds how long stale evidence persists).
const EVIDENCE_CLAMP: i32 = 20;

impl OccupancyGrid {
    /// Creates an all-unknown grid: `width × height` cells of
    /// `resolution` metres, with world coordinates starting at
    /// `(origin_x, origin_y)`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or non-positive resolution.
    pub fn new(
        width: usize,
        height: usize,
        resolution: f64,
        origin_x: f64,
        origin_y: f64,
    ) -> OccupancyGrid {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        assert!(resolution > 0.0, "resolution must be positive");
        OccupancyGrid {
            width,
            height,
            resolution,
            origin_x,
            origin_y,
            evidence: vec![0; width * height],
        }
    }

    /// Grid width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell size, metres.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// World position of a cell centre.
    pub fn cell_center(&self, x: usize, y: usize) -> (f64, f64) {
        (
            self.origin_x + (x as f64 + 0.5) * self.resolution,
            self.origin_y + (y as f64 + 0.5) * self.resolution,
        )
    }

    /// Cell containing a world point, or `None` outside the grid.
    pub fn world_to_cell(&self, wx: f64, wy: f64) -> Option<(usize, usize)> {
        let cx = (wx - self.origin_x) / self.resolution;
        let cy = (wy - self.origin_y) / self.resolution;
        if cx < 0.0 || cy < 0.0 {
            return None;
        }
        let (cx, cy) = (cx as usize, cy as usize);
        (cx < self.width && cy < self.height).then_some((cx, cy))
    }

    fn index(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.width && y < self.height,
            "cell ({x},{y}) out of grid"
        );
        y * self.width + x
    }

    /// Classification of a cell.
    ///
    /// # Panics
    ///
    /// Panics for out-of-grid indices.
    pub fn state(&self, x: usize, y: usize) -> CellState {
        let e = self.evidence[self.index(x, y)];
        if e >= OCCUPIED_THRESHOLD {
            CellState::Occupied
        } else if e <= FREE_THRESHOLD {
            CellState::Free
        } else {
            CellState::Unknown
        }
    }

    /// Marks a cell directly occupied (bypassing evidence counting).
    pub fn set_occupied(&mut self, x: usize, y: usize) {
        let i = self.index(x, y);
        self.evidence[i] = EVIDENCE_CLAMP;
    }

    /// Marks a cell directly free.
    pub fn set_free(&mut self, x: usize, y: usize) {
        let i = self.index(x, y);
        self.evidence[i] = -EVIDENCE_CLAMP;
    }

    fn add_evidence(&mut self, x: usize, y: usize, delta: i32) {
        let i = self.index(x, y);
        self.evidence[i] = (self.evidence[i] + delta).clamp(-EVIDENCE_CLAMP, EVIDENCE_CLAMP);
    }

    /// Integrates one LiDAR ray: cells along the beam gain free evidence;
    /// the end cell gains occupied evidence when `hit` is true. Out-of-
    /// grid portions are ignored.
    pub fn integrate_ray(&mut self, from: Vec3, to: Vec3, hit: bool) {
        let Some((x0, y0)) = self.world_to_cell(from.x, from.y) else {
            return;
        };
        let Some((x1, y1)) = self.world_to_cell(to.x, to.y) else {
            return;
        };
        // Bresenham.
        let (mut x, mut y) = (x0 as isize, y0 as isize);
        let (x1, y1) = (x1 as isize, y1 as isize);
        let dx = (x1 - x).abs();
        let dy = -(y1 - y).abs();
        let sx = if x < x1 { 1 } else { -1 };
        let sy = if y < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            let at_end = x == x1 && y == y1;
            if !at_end {
                self.add_evidence(x as usize, y as usize, -1);
            } else {
                if hit {
                    self.add_evidence(x as usize, y as usize, 3);
                } else {
                    self.add_evidence(x as usize, y as usize, -1);
                }
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Returns a copy with every occupied cell inflated by `radius`
    /// metres — the planner's safety margin for the airframe span.
    pub fn inflated(&self, radius: f64) -> OccupancyGrid {
        let r_cells = (radius / self.resolution).ceil() as isize;
        let mut out = self.clone();
        for y in 0..self.height {
            for x in 0..self.width {
                if self.state(x, y) != CellState::Occupied {
                    continue;
                }
                for dy in -r_cells..=r_cells {
                    for dx in -r_cells..=r_cells {
                        if dx * dx + dy * dy > r_cells * r_cells {
                            continue;
                        }
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        if nx >= 0
                            && ny >= 0
                            && (nx as usize) < self.width
                            && (ny as usize) < self.height
                        {
                            out.set_occupied(nx as usize, ny as usize);
                        }
                    }
                }
            }
        }
        out
    }

    /// Fraction of cells that have been observed (free or occupied) — the
    /// coverage metric for mapping missions.
    pub fn coverage(&self) -> f64 {
        let known = self
            .evidence
            .iter()
            .filter(|&&e| e >= OCCUPIED_THRESHOLD || e <= FREE_THRESHOLD)
            .count();
        known as f64 / self.evidence.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_roundtrip() {
        let g = OccupancyGrid::new(20, 10, 0.5, -5.0, -2.5);
        let (wx, wy) = g.cell_center(4, 3);
        assert_eq!(g.world_to_cell(wx, wy), Some((4, 3)));
        assert_eq!(g.world_to_cell(-100.0, 0.0), None);
        assert_eq!(g.world_to_cell(5.1, 0.0), None);
    }

    #[test]
    fn ray_carves_free_space_and_marks_hit() {
        let mut g = OccupancyGrid::new(20, 20, 1.0, 0.0, 0.0);
        // One ray integration is below threshold; repeat to accumulate.
        for _ in 0..3 {
            g.integrate_ray(Vec3::new(1.5, 10.5, 0.0), Vec3::new(15.5, 10.5, 0.0), true);
        }
        assert_eq!(g.state(5, 10), CellState::Free);
        assert_eq!(g.state(15, 10), CellState::Occupied);
        assert_eq!(g.state(5, 5), CellState::Unknown);
    }

    #[test]
    fn single_spurious_return_does_not_flip_a_cell() {
        let mut g = OccupancyGrid::new(10, 10, 1.0, 0.0, 0.0);
        g.integrate_ray(Vec3::new(0.5, 0.5, 0.0), Vec3::new(5.5, 0.5, 0.0), true);
        // Evidence +3 marks occupied after 1 hit (3 ≥ threshold 2), but a
        // later pass-through ray erodes it back below threshold.
        assert_eq!(g.state(5, 0), CellState::Occupied);
        for _ in 0..3 {
            g.integrate_ray(Vec3::new(0.5, 0.5, 0.0), Vec3::new(8.5, 0.5, 0.0), false);
        }
        assert_ne!(g.state(5, 0), CellState::Occupied, "stale hit should erode");
    }

    #[test]
    fn no_hit_ray_frees_the_end_cell() {
        let mut g = OccupancyGrid::new(10, 10, 1.0, 0.0, 0.0);
        for _ in 0..2 {
            g.integrate_ray(Vec3::new(0.5, 5.5, 0.0), Vec3::new(9.5, 5.5, 0.0), false);
        }
        assert_eq!(g.state(9, 5), CellState::Free);
    }

    #[test]
    fn inflation_expands_obstacles() {
        let mut g = OccupancyGrid::new(11, 11, 1.0, 0.0, 0.0);
        g.set_occupied(5, 5);
        let inflated = g.inflated(2.0);
        assert_eq!(inflated.state(5, 7), CellState::Occupied);
        assert_eq!(inflated.state(3, 5), CellState::Occupied);
        assert_eq!(inflated.state(5, 8), CellState::Unknown);
        // Original untouched.
        assert_eq!(g.state(5, 7), CellState::Unknown);
    }

    #[test]
    fn coverage_grows_with_observation() {
        let mut g = OccupancyGrid::new(10, 10, 1.0, 0.0, 0.0);
        assert_eq!(g.coverage(), 0.0);
        for y in 0..10 {
            for _ in 0..2 {
                g.integrate_ray(
                    Vec3::new(0.5, y as f64 + 0.5, 0.0),
                    Vec3::new(9.5, y as f64 + 0.5, 0.0),
                    false,
                );
            }
        }
        assert!(g.coverage() > 0.9, "coverage {}", g.coverage());
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn out_of_grid_state_panics() {
        let g = OccupancyGrid::new(5, 5, 1.0, 0.0, 0.0);
        let _ = g.state(5, 0);
    }
}
