//! A* path planning over the occupancy grid, with path simplification
//! and mission synthesis — the paper's "Planning" / "Navigation &
//! trajectory" outer-loop box (Table 1).

use crate::grid::{CellState, OccupancyGrid};
use drone_firmware::{Mission, MissionItem};
use drone_math::Vec3;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A grid cell on a path.
pub type Cell = (usize, usize);

#[derive(Debug, PartialEq)]
struct Node {
    cell: Cell,
    f: f64,
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other.f.total_cmp(&self.f)
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether the planner may traverse a cell: free or unknown (optimistic
/// planning, like real exploration stacks), never occupied.
fn traversable(grid: &OccupancyGrid, cell: Cell) -> bool {
    grid.state(cell.0, cell.1) != CellState::Occupied
}

fn heuristic(a: Cell, b: Cell) -> f64 {
    let dx = a.0 as f64 - b.0 as f64;
    let dy = a.1 as f64 - b.1 as f64;
    (dx * dx + dy * dy).sqrt()
}

/// A* with 8-connectivity. Returns the cell path including both
/// endpoints, or `None` when no route exists.
///
/// # Panics
///
/// Panics if `start` or `goal` are outside the grid.
pub fn plan_path(grid: &OccupancyGrid, start: Cell, goal: Cell) -> Option<Vec<Cell>> {
    assert!(
        start.0 < grid.width() && start.1 < grid.height(),
        "start outside grid"
    );
    assert!(
        goal.0 < grid.width() && goal.1 < grid.height(),
        "goal outside grid"
    );
    if !traversable(grid, start) || !traversable(grid, goal) {
        return None;
    }
    let w = grid.width();
    let h = grid.height();
    let idx = |c: Cell| c.1 * w + c.0;
    let mut g_cost = vec![f64::INFINITY; w * h];
    let mut parent: Vec<Option<Cell>> = vec![None; w * h];
    let mut open = BinaryHeap::new();
    g_cost[idx(start)] = 0.0;
    open.push(Node {
        cell: start,
        f: heuristic(start, goal),
    });

    while let Some(Node { cell, .. }) = open.pop() {
        if cell == goal {
            // Reconstruct.
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(p) = parent[idx(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        let base = g_cost[idx(cell)];
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = cell.0 as isize + dx;
                let ny = cell.1 as isize + dy;
                if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                    continue;
                }
                let next = (nx as usize, ny as usize);
                if !traversable(grid, next) {
                    continue;
                }
                // No corner-cutting between diagonal obstacles.
                if dx != 0 && dy != 0 {
                    let side_a = ((cell.0 as isize + dx) as usize, cell.1);
                    let side_b = (cell.0, (cell.1 as isize + dy) as usize);
                    if !traversable(grid, side_a) || !traversable(grid, side_b) {
                        continue;
                    }
                }
                let step = if dx != 0 && dy != 0 {
                    std::f64::consts::SQRT_2
                } else {
                    1.0
                };
                let tentative = base + step;
                if tentative < g_cost[idx(next)] {
                    g_cost[idx(next)] = tentative;
                    parent[idx(next)] = Some(cell);
                    open.push(Node {
                        cell: next,
                        f: tentative + heuristic(next, goal),
                    });
                }
            }
        }
    }
    None
}

/// Line-of-sight check on the grid (all cells on the segment
/// traversable).
fn line_of_sight(grid: &OccupancyGrid, a: Cell, b: Cell) -> bool {
    let (mut x, mut y) = (a.0 as isize, a.1 as isize);
    let (x1, y1) = (b.0 as isize, b.1 as isize);
    let dx = (x1 - x).abs();
    let dy = -(y1 - y).abs();
    let sx = if x < x1 { 1 } else { -1 };
    let sy = if y < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if !traversable(grid, (x as usize, y as usize)) {
            return false;
        }
        if x == x1 && y == y1 {
            return true;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Greedy string-pulling: keeps only the waypoints needed to preserve
/// line-of-sight, turning a staircase of cells into a handful of legs.
pub fn simplify_path(grid: &OccupancyGrid, path: &[Cell]) -> Vec<Cell> {
    if path.len() <= 2 {
        return path.to_vec();
    }
    let mut out = vec![path[0]];
    let mut anchor = 0;
    let mut i = 1;
    while i < path.len() {
        if !line_of_sight(grid, path[anchor], path[i]) {
            out.push(path[i - 1]);
            anchor = i - 1;
        }
        i += 1;
    }
    out.push(*path.last().expect("non-empty path"));
    out
}

/// Plans a route and wraps it into a flyable [`Mission`]: take-off to
/// `altitude`, the simplified waypoints, land at the goal.
///
/// Returns `None` when no route exists.
pub fn plan_mission(
    grid: &OccupancyGrid,
    start_world: (f64, f64),
    goal_world: (f64, f64),
    altitude: f64,
    acceptance_radius: f64,
) -> Option<Mission> {
    let start = grid.world_to_cell(start_world.0, start_world.1)?;
    let goal = grid.world_to_cell(goal_world.0, goal_world.1)?;
    let path = plan_path(grid, start, goal)?;
    let simplified = simplify_path(grid, &path);
    let mut items = vec![MissionItem::Takeoff { altitude }];
    for &cell in simplified.iter().skip(1) {
        let (wx, wy) = grid.cell_center(cell.0, cell.1);
        items.push(MissionItem::Waypoint {
            position: Vec3::new(wx, wy, altitude),
            acceptance_radius,
            yaw: 0.0,
        });
    }
    items.push(MissionItem::Land);
    Mission::new(items).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 40×40 grid with a vertical wall at x=20, gap at y∈[18,22).
    fn walled_grid() -> OccupancyGrid {
        let mut g = OccupancyGrid::new(40, 40, 0.5, -10.0, -10.0);
        for y in 0..40 {
            for x in 0..40 {
                g.set_free(x, y);
            }
        }
        for y in 0..40 {
            if !(18..22).contains(&y) {
                g.set_occupied(20, y);
            }
        }
        g
    }

    #[test]
    fn straight_line_in_open_space() {
        let mut g = OccupancyGrid::new(20, 20, 1.0, 0.0, 0.0);
        for y in 0..20 {
            for x in 0..20 {
                g.set_free(x, y);
            }
        }
        let path = plan_path(&g, (0, 0), (19, 0)).expect("route");
        assert_eq!(path.len(), 20);
        let simplified = simplify_path(&g, &path);
        assert_eq!(simplified.len(), 2, "straight line needs only endpoints");
    }

    #[test]
    fn routes_through_the_gap() {
        let g = walled_grid();
        let path = plan_path(&g, (5, 5), (35, 5)).expect("route via the gap");
        // The path must pass through the gap column at gap rows.
        let through_gap = path.iter().any(|&(x, y)| x == 20 && (18..22).contains(&y));
        assert!(through_gap, "path avoided the gap: {path:?}");
        // And never touch an occupied cell.
        for &(x, y) in &path {
            assert_ne!(g.state(x, y), CellState::Occupied);
        }
    }

    #[test]
    fn no_route_through_a_sealed_wall() {
        let mut g = walled_grid();
        for y in 18..22 {
            g.set_occupied(20, y);
        }
        assert!(plan_path(&g, (5, 5), (35, 5)).is_none());
    }

    #[test]
    fn occupied_endpoints_fail() {
        let g = walled_grid();
        assert!(plan_path(&g, (20, 0), (35, 5)).is_none());
        assert!(plan_path(&g, (5, 5), (20, 0)).is_none());
    }

    #[test]
    fn no_corner_cutting() {
        let mut g = OccupancyGrid::new(5, 5, 1.0, 0.0, 0.0);
        for y in 0..5 {
            for x in 0..5 {
                g.set_free(x, y);
            }
        }
        // Two diagonal blockers forming a pinch.
        g.set_occupied(2, 1);
        g.set_occupied(1, 2);
        let path = plan_path(&g, (1, 1), (3, 3)).expect("route around");
        // The direct diagonal (1,1)→(2,2) squeezes between the blockers —
        // forbidden; path must detour.
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let dx = b.0 as isize - a.0 as isize;
            let dy = b.1 as isize - a.1 as isize;
            if dx != 0 && dy != 0 {
                let sa = ((a.0 as isize + dx) as usize, a.1);
                let sb = (a.0, (a.1 as isize + dy) as usize);
                assert_ne!(
                    g.state(sa.0, sa.1),
                    CellState::Occupied,
                    "cut corner at {a:?}"
                );
                assert_ne!(
                    g.state(sb.0, sb.1),
                    CellState::Occupied,
                    "cut corner at {a:?}"
                );
            }
        }
    }

    #[test]
    fn simplified_path_keeps_line_of_sight() {
        let g = walled_grid();
        let path = plan_path(&g, (5, 5), (35, 35)).expect("route");
        let s = simplify_path(&g, &path);
        assert!(s.len() <= path.len());
        for pair in s.windows(2) {
            assert!(line_of_sight(&g, pair[0], pair[1]));
        }
        assert_eq!(s.first(), path.first());
        assert_eq!(s.last(), path.last());
    }

    #[test]
    fn mission_synthesis_produces_valid_mission() {
        let g = walled_grid();
        let mission =
            plan_mission(&g, (-7.5, -7.5), (7.5, -7.5), 8.0, 0.8).expect("mission planned");
        assert!(matches!(mission.items()[0], MissionItem::Takeoff { altitude } if altitude == 8.0));
        assert!(matches!(mission.items().last(), Some(MissionItem::Land)));
        // At least one intermediate waypoint steers through the gap
        // (gap rows 18..22 map to world y ∈ [-1, 1]).
        let through = mission.items().iter().any(|i| {
            matches!(i, MissionItem::Waypoint { position, .. }
                if position.y.abs() < 2.0 && (position.x - 0.25).abs() < 2.0)
        });
        assert!(through, "mission skips the gap: {:?}", mission.items());
    }

    #[test]
    fn unreachable_goal_gives_no_mission() {
        let mut g = walled_grid();
        for y in 18..22 {
            g.set_occupied(20, y);
        }
        assert!(plan_mission(&g, (-7.5, -7.5), (7.5, -7.5), 8.0, 0.8).is_none());
    }
}
