//! Outer-loop autonomy applications (paper Table 1: "LiDAR Mapping",
//! "Planning", "Obstacle Detection" — the computations the paper assigns
//! strictly to the outer loop and forbids from sharing the inner loop's
//! core).
//!
//! * [`lidar`] — a simulated planar LiDAR scanning a world of box
//!   obstacles.
//! * [`grid`] — a 2-D occupancy grid with Bresenham ray-carving and
//!   obstacle inflation.
//! * [`planner`] — A* over the grid with path simplification, and
//!   mission synthesis so a planned path flies on the stock firmware.
//!
//! # Example
//!
//! ```
//! use drone_autonomy::grid::OccupancyGrid;
//! use drone_autonomy::planner::plan_path;
//!
//! let mut grid = OccupancyGrid::new(40, 40, 0.5, -10.0, -10.0);
//! // A wall with a gap.
//! for y in 0..40 {
//!     if !(18..22).contains(&y) {
//!         grid.set_occupied(20, y);
//!     }
//! }
//! let path = plan_path(&grid, (2, 20), (38, 20)).expect("a route exists");
//! assert!(path.len() >= 2);
//! ```

pub mod grid;
pub mod lidar;
pub mod planner;

pub use grid::{CellState, OccupancyGrid};
pub use lidar::{Lidar, ObstacleWorld};
pub use planner::{plan_mission, plan_path, simplify_path};
