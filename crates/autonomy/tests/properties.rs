//! Property-based tests on the mapping/planning invariants.

use drone_autonomy::grid::{CellState, OccupancyGrid};
use drone_autonomy::lidar::ObstacleWorld;
use drone_autonomy::planner::{plan_path, simplify_path};
use drone_math::{Pcg32, Vec3};
use proptest::prelude::*;

/// A random grid with scattered obstacles, plus free start/goal.
fn random_grid(seed: u64, obstacle_count: usize) -> OccupancyGrid {
    let mut rng = Pcg32::seed_from(seed);
    let mut g = OccupancyGrid::new(30, 30, 1.0, 0.0, 0.0);
    for y in 0..30 {
        for x in 0..30 {
            g.set_free(x, y);
        }
    }
    for _ in 0..obstacle_count {
        let x = rng.below(28) as usize + 1;
        let y = rng.below(28) as usize + 1;
        // Keep the corners open.
        if (x < 4 && y < 4) || (x > 25 && y > 25) {
            continue;
        }
        g.set_occupied(x, y);
    }
    g
}

proptest! {
    #[test]
    fn path_length_at_least_euclidean(seed in 0u64..500, obstacles in 0usize..80) {
        let g = random_grid(seed, obstacles);
        let start = (1usize, 1usize);
        let goal = (28usize, 28usize);
        if let Some(path) = plan_path(&g, start, goal) {
            prop_assert_eq!(*path.first().unwrap(), start);
            prop_assert_eq!(*path.last().unwrap(), goal);
            // Total length ≥ straight-line distance (A* admissibility).
            let mut length = 0.0;
            for pair in path.windows(2) {
                let dx = pair[1].0 as f64 - pair[0].0 as f64;
                let dy = pair[1].1 as f64 - pair[0].1 as f64;
                // 8-connected: steps are unit or diagonal.
                prop_assert!(dx.abs() <= 1.0 && dy.abs() <= 1.0);
                length += (dx * dx + dy * dy).sqrt();
            }
            let euclid = ((28.0f64 - 1.0).powi(2) * 2.0).sqrt();
            prop_assert!(length >= euclid - 1e-9, "length {length} < {euclid}");
            // Never stands on an obstacle.
            for &(x, y) in &path {
                prop_assert!(g.state(x, y) != CellState::Occupied);
            }
        }
    }

    #[test]
    fn simplification_preserves_endpoints_and_shrinks(seed in 0u64..500, obstacles in 0usize..80) {
        let g = random_grid(seed, obstacles);
        if let Some(path) = plan_path(&g, (1, 1), (28, 28)) {
            let s = simplify_path(&g, &path);
            prop_assert!(s.len() <= path.len());
            prop_assert_eq!(s.first(), path.first());
            prop_assert_eq!(s.last(), path.last());
        }
    }

    #[test]
    fn empty_grid_always_has_a_route(sx in 0usize..30, sy in 0usize..30, gx in 0usize..30, gy in 0usize..30) {
        let g = random_grid(0, 0);
        let path = plan_path(&g, (sx, sy), (gx, gy));
        prop_assert!(path.is_some());
    }

    #[test]
    fn raycast_hit_is_on_the_box_surface(ox in -8.0f64..-1.0, oy in -8.0f64..8.0, az in 0.0f64..6.2) {
        let mut world = ObstacleWorld::new();
        world.add_box(Vec3::new(2.0, -3.0, 0.0), Vec3::new(4.0, 3.0, 10.0));
        let origin = Vec3::new(ox, oy, 5.0);
        let dir = Vec3::new(az.cos(), az.sin(), 0.0);
        if let Some(d) = world.raycast(origin, dir, 50.0) {
            let hit = origin + dir * d;
            // The hit point must lie on (within ε of) the box boundary.
            let eps = 1e-9;
            let inside_loose = hit.x >= 2.0 - eps && hit.x <= 4.0 + eps
                && hit.y >= -3.0 - eps && hit.y <= 3.0 + eps;
            prop_assert!(inside_loose, "hit {hit} off the box");
            let on_face = (hit.x - 2.0).abs() < 1e-6
                || (hit.x - 4.0).abs() < 1e-6
                || (hit.y + 3.0).abs() < 1e-6
                || (hit.y - 3.0).abs() < 1e-6;
            prop_assert!(on_face, "hit {hit} not on a face");
        }
    }

    #[test]
    fn grid_roundtrip_world_coordinates(x in 0usize..40, y in 0usize..40) {
        let g = OccupancyGrid::new(40, 40, 0.5, -10.0, -10.0);
        let (wx, wy) = g.cell_center(x.min(39), y.min(39));
        prop_assert_eq!(g.world_to_cell(wx, wy), Some((x.min(39), y.min(39))));
    }
}
