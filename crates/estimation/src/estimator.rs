//! The combined state estimator: complementary attitude filter + position
//! EKF, producing the full `(ζ, ζ̇, Ω, R)` state the control cascade
//! consumes (paper §2.1.3-D).

use crate::complementary::ComplementaryFilter;
use crate::ekf::NavigationEkf;
use crate::sensors::SensorReadings;
use drone_components::units::STANDARD_GRAVITY;
use drone_math::Vec3;
use drone_sim::RigidBodyState;
use drone_telemetry::{Clock, Counter, Registry, SharedHistogram};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Full-state estimator over the on-board sensor suite.
///
/// # Example
///
/// ```
/// use drone_estimation::{StateEstimator, SensorReadings};
/// use drone_math::Vec3;
/// let mut est = StateEstimator::new();
/// let readings = SensorReadings {
///     accelerometer: Some(Vec3::Z * 9.81),
///     gyroscope: Some(Vec3::ZERO),
///     gps: Some(Vec3::new(0.0, 0.0, 5.0)),
///     ..Default::default()
/// };
/// est.ingest(&readings, 0.005);
/// assert!(est.state().position.z > 0.0);
/// ```
/// Seconds of silence after which each channel is declared dead:
/// ~20 nominal periods for the fast IMU channels, a handful of periods
/// for the slow aiding sensors (indices match `sensors::SensorChannel`).
const DEAD_TIMEOUT: [f64; 5] = [0.1, 0.1, 0.5, 0.5, 1.0];

/// Liveness of each sensor channel as seen by the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorHealthReport {
    /// Accelerometer published within its timeout.
    pub accelerometer_ok: bool,
    /// Gyroscope published within its timeout.
    pub gyroscope_ok: bool,
    /// Magnetometer published within its timeout.
    pub magnetometer_ok: bool,
    /// Barometer published within its timeout.
    pub barometer_ok: bool,
    /// GPS published within its timeout.
    pub gps_ok: bool,
}

impl SensorHealthReport {
    /// Every channel alive.
    pub fn all_ok(&self) -> bool {
        self.accelerometer_ok
            && self.gyroscope_ok
            && self.magnetometer_ok
            && self.barometer_ok
            && self.gps_ok
    }

    /// Position aiding is gone (GPS *and* barometer dead): the EKF is
    /// dead-reckoning and position uncertainty grows without bound.
    pub fn navigation_degraded(&self) -> bool {
        !self.gps_ok && !self.barometer_ok
    }

    /// Attitude has fallen back to reduced complementary filtering
    /// (gyro-only tilt or no heading correction).
    pub fn attitude_fallback(&self) -> bool {
        !self.accelerometer_ok || !self.magnetometer_ok
    }
}

impl Default for SensorHealthReport {
    fn default() -> Self {
        SensorHealthReport {
            accelerometer_ok: true,
            gyroscope_ok: true,
            magnetometer_ok: true,
            barometer_ok: true,
            gps_ok: true,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEstimator {
    attitude: ComplementaryFilter,
    navigation: NavigationEkf,
    last_gyro: Vec3,
    last_accel_world: Vec3,
    /// Seconds since each channel last published (SensorChannel order).
    silence: [f64; 5],
    telemetry: TelemetrySink,
}

/// Metrics the estimator records into once attached via
/// [`StateEstimator::attach_telemetry`].
#[derive(Debug, Clone)]
struct EstimatorTelemetry {
    clock: Clock,
    predict: Arc<SharedHistogram>,
    update: Arc<SharedHistogram>,
    nis: Arc<SharedHistogram>,
    health_transitions: Arc<Counter>,
    last_health: SensorHealthReport,
}

/// Optional telemetry attachment; always compares equal so attaching a
/// registry never makes two otherwise-identical estimators differ.
#[derive(Debug, Clone, Default)]
struct TelemetrySink(Option<EstimatorTelemetry>);

impl PartialEq for TelemetrySink {
    fn eq(&self, _: &TelemetrySink) -> bool {
        true
    }
}

impl StateEstimator {
    /// Creates an estimator with default filter tuning.
    pub fn new() -> StateEstimator {
        StateEstimator {
            attitude: ComplementaryFilter::default(),
            navigation: NavigationEkf::new(),
            last_gyro: Vec3::ZERO,
            last_accel_world: Vec3::ZERO,
            silence: [0.0; 5],
            telemetry: TelemetrySink(None),
        }
    }

    /// Attaches telemetry: every subsequent [`StateEstimator::ingest`]
    /// times the EKF predict (`ekf.predict.seconds`) and measurement
    /// fusion (`ekf.update.seconds`) phases, records the NIS of each
    /// fused measurement (`ekf.nis`), and counts sensor-health state
    /// changes (`estimator.health.transitions`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry.0 = Some(EstimatorTelemetry {
            clock: registry.clock().clone(),
            predict: registry.histogram("ekf.predict.seconds"),
            update: registry.histogram("ekf.update.seconds"),
            nis: registry.histogram("ekf.nis"),
            health_transitions: registry.counter("estimator.health.transitions"),
            last_health: self.health(),
        });
    }

    /// NIS of the EKF's most recent fused measurement (see
    /// [`NavigationEkf::last_nis`]).
    pub fn last_nis(&self) -> f64 {
        self.navigation.last_nis()
    }

    /// Enables EKF innovation gating (outlier rejection). Off by
    /// default: a cold-started filter must be allowed to converge from
    /// large initial errors.
    pub fn set_innovation_gating(&mut self, enabled: bool) {
        self.navigation.set_innovation_gating(enabled);
    }

    /// Measurements rejected by the EKF innovation gate.
    pub fn innovations_rejected(&self) -> u64 {
        self.navigation.innovations_rejected()
    }

    /// Current per-channel liveness.
    pub fn health(&self) -> SensorHealthReport {
        SensorHealthReport {
            accelerometer_ok: self.silence[0] <= DEAD_TIMEOUT[0],
            gyroscope_ok: self.silence[1] <= DEAD_TIMEOUT[1],
            magnetometer_ok: self.silence[2] <= DEAD_TIMEOUT[2],
            barometer_ok: self.silence[3] <= DEAD_TIMEOUT[3],
            gps_ok: self.silence[4] <= DEAD_TIMEOUT[4],
        }
    }

    /// Seeds the estimator from a known initial state (pre-flight
    /// alignment).
    pub fn initialize_from(&mut self, state: &RigidBodyState) {
        self.attitude.set_attitude(state.attitude);
        self.navigation.set_state(state.position, state.velocity);
    }

    /// Ingests one tick of sensor readings spanning `dt` seconds.
    pub fn ingest(&mut self, readings: &SensorReadings, dt: f64) {
        let published = [
            readings.accelerometer.is_some(),
            readings.gyroscope.is_some(),
            readings.magnetometer.is_some(),
            readings.barometer.is_some(),
            readings.gps.is_some(),
        ];
        for (s, fresh) in self.silence.iter_mut().zip(published) {
            *s = if fresh { 0.0 } else { *s + dt };
        }
        let health = self.health();
        if let Some(tel) = &mut self.telemetry.0 {
            if health != tel.last_health {
                tel.health_transitions.inc();
                tel.last_health = health;
            }
        }

        // Holding the last rate bridges the gap between IMU samples, but
        // a dead gyro must not spin the attitude forever.
        if !health.gyroscope_ok {
            self.last_gyro = Vec3::ZERO;
        }
        let gyro = readings.gyroscope.unwrap_or(self.last_gyro);
        self.last_gyro = gyro;
        self.attitude
            .update(gyro, readings.accelerometer, readings.magnetometer, dt);

        // Rotate specific force to the world frame and strip gravity.
        // Between accelerometer samples (the IMU publishes slower than
        // the estimator ticks) the last acceleration is held — feeding
        // zero instead would dilute the propagated velocity.
        let accel_world = match readings.accelerometer {
            Some(f_body) => {
                let a = self.attitude.attitude().rotate(f_body) - Vec3::Z * STANDARD_GRAVITY;
                self.last_accel_world = a;
                a
            }
            None => {
                // A *dead* accelerometer is different from the gap
                // between samples: integrating a stale acceleration for
                // seconds would run the velocity away, so fall back to
                // constant-velocity prediction.
                if !health.accelerometer_ok {
                    self.last_accel_world = Vec3::ZERO;
                }
                self.last_accel_world
            }
        };
        let predict_start = self.telemetry.0.as_ref().map(|t| t.clock.now());
        self.navigation.predict(accel_world, dt);
        if let (Some(start), Some(tel)) = (predict_start, &self.telemetry.0) {
            tel.predict.record(tel.clock.now() - start);
        }

        let any_measurement = readings.gps.is_some()
            || readings.gps_velocity.is_some()
            || readings.barometer.is_some();
        let update_start = self.telemetry.0.as_ref().map(|t| t.clock.now());
        if let Some(gps) = readings.gps {
            self.navigation.update_gps(gps);
            self.record_nis();
        }
        if let Some(vel) = readings.gps_velocity {
            self.navigation.update_gps_velocity(vel);
            self.record_nis();
        }
        if let Some(alt) = readings.barometer {
            self.navigation.update_baro(alt);
            self.record_nis();
        }
        if any_measurement {
            if let (Some(start), Some(tel)) = (update_start, &self.telemetry.0) {
                tel.update.record(tel.clock.now() - start);
            }
        }
    }

    /// Records the EKF's latest NIS into the attached registry, if any.
    fn record_nis(&self) {
        if let Some(tel) = &self.telemetry.0 {
            tel.nis.record(self.navigation.last_nis());
        }
    }

    /// Current full-state estimate.
    pub fn state(&self) -> RigidBodyState {
        RigidBodyState {
            position: self.navigation.position(),
            velocity: self.navigation.velocity(),
            attitude: self.attitude.attitude(),
            angular_velocity: self.last_gyro,
        }
    }

    /// Scalar position-uncertainty diagnostic.
    pub fn position_uncertainty(&self) -> f64 {
        self.navigation.position_uncertainty()
    }
}

impl Default for StateEstimator {
    fn default() -> Self {
        StateEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::SensorSuite;
    use drone_math::Quat;

    /// Feed the estimator from a static truth state and return the final
    /// estimate error in metres / radians.
    fn static_errors(truth: RigidBodyState, seconds: f64) -> (f64, f64) {
        let mut suite = SensorSuite::with_defaults(4);
        let mut est = StateEstimator::new();
        let dt = 1e-3;
        for _ in 0..(seconds / dt) as usize {
            let readings = suite.sample(&truth, Vec3::ZERO, dt);
            est.ingest(&readings, dt);
        }
        let s = est.state();
        (
            (s.position - truth.position).norm(),
            s.attitude.angle_to(truth.attitude),
        )
    }

    #[test]
    fn estimates_static_pose_from_noisy_sensors() {
        let mut truth = RigidBodyState::at_altitude(12.0);
        truth.position.x = 4.0;
        truth.attitude = Quat::from_euler(0.0, 0.0, 0.7);
        let (pos_err, att_err) = static_errors(truth, 20.0);
        assert!(pos_err < 0.6, "position error {pos_err}");
        assert!(att_err < 0.08, "attitude error {att_err}");
    }

    #[test]
    fn initialization_shortcuts_convergence() {
        let truth = RigidBodyState::at_altitude(50.0);
        let mut suite = SensorSuite::with_defaults(8);
        let mut est = StateEstimator::new();
        est.initialize_from(&truth);
        let readings = suite.sample(&truth, Vec3::ZERO, 1e-3);
        est.ingest(&readings, 1e-3);
        assert!((est.state().position - truth.position).norm() < 0.5);
    }

    #[test]
    fn tracks_a_flying_quadcopter() {
        // Closed truth loop: quadcopter under hover throttle with the
        // estimator running alongside on its sensor outputs.
        let params = drone_sim::QuadcopterParams::default_450mm();
        let mut quad = drone_sim::Quadcopter::hovering_at(params, 10.0);
        let mut suite = SensorSuite::with_defaults(6);
        let mut est = StateEstimator::new();
        est.initialize_from(quad.state());
        let hover = quad.hover_throttle();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        for _ in 0..10_000 {
            quad.step([hover; 4], Vec3::ZERO, dt);
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = suite.sample(quad.state(), accel, dt);
            est.ingest(&readings, dt);
        }
        let err = (est.state().position - quad.state().position).norm();
        assert!(err < 1.0, "tracking error {err}");
    }

    #[test]
    fn gyro_holds_between_samples() {
        let mut est = StateEstimator::new();
        let spin = SensorReadings {
            gyroscope: Some(Vec3::Z * 0.5),
            ..Default::default()
        };
        est.ingest(&spin, 0.005);
        // Next tick without a gyro sample: last rate is held.
        let empty = SensorReadings::default();
        est.ingest(&empty, 0.005);
        assert_eq!(est.state().angular_velocity, Vec3::Z * 0.5);
    }

    #[test]
    fn uncertainty_reported() {
        let est = StateEstimator::new();
        assert!(est.position_uncertainty() > 0.0);
    }

    #[test]
    fn attached_telemetry_times_the_filter_and_counts_health_changes() {
        use drone_telemetry::Registry;
        let registry = Registry::with_wall_clock();
        let mut est = StateEstimator::new();
        est.attach_telemetry(&registry);
        let imu_and_gps = SensorReadings {
            accelerometer: Some(Vec3::Z * 9.81),
            gyroscope: Some(Vec3::ZERO),
            gps: Some(Vec3::ZERO),
            ..Default::default()
        };
        for _ in 0..100 {
            est.ingest(&imu_and_gps, 0.005);
        }
        assert_eq!(registry.histogram("ekf.predict.seconds").count(), 100);
        assert_eq!(registry.histogram("ekf.update.seconds").count(), 100);
        assert_eq!(registry.histogram("ekf.nis").count(), 100);
        // Mag/baro silent: one transition from all-ok once their
        // timeouts expire. GPS keeps publishing.
        assert_eq!(registry.counter("estimator.health.transitions").get(), 1);
        assert!(!est.health().magnetometer_ok && !est.health().barometer_ok);
        // Telemetry attachment does not perturb the estimate.
        let mut bare = StateEstimator::new();
        for _ in 0..100 {
            bare.ingest(&imu_and_gps, 0.005);
        }
        assert_eq!(bare, est);
    }

    #[test]
    fn silent_channels_are_declared_dead_after_their_timeouts() {
        let mut est = StateEstimator::new();
        assert!(
            est.health().all_ok(),
            "everything is presumed alive at startup"
        );
        // Only the IMU publishes; the aiding sensors stay silent.
        let imu_only = SensorReadings {
            accelerometer: Some(Vec3::Z * 9.81),
            gyroscope: Some(Vec3::ZERO),
            ..Default::default()
        };
        for _ in 0..400 {
            est.ingest(&imu_only, 0.005); // 2 s
        }
        let h = est.health();
        assert!(h.accelerometer_ok && h.gyroscope_ok);
        assert!(!h.magnetometer_ok && !h.barometer_ok && !h.gps_ok);
        assert!(h.navigation_degraded());
        assert!(h.attitude_fallback());
    }

    #[test]
    fn aiding_loss_degrades_navigation_but_attitude_survives() {
        use crate::sensors::{SensorChannel, SensorFault, SensorFaultKind};
        let mut truth = RigidBodyState::at_altitude(15.0);
        truth.attitude = Quat::from_euler(0.1, -0.05, 0.4);
        let mut suite = SensorSuite::with_defaults(21);
        for channel in [SensorChannel::Gps, SensorChannel::Barometer] {
            suite.inject_fault(SensorFault {
                channel,
                kind: SensorFaultKind::Dropout,
                start: 5.0,
                duration: f64::INFINITY,
            });
        }
        let mut est = StateEstimator::new();
        est.initialize_from(&truth);
        let dt = 1e-3;
        let mut uncertainty_at_fault = 0.0;
        for i in 0..10_000 {
            let readings = suite.sample(&truth, Vec3::ZERO, dt);
            est.ingest(&readings, dt);
            if i == 5000 {
                uncertainty_at_fault = est.position_uncertainty();
            }
        }
        assert!(est.health().navigation_degraded());
        assert!(
            est.position_uncertainty() > uncertainty_at_fault * 2.0,
            "dead reckoning must grow uncertainty: {} vs {}",
            est.position_uncertainty(),
            uncertainty_at_fault
        );
        // Attitude runs on the complementary filter and never needed the
        // dead aiding sensors.
        let att_err = est.state().attitude.angle_to(truth.attitude);
        assert!(att_err < 0.08, "attitude error {att_err}");
    }

    #[test]
    fn innovation_gate_rejects_a_gps_bias_step() {
        use crate::sensors::{SensorChannel, SensorFault, SensorFaultKind};
        let truth = RigidBodyState::at_altitude(10.0);
        let mut suite = SensorSuite::with_defaults(22);
        suite.inject_fault(SensorFault {
            channel: SensorChannel::Gps,
            kind: SensorFaultKind::BiasStep(50.0),
            start: 3.0,
            duration: 4.0,
        });
        let mut est = StateEstimator::new();
        est.initialize_from(&truth);
        est.set_innovation_gating(true);
        let dt = 1e-3;
        let mut worst = 0.0f64;
        for _ in 0..10_000 {
            let readings = suite.sample(&truth, Vec3::ZERO, dt);
            est.ingest(&readings, dt);
            worst = worst.max((est.state().position - truth.position).norm());
        }
        assert!(
            est.innovations_rejected() > 10,
            "the 50 m fixes must bounce off the gate"
        );
        // Without gating the estimate walks tens of metres; with it the
        // healthy Doppler/baro channels hold the fort.
        assert!(
            worst < 10.0,
            "estimate excursion {worst} m during the bias window"
        );
        let final_err = (est.state().position - truth.position).norm();
        assert!(final_err < 1.0, "post-fault error {final_err}");
    }
}
