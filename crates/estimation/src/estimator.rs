//! The combined state estimator: complementary attitude filter + position
//! EKF, producing the full `(ζ, ζ̇, Ω, R)` state the control cascade
//! consumes (paper §2.1.3-D).

use crate::complementary::ComplementaryFilter;
use crate::ekf::NavigationEkf;
use crate::sensors::SensorReadings;
use drone_components::units::STANDARD_GRAVITY;
use drone_math::Vec3;
use drone_sim::RigidBodyState;
use serde::{Deserialize, Serialize};

/// Full-state estimator over the on-board sensor suite.
///
/// # Example
///
/// ```
/// use drone_estimation::{StateEstimator, SensorReadings};
/// use drone_math::Vec3;
/// let mut est = StateEstimator::new();
/// let readings = SensorReadings {
///     accelerometer: Some(Vec3::Z * 9.81),
///     gyroscope: Some(Vec3::ZERO),
///     gps: Some(Vec3::new(0.0, 0.0, 5.0)),
///     ..Default::default()
/// };
/// est.ingest(&readings, 0.005);
/// assert!(est.state().position.z > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEstimator {
    attitude: ComplementaryFilter,
    navigation: NavigationEkf,
    last_gyro: Vec3,
    last_accel_world: Vec3,
}

impl StateEstimator {
    /// Creates an estimator with default filter tuning.
    pub fn new() -> StateEstimator {
        StateEstimator {
            attitude: ComplementaryFilter::default(),
            navigation: NavigationEkf::new(),
            last_gyro: Vec3::ZERO,
            last_accel_world: Vec3::ZERO,
        }
    }

    /// Seeds the estimator from a known initial state (pre-flight
    /// alignment).
    pub fn initialize_from(&mut self, state: &RigidBodyState) {
        self.attitude.set_attitude(state.attitude);
        self.navigation.set_state(state.position, state.velocity);
    }

    /// Ingests one tick of sensor readings spanning `dt` seconds.
    pub fn ingest(&mut self, readings: &SensorReadings, dt: f64) {
        let gyro = readings.gyroscope.unwrap_or(self.last_gyro);
        self.last_gyro = gyro;
        self.attitude.update(gyro, readings.accelerometer, readings.magnetometer, dt);

        // Rotate specific force to the world frame and strip gravity.
        // Between accelerometer samples (the IMU publishes slower than
        // the estimator ticks) the last acceleration is held — feeding
        // zero instead would dilute the propagated velocity.
        let accel_world = match readings.accelerometer {
            Some(f_body) => {
                let a = self.attitude.attitude().rotate(f_body) - Vec3::Z * STANDARD_GRAVITY;
                self.last_accel_world = a;
                a
            }
            None => self.last_accel_world,
        };
        self.navigation.predict(accel_world, dt);
        if let Some(gps) = readings.gps {
            self.navigation.update_gps(gps);
        }
        if let Some(vel) = readings.gps_velocity {
            self.navigation.update_gps_velocity(vel);
        }
        if let Some(alt) = readings.barometer {
            self.navigation.update_baro(alt);
        }
    }

    /// Current full-state estimate.
    pub fn state(&self) -> RigidBodyState {
        RigidBodyState {
            position: self.navigation.position(),
            velocity: self.navigation.velocity(),
            attitude: self.attitude.attitude(),
            angular_velocity: self.last_gyro,
        }
    }

    /// Scalar position-uncertainty diagnostic.
    pub fn position_uncertainty(&self) -> f64 {
        self.navigation.position_uncertainty()
    }
}

impl Default for StateEstimator {
    fn default() -> Self {
        StateEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::SensorSuite;
    use drone_math::Quat;

    /// Feed the estimator from a static truth state and return the final
    /// estimate error in metres / radians.
    fn static_errors(truth: RigidBodyState, seconds: f64) -> (f64, f64) {
        let mut suite = SensorSuite::with_defaults(4);
        let mut est = StateEstimator::new();
        let dt = 1e-3;
        for _ in 0..(seconds / dt) as usize {
            let readings = suite.sample(&truth, Vec3::ZERO, dt);
            est.ingest(&readings, dt);
        }
        let s = est.state();
        ((s.position - truth.position).norm(), s.attitude.angle_to(truth.attitude))
    }

    #[test]
    fn estimates_static_pose_from_noisy_sensors() {
        let mut truth = RigidBodyState::at_altitude(12.0);
        truth.position.x = 4.0;
        truth.attitude = Quat::from_euler(0.0, 0.0, 0.7);
        let (pos_err, att_err) = static_errors(truth, 20.0);
        assert!(pos_err < 0.6, "position error {pos_err}");
        assert!(att_err < 0.08, "attitude error {att_err}");
    }

    #[test]
    fn initialization_shortcuts_convergence() {
        let truth = RigidBodyState::at_altitude(50.0);
        let mut suite = SensorSuite::with_defaults(8);
        let mut est = StateEstimator::new();
        est.initialize_from(&truth);
        let readings = suite.sample(&truth, Vec3::ZERO, 1e-3);
        est.ingest(&readings, 1e-3);
        assert!((est.state().position - truth.position).norm() < 0.5);
    }

    #[test]
    fn tracks_a_flying_quadcopter() {
        // Closed truth loop: quadcopter under hover throttle with the
        // estimator running alongside on its sensor outputs.
        let params = drone_sim::QuadcopterParams::default_450mm();
        let mut quad = drone_sim::Quadcopter::hovering_at(params, 10.0);
        let mut suite = SensorSuite::with_defaults(6);
        let mut est = StateEstimator::new();
        est.initialize_from(quad.state());
        let hover = quad.hover_throttle();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        for _ in 0..10_000 {
            quad.step([hover; 4], Vec3::ZERO, dt);
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = suite.sample(quad.state(), accel, dt);
            est.ingest(&readings, dt);
        }
        let err = (est.state().position - quad.state().position).norm();
        assert!(err < 1.0, "tracking error {err}");
    }

    #[test]
    fn gyro_holds_between_samples() {
        let mut est = StateEstimator::new();
        let spin = SensorReadings { gyroscope: Some(Vec3::Z * 0.5), ..Default::default() };
        est.ingest(&spin, 0.005);
        // Next tick without a gyro sample: last rate is held.
        let empty = SensorReadings::default();
        est.ingest(&empty, 0.005);
        assert_eq!(est.state().angular_velocity, Vec3::Z * 0.5);
    }

    #[test]
    fn uncertainty_reported() {
        let est = StateEstimator::new();
        assert!(est.position_uncertainty() > 0.0);
    }
}
