//! State estimation for the inner loop (paper §2.1.3-B "shared libraries
//! layer": sensor-fusion algorithms such as the Extended Kalman Filter).
//!
//! The paper's Table 2a fixes the sensor data rates an estimator can rely
//! on: accelerometer and gyroscope at 100–200 Hz, magnetometer at 10 Hz,
//! barometer at 10–20 Hz and GPS at 1–40 Hz. This crate provides:
//!
//! * [`sensors`] — noisy, biased, rate-limited sensor models fed from the
//!   simulation truth.
//! * [`complementary`] — the attitude complementary filter (gyro
//!   integration corrected by gravity and magnetometer heading).
//! * [`ekf`] — a position/velocity Kalman filter driven by the
//!   attitude-resolved accelerometer and corrected by GPS and barometer.
//! * [`estimator`] — the combined [`StateEstimator`] producing the
//!   `(ζ, ζ̇, Ω, R)` state the control cascade consumes.
//!
//! # Example
//!
//! ```
//! use drone_estimation::{SensorSuite, StateEstimator};
//! use drone_sim::RigidBodyState;
//! use drone_math::Vec3;
//!
//! let mut sensors = SensorSuite::with_defaults(1);
//! let mut est = StateEstimator::new();
//! let truth = RigidBodyState::at_altitude(5.0);
//! for _ in 0..500 {
//!     let readings = sensors.sample(&truth, Vec3::ZERO, 1e-3);
//!     est.ingest(&readings, 1e-3);
//! }
//! let err = (est.state().position - truth.position).norm();
//! assert!(err < 1.0, "estimate error {err}");
//! ```

pub mod complementary;
pub mod ekf;
pub mod estimator;
pub mod sensors;

pub use complementary::ComplementaryFilter;
pub use ekf::NavigationEkf;
pub use estimator::{SensorHealthReport, StateEstimator};
pub use sensors::{SensorChannel, SensorFault, SensorFaultKind, SensorReadings, SensorSuite};
