//! Position/velocity Kalman filter.
//!
//! Six states `[p, v]` propagated with the attitude-resolved accelerometer
//! as control input (the nonlinear attitude path is what makes the
//! composite pipeline an *extended* KF), corrected by GPS position and
//! barometric altitude at their Table 2a rates. Implemented with the
//! workspace's own dense-matrix kernels.

use drone_math::{Matrix, Vec3};
use serde::{Deserialize, Serialize};

/// Navigation filter state and covariance.
///
/// # Example
///
/// ```
/// use drone_estimation::NavigationEkf;
/// use drone_math::Vec3;
/// let mut ekf = NavigationEkf::new();
/// ekf.predict(Vec3::ZERO, 0.005);
/// ekf.update_gps(Vec3::new(1.0, 0.0, 5.0));
/// assert!(ekf.position().x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NavigationEkf {
    /// State `[px, py, pz, vx, vy, vz]`.
    x: Matrix,
    /// Covariance, 6×6.
    p: Matrix,
    /// Process noise on acceleration, (m/s²)².
    accel_var: f64,
    /// GPS horizontal measurement variance, m².
    gps_var_xy: f64,
    /// GPS vertical measurement variance, m².
    gps_var_z: f64,
    /// Barometer variance, m².
    baro_var: f64,
    /// Innovation (NIS) gating: reject measurements whose normalized
    /// innovation squared exceeds the χ² 99.9 % quantile for the
    /// measurement dimension. Off by default — a cold-started filter
    /// legitimately sees huge innovations until it converges.
    gate_enabled: bool,
    /// Measurements fused since construction.
    accepted: u64,
    /// Measurements rejected by the gate since construction.
    rejected: u64,
    /// Consecutive rejections; drives covariance-inflation recovery.
    reject_streak: u32,
    /// Normalized innovation squared of the most recent measurement
    /// (0 until the first one). Computed whether or not the gate is
    /// enabled — it is the primary filter-consistency diagnostic.
    last_nis: f64,
}

/// χ² 99.9 % quantiles by degrees of freedom (1..=3).
const CHI2_999: [f64; 3] = [10.83, 13.82, 16.27];

/// Consecutive rejections before the filter concludes it is confidently
/// wrong (rather than the sensor being faulty) and inflates `P` to let
/// measurements back in.
const REJECT_STREAK_LIMIT: u32 = 25;

impl NavigationEkf {
    /// Creates a filter at the origin with broad initial uncertainty.
    pub fn new() -> NavigationEkf {
        NavigationEkf {
            x: Matrix::zeros(6, 1),
            p: Matrix::from_diagonal(&[25.0, 25.0, 25.0, 4.0, 4.0, 4.0]),
            // The dominant "process noise" is not IMU white noise but the
            // attitude-estimate error leaking gravity into the resolved
            // acceleration (±g·sinθ̃, easily ~2 m/s² during maneuvers).
            // Underestimating it makes the filter overconfident: GPS
            // innovations get discounted and the position estimate lags
            // badly at speed.
            accel_var: 2.0,
            gps_var_xy: 0.5,
            gps_var_z: 2.0,
            baro_var: 0.05,
            gate_enabled: false,
            accepted: 0,
            rejected: 0,
            reject_streak: 0,
            last_nis: 0.0,
        }
    }

    /// Enables or disables innovation (NIS) gating.
    pub fn set_innovation_gating(&mut self, enabled: bool) {
        self.gate_enabled = enabled;
    }

    /// Whether innovation gating is active.
    pub fn innovation_gating(&self) -> bool {
        self.gate_enabled
    }

    /// Measurements fused since construction.
    pub fn innovations_accepted(&self) -> u64 {
        self.accepted
    }

    /// Measurements rejected by the gate since construction.
    pub fn innovations_rejected(&self) -> u64 {
        self.rejected
    }

    /// NIS (normalized innovation squared, `νᵀS⁻¹ν`) of the most recent
    /// measurement; 0 until one arrives. A healthy measurement follows a
    /// χ² distribution with the measurement's degrees of freedom, so
    /// sustained large values flag filter inconsistency long before the
    /// position estimate visibly diverges.
    pub fn last_nis(&self) -> f64 {
        self.last_nis
    }

    /// Position estimate.
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.x[(0, 0)], self.x[(1, 0)], self.x[(2, 0)])
    }

    /// Velocity estimate.
    pub fn velocity(&self) -> Vec3 {
        Vec3::new(self.x[(3, 0)], self.x[(4, 0)], self.x[(5, 0)])
    }

    /// Position variance trace (uncertainty scalar for diagnostics).
    pub fn position_uncertainty(&self) -> f64 {
        self.p[(0, 0)] + self.p[(1, 1)] + self.p[(2, 2)]
    }

    /// Forces the state (initialization) and collapses the covariance to
    /// a confident prior — a known starting pose should not be dragged
    /// around by the first noisy fix.
    pub fn set_state(&mut self, position: Vec3, velocity: Vec3) {
        for (i, v) in position.to_array().into_iter().enumerate() {
            self.x[(i, 0)] = v;
        }
        for (i, v) in velocity.to_array().into_iter().enumerate() {
            self.x[(i + 3, 0)] = v;
        }
        self.p = Matrix::from_diagonal(&[0.1, 0.1, 0.1, 0.05, 0.05, 0.05]);
    }

    /// Propagates the state with the world-frame acceleration input
    /// (gravity already removed) over `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn predict(&mut self, accel_world: Vec3, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        // x ← F x + B a with F = [I, dt·I; 0, I].
        for i in 0..3 {
            let a = accel_world[i];
            let v = self.x[(i + 3, 0)];
            self.x[(i, 0)] += v * dt + 0.5 * a * dt * dt;
            self.x[(i + 3, 0)] += a * dt;
        }
        // P ← F P Fᵀ + Q with white-acceleration process noise.
        let mut f = Matrix::identity(6);
        for i in 0..3 {
            f[(i, i + 3)] = dt;
        }
        let mut q = Matrix::zeros(6, 6);
        let q_pp = 0.25 * dt.powi(4) * self.accel_var;
        let q_pv = 0.5 * dt.powi(3) * self.accel_var;
        let q_vv = dt * dt * self.accel_var;
        for i in 0..3 {
            q[(i, i)] = q_pp;
            q[(i, i + 3)] = q_pv;
            q[(i + 3, i)] = q_pv;
            q[(i + 3, i + 3)] = q_vv;
        }
        self.p = &f.matmul(&self.p).matmul(&f.transpose()) + &q;
        self.p.symmetrize();
    }

    /// Generic linear measurement update. Returns whether the
    /// measurement was fused (`false` = rejected by the innovation gate
    /// or numerically degenerate).
    fn update(&mut self, h: &Matrix, z: &Matrix, r: &Matrix) -> bool {
        let ht = h.transpose();
        let s = &h.matmul(&self.p).matmul(&ht) + r;
        let Some(s_inv) = s.inverse() else {
            return false; // numerically degenerate innovation; skip the update
        };
        let innovation = z - &h.matmul(&self.x);
        // NIS = νᵀ S⁻¹ ν ~ χ²(dof) for a healthy measurement. Tracked
        // unconditionally as the consistency diagnostic; the gate only
        // decides whether to act on it.
        let nis = innovation.transpose().matmul(&s_inv).matmul(&innovation)[(0, 0)];
        self.last_nis = nis;
        if self.gate_enabled {
            let dof = h.rows().min(CHI2_999.len());
            if nis > CHI2_999[dof - 1] {
                self.rejected += 1;
                self.reject_streak += 1;
                if self.reject_streak >= REJECT_STREAK_LIMIT {
                    // Every recent measurement looks like an outlier: the
                    // filter, not the sensors, is the likelier culprit.
                    // Inflate the covariance so the gate reopens and the
                    // next measurements pull the state back.
                    self.p = self.p.scale(10.0);
                    self.p.symmetrize();
                    self.reject_streak = 0;
                }
                return false;
            }
            self.reject_streak = 0;
        }
        self.accepted += 1;
        let k = self.p.matmul(&ht).matmul(&s_inv);
        self.x = &self.x + &k.matmul(&innovation);
        // Joseph-free form: P ← (I − K H) P, re-symmetrized.
        let ikh = &Matrix::identity(6) - &k.matmul(h);
        self.p = ikh.matmul(&self.p);
        self.p.symmetrize();
        true
    }

    /// Fuses a GPS position fix. Returns whether it passed the gate.
    pub fn update_gps(&mut self, position: Vec3) -> bool {
        let mut h = Matrix::zeros(3, 6);
        h[(0, 0)] = 1.0;
        h[(1, 1)] = 1.0;
        h[(2, 2)] = 1.0;
        let z = Matrix::column(&position.to_array());
        let r = Matrix::from_diagonal(&[self.gps_var_xy, self.gps_var_xy, self.gps_var_z]);
        self.update(&h, &z, &r)
    }

    /// Fuses a GPS Doppler velocity measurement. Returns whether it
    /// passed the gate.
    pub fn update_gps_velocity(&mut self, velocity: Vec3) -> bool {
        let mut h = Matrix::zeros(3, 6);
        h[(0, 3)] = 1.0;
        h[(1, 4)] = 1.0;
        h[(2, 5)] = 1.0;
        let z = Matrix::column(&velocity.to_array());
        let r = Matrix::from_diagonal(&[0.05, 0.05, 0.05]);
        self.update(&h, &z, &r)
    }

    /// Fuses a barometric altitude. Returns whether it passed the gate.
    pub fn update_baro(&mut self, altitude: f64) -> bool {
        let mut h = Matrix::zeros(1, 6);
        h[(0, 2)] = 1.0;
        let z = Matrix::column(&[altitude]);
        let r = Matrix::from_diagonal(&[self.baro_var]);
        self.update(&h, &z, &r)
    }
}

impl Default for NavigationEkf {
    fn default() -> Self {
        NavigationEkf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Pcg32;

    #[test]
    fn converges_on_static_target() {
        let mut ekf = NavigationEkf::new();
        let truth = Vec3::new(10.0, -5.0, 30.0);
        let mut rng = Pcg32::seed_from(1);
        for i in 0..2000 {
            ekf.predict(Vec3::ZERO, 0.005);
            if i % 20 == 0 {
                let noisy = truth
                    + Vec3::new(
                        rng.normal_with(0.0, 0.5),
                        rng.normal_with(0.0, 0.5),
                        rng.normal_with(0.0, 1.0),
                    );
                ekf.update_gps(noisy);
            }
            if i % 10 == 0 {
                ekf.update_baro(truth.z + rng.normal_with(0.0, 0.15));
            }
        }
        let err = (ekf.position() - truth).norm();
        assert!(err < 0.5, "position error {err}");
        assert!(
            ekf.velocity().norm() < 0.3,
            "phantom velocity {}",
            ekf.velocity()
        );
    }

    #[test]
    fn uncertainty_shrinks_with_measurements() {
        let mut ekf = NavigationEkf::new();
        let u0 = ekf.position_uncertainty();
        for _ in 0..20 {
            ekf.predict(Vec3::ZERO, 0.01);
            ekf.update_gps(Vec3::ZERO);
        }
        assert!(ekf.position_uncertainty() < u0 / 10.0);
    }

    #[test]
    fn uncertainty_grows_during_dead_reckoning() {
        let mut ekf = NavigationEkf::new();
        for _ in 0..50 {
            ekf.predict(Vec3::ZERO, 0.01);
            ekf.update_gps(Vec3::ZERO);
        }
        let settled = ekf.position_uncertainty();
        for _ in 0..1000 {
            ekf.predict(Vec3::ZERO, 0.01);
        }
        assert!(ekf.position_uncertainty() > settled * 1.5);
    }

    #[test]
    fn tracks_constant_velocity_motion() {
        let mut ekf = NavigationEkf::new();
        let vel = Vec3::new(2.0, 0.0, 0.5);
        let mut rng = Pcg32::seed_from(2);
        let dt = 0.005;
        for i in 0..4000 {
            ekf.predict(Vec3::ZERO, dt);
            let t = (i + 1) as f64 * dt;
            let truth = vel * t;
            if i % 20 == 0 {
                ekf.update_gps(truth + Vec3::new(rng.normal_with(0.0, 0.5), 0.0, 0.0));
            }
        }
        let v_err = (ekf.velocity() - vel).norm();
        assert!(v_err < 0.3, "velocity error {v_err}");
    }

    #[test]
    fn accel_input_is_integrated() {
        let mut ekf = NavigationEkf::new();
        // 1 m/s² along X for 2 s → v = 2 m/s, p = 2 m.
        for _ in 0..400 {
            ekf.predict(Vec3::X, 0.005);
        }
        assert!((ekf.velocity().x - 2.0).abs() < 1e-9);
        assert!((ekf.position().x - 2.0).abs() < 0.01);
    }

    #[test]
    fn baro_only_fixes_altitude() {
        let mut ekf = NavigationEkf::new();
        ekf.set_state(Vec3::new(3.0, 3.0, 0.0), Vec3::ZERO);
        for _ in 0..200 {
            ekf.predict(Vec3::ZERO, 0.01);
            ekf.update_baro(10.0);
        }
        assert!((ekf.position().z - 10.0).abs() < 0.2);
        // Horizontal state untouched by baro.
        assert!((ekf.position().x - 3.0).abs() < 0.1);
    }

    #[test]
    fn set_state_roundtrip() {
        let mut ekf = NavigationEkf::new();
        ekf.set_state(Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.0, 0.5));
        assert_eq!(ekf.position(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(ekf.velocity(), Vec3::new(-1.0, 0.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_predict_panics() {
        NavigationEkf::new().predict(Vec3::ZERO, 0.0);
    }

    /// An EKF settled confidently at the origin.
    fn settled_at_origin() -> NavigationEkf {
        let mut ekf = NavigationEkf::new();
        for _ in 0..100 {
            ekf.predict(Vec3::ZERO, 0.01);
            ekf.update_gps(Vec3::ZERO);
            ekf.update_baro(0.0);
        }
        ekf
    }

    #[test]
    fn gate_is_off_by_default() {
        let ekf = NavigationEkf::new();
        assert!(!ekf.innovation_gating());
        assert_eq!(ekf.innovations_rejected(), 0);
        assert_eq!(ekf.last_nis(), 0.0);
    }

    #[test]
    fn nis_is_tracked_even_without_gating() {
        let mut ekf = settled_at_origin();
        assert!(!ekf.innovation_gating());
        // A nominal fix: small NIS.
        ekf.update_gps(Vec3::new(0.1, 0.0, 0.0));
        let nominal = ekf.last_nis();
        assert!(
            nominal > 0.0 && nominal < CHI2_999[2],
            "nominal NIS {nominal}"
        );
        // A gross outlier: NIS explodes (and, ungated, still fuses).
        ekf.update_gps(Vec3::new(100.0, 0.0, 0.0));
        assert!(
            ekf.last_nis() > CHI2_999[2],
            "outlier NIS {}",
            ekf.last_nis()
        );
    }

    #[test]
    fn gate_rejects_gross_outliers() {
        let mut ekf = settled_at_origin();
        ekf.set_innovation_gating(true);
        let before = ekf.position();
        // A 100 m multipath spike: NIS is astronomically over the χ²
        // threshold; the fix must bounce off the gate.
        assert!(!ekf.update_gps(Vec3::new(100.0, 0.0, 0.0)));
        assert_eq!(ekf.innovations_rejected(), 1);
        assert!(
            (ekf.position() - before).norm() < 1e-12,
            "rejected fix must not move the state"
        );
        // A plausible fix still fuses.
        assert!(ekf.update_gps(Vec3::new(0.1, 0.0, 0.0)));
    }

    #[test]
    fn gate_accepts_nominal_measurements() {
        let mut ekf = settled_at_origin();
        ekf.set_innovation_gating(true);
        let mut rng = Pcg32::seed_from(7);
        let mut rejected = 0;
        for _ in 0..200 {
            ekf.predict(Vec3::ZERO, 0.01);
            let noisy = Vec3::new(
                rng.normal_with(0.0, 0.5),
                rng.normal_with(0.0, 0.5),
                rng.normal_with(0.0, 1.0),
            );
            if !ekf.update_gps(noisy) {
                rejected += 1;
            }
        }
        // 99.9 % gate: essentially everything sane passes.
        assert!(rejected <= 2, "rejected {rejected} of 200 nominal fixes");
    }

    #[test]
    fn covariance_inflation_recovers_from_a_persistent_offset() {
        // The vehicle is "teleported" (filter divergence scenario): every
        // honest fix now looks like an outlier. The rejection-streak
        // inflation must reopen the gate and let the filter re-converge
        // instead of dead-reckoning forever.
        let mut ekf = settled_at_origin();
        ekf.set_innovation_gating(true);
        let truth = Vec3::new(50.0, 0.0, 0.0);
        for _ in 0..300 {
            ekf.predict(Vec3::ZERO, 0.01);
            ekf.update_gps(truth);
        }
        assert!(
            ekf.innovations_rejected() > 0,
            "the jump must first be gated"
        );
        let err = (ekf.position() - truth).norm();
        assert!(
            err < 1.0,
            "filter stuck {err} m away after inflation recovery"
        );
    }
}
