//! On-board sensor models at the paper's Table 2a data rates.
//!
//! Each sensor publishes at its own frequency with Gaussian noise and a
//! constant bias, fed from simulation truth. The IMU measures *specific
//! force* (acceleration minus gravity, in the body frame) and body rates;
//! GPS measures position (and is deliberately poor vertically); the
//! barometer measures altitude; the magnetometer measures heading.

use drone_components::units::STANDARD_GRAVITY;
use drone_math::{Pcg32, Vec3};
use drone_sim::RigidBodyState;
use serde::{Deserialize, Serialize};

/// Rates from paper Table 2a, Hz (midpoints of the quoted ranges).
pub mod rates {
    /// Accelerometer: 100–200 Hz.
    pub const ACCELEROMETER_HZ: f64 = 200.0;
    /// Gyroscope: 100–200 Hz.
    pub const GYROSCOPE_HZ: f64 = 200.0;
    /// Magnetometer: 10 Hz.
    pub const MAGNETOMETER_HZ: f64 = 10.0;
    /// Barometer: 10–20 Hz.
    pub const BAROMETER_HZ: f64 = 20.0;
    /// GPS: 1–40 Hz.
    pub const GPS_HZ: f64 = 10.0;
}

/// Noise/bias description of one vector sensor channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Publish rate, Hz.
    pub rate_hz: f64,
    /// White-noise standard deviation per axis.
    pub noise_std: f64,
    /// Constant bias magnitude drawn at startup.
    pub bias_scale: f64,
}

/// One batch of sensor outputs; `None` means the sensor did not publish
/// this tick (rate decimation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorReadings {
    /// Body-frame specific force, m/s² (gravity-reactive: reads +g·ẑ at
    /// rest).
    pub accelerometer: Option<Vec3>,
    /// Body-frame angular rate, rad/s.
    pub gyroscope: Option<Vec3>,
    /// World-frame magnetic field direction measured in the body frame.
    pub magnetometer: Option<Vec3>,
    /// Barometric altitude, m.
    pub barometer: Option<f64>,
    /// GPS position, world frame, m.
    pub gps: Option<Vec3>,
    /// GPS Doppler velocity, world frame, m/s (same schedule as the
    /// position fix — real receivers report both).
    pub gps_velocity: Option<Vec3>,
}

/// The full on-board suite with per-sensor schedules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorSuite {
    accel_spec: ChannelSpec,
    gyro_spec: ChannelSpec,
    mag_spec: ChannelSpec,
    baro_spec: ChannelSpec,
    gps_spec: ChannelSpec,
    accel_bias: Vec3,
    gyro_bias: Vec3,
    baro_bias: f64,
    clock: f64,
    next_due: [f64; 5],
    rng: Pcg32,
}

impl SensorSuite {
    /// Creates a suite with consumer-grade noise at Table 2a rates.
    pub fn with_defaults(seed: u64) -> SensorSuite {
        SensorSuite::new(
            ChannelSpec { rate_hz: rates::ACCELEROMETER_HZ, noise_std: 0.08, bias_scale: 0.05 },
            ChannelSpec { rate_hz: rates::GYROSCOPE_HZ, noise_std: 0.005, bias_scale: 0.002 },
            ChannelSpec { rate_hz: rates::MAGNETOMETER_HZ, noise_std: 0.02, bias_scale: 0.0 },
            ChannelSpec { rate_hz: rates::BAROMETER_HZ, noise_std: 0.15, bias_scale: 0.3 },
            ChannelSpec { rate_hz: rates::GPS_HZ, noise_std: 0.5, bias_scale: 0.0 },
            seed,
        )
    }

    /// Creates a suite with explicit channel specifications.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not positive.
    pub fn new(
        accel: ChannelSpec,
        gyro: ChannelSpec,
        mag: ChannelSpec,
        baro: ChannelSpec,
        gps: ChannelSpec,
        seed: u64,
    ) -> SensorSuite {
        for spec in [&accel, &gyro, &mag, &baro, &gps] {
            assert!(spec.rate_hz > 0.0, "sensor rate must be positive");
        }
        let mut rng = Pcg32::seed_from(seed);
        let accel_bias = Vec3::new(
            rng.normal_with(0.0, accel.bias_scale),
            rng.normal_with(0.0, accel.bias_scale),
            rng.normal_with(0.0, accel.bias_scale),
        );
        let gyro_bias = Vec3::new(
            rng.normal_with(0.0, gyro.bias_scale),
            rng.normal_with(0.0, gyro.bias_scale),
            rng.normal_with(0.0, gyro.bias_scale),
        );
        let baro_bias = rng.normal_with(0.0, baro.bias_scale);
        SensorSuite {
            accel_spec: accel,
            gyro_spec: gyro,
            mag_spec: mag,
            baro_spec: baro,
            gps_spec: gps,
            accel_bias,
            gyro_bias,
            baro_bias,
            clock: 0.0,
            next_due: [0.0; 5],
            rng,
        }
    }

    fn noisy_vec(rng: &mut Pcg32, v: Vec3, std: f64) -> Vec3 {
        Vec3::new(
            v.x + rng.normal_with(0.0, std),
            v.y + rng.normal_with(0.0, std),
            v.z + rng.normal_with(0.0, std),
        )
    }

    /// Samples all sensors against the truth state; `accel_world` is the
    /// vehicle's world-frame acceleration (excluding gravity) this tick.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn sample(&mut self, truth: &RigidBodyState, accel_world: Vec3, dt: f64) -> SensorReadings {
        assert!(dt > 0.0, "dt must be positive");
        self.clock += dt;
        let mut out = SensorReadings::default();
        let specs = [
            self.accel_spec.rate_hz,
            self.gyro_spec.rate_hz,
            self.mag_spec.rate_hz,
            self.baro_spec.rate_hz,
            self.gps_spec.rate_hz,
        ];
        let mut due = [false; 5];
        for i in 0..5 {
            if self.clock + 1e-12 >= self.next_due[i] {
                due[i] = true;
                self.next_due[i] += 1.0 / specs[i];
                // Never let the schedule fall behind the clock.
                if self.next_due[i] < self.clock {
                    self.next_due[i] = self.clock + 1.0 / specs[i];
                }
            }
        }

        if due[0] {
            // Specific force in body frame: f = Rᵀ(a − g); with g = −g·ẑ a
            // resting IMU reads +g on body z.
            let f_world = accel_world + Vec3::Z * STANDARD_GRAVITY;
            let f_body = truth.attitude.rotate_inverse(f_world);
            out.accelerometer = Some(
                Self::noisy_vec(&mut self.rng, f_body, self.accel_spec.noise_std) + self.accel_bias,
            );
        }
        if due[1] {
            out.gyroscope = Some(
                Self::noisy_vec(&mut self.rng, truth.angular_velocity, self.gyro_spec.noise_std)
                    + self.gyro_bias,
            );
        }
        if due[2] {
            // Field points along world +X (magnetic north).
            let field_body = truth.attitude.rotate_inverse(Vec3::X);
            out.magnetometer =
                Some(Self::noisy_vec(&mut self.rng, field_body, self.mag_spec.noise_std));
        }
        if due[3] {
            out.barometer = Some(
                truth.position.z
                    + self.baro_bias
                    + self.rng.normal_with(0.0, self.baro_spec.noise_std),
            );
        }
        if due[4] {
            // GPS vertical channel is ~2x noisier than horizontal.
            let base = Self::noisy_vec(&mut self.rng, truth.position, self.gps_spec.noise_std);
            let extra_z = self.rng.normal_with(0.0, self.gps_spec.noise_std);
            out.gps = Some(Vec3::new(base.x, base.y, base.z + extra_z));
            // Doppler velocity: much cleaner than differentiated position.
            out.gps_velocity =
                Some(Self::noisy_vec(&mut self.rng, truth.velocity, 0.2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_published(seconds: f64) -> [usize; 5] {
        let mut suite = SensorSuite::with_defaults(0);
        let truth = RigidBodyState::at_rest();
        let dt = 1e-3;
        let mut counts = [0usize; 5];
        for _ in 0..(seconds / dt) as usize {
            let r = suite.sample(&truth, Vec3::ZERO, dt);
            counts[0] += r.accelerometer.is_some() as usize;
            counts[1] += r.gyroscope.is_some() as usize;
            counts[2] += r.magnetometer.is_some() as usize;
            counts[3] += r.barometer.is_some() as usize;
            counts[4] += r.gps.is_some() as usize;
        }
        counts
    }

    #[test]
    fn publish_rates_match_table2a() {
        let c = count_published(5.0);
        // 5 s at 200/200/10/20/10 Hz.
        assert!((c[0] as i64 - 1000).abs() <= 2, "accel {}", c[0]);
        assert!((c[1] as i64 - 1000).abs() <= 2, "gyro {}", c[1]);
        assert!((c[2] as i64 - 50).abs() <= 2, "mag {}", c[2]);
        assert!((c[3] as i64 - 100).abs() <= 2, "baro {}", c[3]);
        assert!((c[4] as i64 - 50).abs() <= 2, "gps {}", c[4]);
    }

    #[test]
    fn resting_imu_reads_gravity_up() {
        let mut suite = SensorSuite::with_defaults(1);
        let truth = RigidBodyState::at_rest();
        let mut sum = Vec3::ZERO;
        let mut n = 0;
        for _ in 0..2000 {
            if let Some(a) = suite.sample(&truth, Vec3::ZERO, 1e-3).accelerometer {
                sum += a;
                n += 1;
            }
        }
        let mean = sum / n as f64;
        // Tolerance covers noise averaging plus the drawn bias (σ=0.05,
        // so 4σ bounds it at 0.2).
        assert!((mean.z - STANDARD_GRAVITY).abs() < 0.25, "mean accel {mean}");
        assert!(mean.x.abs() < 0.25 && mean.y.abs() < 0.25, "mean accel {mean}");
    }

    #[test]
    fn magnetometer_tracks_yaw() {
        let mut suite = SensorSuite::with_defaults(2);
        let mut truth = RigidBodyState::at_rest();
        truth.attitude = drone_math::Quat::from_euler(0.0, 0.0, std::f64::consts::FRAC_PI_2);
        // Wait for a magnetometer sample (10 Hz).
        let mut field = None;
        for _ in 0..200 {
            if let Some(m) = suite.sample(&truth, Vec3::ZERO, 1e-3).magnetometer {
                field = Some(m);
                break;
            }
        }
        // Yawed 90° left, world +X appears along body −Y.
        let m = field.expect("magnetometer published");
        assert!(m.y < -0.8, "field {m}");
    }

    #[test]
    fn gps_noise_magnitude() {
        let mut suite = SensorSuite::with_defaults(3);
        let truth = RigidBodyState::at_altitude(100.0);
        let mut errs = Vec::new();
        for _ in 0..100_000 {
            if let Some(g) = suite.sample(&truth, Vec3::ZERO, 1e-3).gps {
                errs.push((g - truth.position).norm());
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!((0.3..2.5).contains(&mean_err), "gps err {mean_err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = RigidBodyState::at_rest();
        let mut a = SensorSuite::with_defaults(9);
        let mut b = SensorSuite::with_defaults(9);
        for _ in 0..500 {
            assert_eq!(a.sample(&truth, Vec3::ZERO, 1e-3), b.sample(&truth, Vec3::ZERO, 1e-3));
        }
    }

    #[test]
    #[should_panic(expected = "sensor rate must be positive")]
    fn zero_rate_panics() {
        let bad = ChannelSpec { rate_hz: 0.0, noise_std: 0.0, bias_scale: 0.0 };
        let ok = ChannelSpec { rate_hz: 10.0, noise_std: 0.0, bias_scale: 0.0 };
        let _ = SensorSuite::new(bad, ok, ok, ok, ok, 0);
    }
}
