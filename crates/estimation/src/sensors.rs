//! On-board sensor models at the paper's Table 2a data rates.
//!
//! Each sensor publishes at its own frequency with Gaussian noise and a
//! constant bias, fed from simulation truth. The IMU measures *specific
//! force* (acceleration minus gravity, in the body frame) and body rates;
//! GPS measures position (and is deliberately poor vertically); the
//! barometer measures altitude; the magnetometer measures heading.

use drone_components::units::STANDARD_GRAVITY;
use drone_math::{Pcg32, Vec3};
use drone_sim::RigidBodyState;
use serde::{Deserialize, Serialize};

/// Rates from paper Table 2a, Hz (midpoints of the quoted ranges).
pub mod rates {
    /// Accelerometer: 100–200 Hz.
    pub const ACCELEROMETER_HZ: f64 = 200.0;
    /// Gyroscope: 100–200 Hz.
    pub const GYROSCOPE_HZ: f64 = 200.0;
    /// Magnetometer: 10 Hz.
    pub const MAGNETOMETER_HZ: f64 = 10.0;
    /// Barometer: 10–20 Hz.
    pub const BAROMETER_HZ: f64 = 20.0;
    /// GPS: 1–40 Hz.
    pub const GPS_HZ: f64 = 10.0;
}

/// One sensor channel of the Table 2a suite. The discriminants index the
/// suite's internal schedule array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorChannel {
    /// Body-frame specific force.
    Accelerometer = 0,
    /// Body-frame angular rate.
    Gyroscope = 1,
    /// Heading reference.
    Magnetometer = 2,
    /// Barometric altitude.
    Barometer = 3,
    /// Position + Doppler velocity.
    Gps = 4,
}

/// What a faulted channel does while the fault window is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// The channel stops publishing entirely.
    Dropout,
    /// The channel keeps publishing the last healthy sample.
    StuckValue,
    /// A constant offset is added to every axis (hard-iron shift, baro
    /// drift, GPS multipath plateau).
    BiasStep(f64),
    /// Extra white noise with this standard deviation (vibration, EMI).
    NoiseBurst(f64),
}

/// A timed fault window on one sensor channel.
///
/// Active while `start <= t < start + duration`; use
/// `f64::INFINITY` for a permanent failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFault {
    /// Which channel misbehaves.
    pub channel: SensorChannel,
    /// How it misbehaves.
    pub kind: SensorFaultKind,
    /// Suite-clock time the fault begins, s.
    pub start: f64,
    /// How long it lasts, s.
    pub duration: f64,
}

/// Last healthy sample per channel, replayed by `StuckValue` faults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct HeldReadings {
    accel: Option<Vec3>,
    gyro: Option<Vec3>,
    mag: Option<Vec3>,
    baro: Option<f64>,
    gps: Option<Vec3>,
    gps_velocity: Option<Vec3>,
}

/// Noise/bias description of one vector sensor channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Publish rate, Hz.
    pub rate_hz: f64,
    /// White-noise standard deviation per axis.
    pub noise_std: f64,
    /// Constant bias magnitude drawn at startup.
    pub bias_scale: f64,
}

/// One batch of sensor outputs; `None` means the sensor did not publish
/// this tick (rate decimation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorReadings {
    /// Body-frame specific force, m/s² (gravity-reactive: reads +g·ẑ at
    /// rest).
    pub accelerometer: Option<Vec3>,
    /// Body-frame angular rate, rad/s.
    pub gyroscope: Option<Vec3>,
    /// World-frame magnetic field direction measured in the body frame.
    pub magnetometer: Option<Vec3>,
    /// Barometric altitude, m.
    pub barometer: Option<f64>,
    /// GPS position, world frame, m.
    pub gps: Option<Vec3>,
    /// GPS Doppler velocity, world frame, m/s (same schedule as the
    /// position fix — real receivers report both).
    pub gps_velocity: Option<Vec3>,
}

/// The full on-board suite with per-sensor schedules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorSuite {
    accel_spec: ChannelSpec,
    gyro_spec: ChannelSpec,
    mag_spec: ChannelSpec,
    baro_spec: ChannelSpec,
    gps_spec: ChannelSpec,
    accel_bias: Vec3,
    gyro_bias: Vec3,
    baro_bias: f64,
    clock: f64,
    next_due: [f64; 5],
    rng: Pcg32,
    /// Injected fault windows (sorted by nothing; scanned per tick).
    faults: Vec<SensorFault>,
    /// Separate stream for fault noise so that an inactive fault list
    /// leaves the nominal sensor stream bit-identical.
    fault_rng: Pcg32,
    held: HeldReadings,
}

impl SensorSuite {
    /// Creates a suite with consumer-grade noise at Table 2a rates.
    pub fn with_defaults(seed: u64) -> SensorSuite {
        SensorSuite::new(
            ChannelSpec {
                rate_hz: rates::ACCELEROMETER_HZ,
                noise_std: 0.08,
                bias_scale: 0.05,
            },
            ChannelSpec {
                rate_hz: rates::GYROSCOPE_HZ,
                noise_std: 0.005,
                bias_scale: 0.002,
            },
            ChannelSpec {
                rate_hz: rates::MAGNETOMETER_HZ,
                noise_std: 0.02,
                bias_scale: 0.0,
            },
            ChannelSpec {
                rate_hz: rates::BAROMETER_HZ,
                noise_std: 0.15,
                bias_scale: 0.3,
            },
            ChannelSpec {
                rate_hz: rates::GPS_HZ,
                noise_std: 0.5,
                bias_scale: 0.0,
            },
            seed,
        )
    }

    /// Creates a suite with explicit channel specifications.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not positive.
    pub fn new(
        accel: ChannelSpec,
        gyro: ChannelSpec,
        mag: ChannelSpec,
        baro: ChannelSpec,
        gps: ChannelSpec,
        seed: u64,
    ) -> SensorSuite {
        for spec in [&accel, &gyro, &mag, &baro, &gps] {
            assert!(spec.rate_hz > 0.0, "sensor rate must be positive");
        }
        let mut rng = Pcg32::seed_from(seed);
        let accel_bias = Vec3::new(
            rng.normal_with(0.0, accel.bias_scale),
            rng.normal_with(0.0, accel.bias_scale),
            rng.normal_with(0.0, accel.bias_scale),
        );
        let gyro_bias = Vec3::new(
            rng.normal_with(0.0, gyro.bias_scale),
            rng.normal_with(0.0, gyro.bias_scale),
            rng.normal_with(0.0, gyro.bias_scale),
        );
        let baro_bias = rng.normal_with(0.0, baro.bias_scale);
        SensorSuite {
            accel_spec: accel,
            gyro_spec: gyro,
            mag_spec: mag,
            baro_spec: baro,
            gps_spec: gps,
            accel_bias,
            gyro_bias,
            baro_bias,
            clock: 0.0,
            next_due: [0.0; 5],
            rng,
            faults: Vec::new(),
            fault_rng: Pcg32::new(seed, 0xFA17),
            held: HeldReadings::default(),
        }
    }

    /// Schedules a fault window on one channel.
    pub fn inject_fault(&mut self, fault: SensorFault) {
        self.faults.push(fault);
    }

    /// Removes all scheduled faults (past windows included).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Injected faults, in insertion order.
    pub fn faults(&self) -> &[SensorFault] {
        &self.faults
    }

    fn noisy_vec(rng: &mut Pcg32, v: Vec3, std: f64) -> Vec3 {
        Vec3::new(
            v.x + rng.normal_with(0.0, std),
            v.y + rng.normal_with(0.0, std),
            v.z + rng.normal_with(0.0, std),
        )
    }

    /// Samples all sensors against the truth state; `accel_world` is the
    /// vehicle's world-frame acceleration (excluding gravity) this tick.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn sample(&mut self, truth: &RigidBodyState, accel_world: Vec3, dt: f64) -> SensorReadings {
        assert!(dt > 0.0, "dt must be positive");
        self.clock += dt;
        let mut out = SensorReadings::default();
        let specs = [
            self.accel_spec.rate_hz,
            self.gyro_spec.rate_hz,
            self.mag_spec.rate_hz,
            self.baro_spec.rate_hz,
            self.gps_spec.rate_hz,
        ];
        let mut due = [false; 5];
        for i in 0..5 {
            if self.clock + 1e-12 >= self.next_due[i] {
                due[i] = true;
                self.next_due[i] += 1.0 / specs[i];
                // Never let the schedule fall behind the clock.
                if self.next_due[i] < self.clock {
                    self.next_due[i] = self.clock + 1.0 / specs[i];
                }
            }
        }

        if due[0] {
            // Specific force in body frame: f = Rᵀ(a − g); with g = −g·ẑ a
            // resting IMU reads +g on body z.
            let f_world = accel_world + Vec3::Z * STANDARD_GRAVITY;
            let f_body = truth.attitude.rotate_inverse(f_world);
            out.accelerometer = Some(
                Self::noisy_vec(&mut self.rng, f_body, self.accel_spec.noise_std) + self.accel_bias,
            );
        }
        if due[1] {
            out.gyroscope = Some(
                Self::noisy_vec(
                    &mut self.rng,
                    truth.angular_velocity,
                    self.gyro_spec.noise_std,
                ) + self.gyro_bias,
            );
        }
        if due[2] {
            // Field points along world +X (magnetic north).
            let field_body = truth.attitude.rotate_inverse(Vec3::X);
            out.magnetometer = Some(Self::noisy_vec(
                &mut self.rng,
                field_body,
                self.mag_spec.noise_std,
            ));
        }
        if due[3] {
            out.barometer = Some(
                truth.position.z
                    + self.baro_bias
                    + self.rng.normal_with(0.0, self.baro_spec.noise_std),
            );
        }
        if due[4] {
            // GPS vertical channel is ~2x noisier than horizontal.
            let base = Self::noisy_vec(&mut self.rng, truth.position, self.gps_spec.noise_std);
            let extra_z = self.rng.normal_with(0.0, self.gps_spec.noise_std);
            out.gps = Some(Vec3::new(base.x, base.y, base.z + extra_z));
            // Doppler velocity: much cleaner than differentiated position.
            out.gps_velocity = Some(Self::noisy_vec(&mut self.rng, truth.velocity, 0.2));
        }
        self.apply_faults(&mut out);
        out
    }

    /// Applies active fault windows to one tick of readings.
    ///
    /// Order matters: dropout silences the channel, stuck replays the
    /// last healthy sample, then bias/noise corrupt whatever is left.
    fn apply_faults(&mut self, out: &mut SensorReadings) {
        let now = self.clock;
        let mut dropped = [false; 5];
        let mut stuck = [false; 5];
        let mut bias = [0.0f64; 5];
        let mut burst = [0.0f64; 5];
        for f in &self.faults {
            if now + 1e-12 < f.start || now >= f.start + f.duration {
                continue;
            }
            let i = f.channel as usize;
            match f.kind {
                SensorFaultKind::Dropout => dropped[i] = true,
                SensorFaultKind::StuckValue => stuck[i] = true,
                SensorFaultKind::BiasStep(b) => bias[i] += b,
                SensorFaultKind::NoiseBurst(s) => burst[i] += s,
            }
        }

        macro_rules! vec_channel {
            ($i:expr, $field:ident, $held:ident) => {
                if dropped[$i] {
                    out.$field = None;
                } else if stuck[$i] {
                    if out.$field.is_some() {
                        out.$field = self.held.$held;
                    }
                } else if let Some(v) = out.$field {
                    self.held.$held = Some(v);
                }
                if (bias[$i] != 0.0 || burst[$i] > 0.0) && !dropped[$i] {
                    if let Some(v) = out.$field {
                        let shifted = v + Vec3::new(bias[$i], bias[$i], bias[$i]);
                        out.$field = Some(Self::noisy_vec(&mut self.fault_rng, shifted, burst[$i]));
                    }
                }
            };
        }

        vec_channel!(0, accelerometer, accel);
        vec_channel!(1, gyroscope, gyro);
        vec_channel!(2, magnetometer, mag);

        if dropped[3] {
            out.barometer = None;
        } else if stuck[3] {
            if out.barometer.is_some() {
                out.barometer = self.held.baro;
            }
        } else if let Some(v) = out.barometer {
            self.held.baro = Some(v);
        }
        if (bias[3] != 0.0 || burst[3] > 0.0) && !dropped[3] {
            if let Some(v) = out.barometer {
                out.barometer = Some(v + bias[3] + self.fault_rng.normal_with(0.0, burst[3]));
            }
        }

        vec_channel!(4, gps, gps);
        // The Doppler channel shares the receiver: it drops and sticks
        // with the position fix, but bias/noise faults model multipath
        // on the position solution only.
        if dropped[4] {
            out.gps_velocity = None;
        } else if stuck[4] {
            if out.gps_velocity.is_some() {
                out.gps_velocity = self.held.gps_velocity;
            }
        } else if let Some(v) = out.gps_velocity {
            self.held.gps_velocity = Some(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_published(seconds: f64) -> [usize; 5] {
        let mut suite = SensorSuite::with_defaults(0);
        let truth = RigidBodyState::at_rest();
        let dt = 1e-3;
        let mut counts = [0usize; 5];
        for _ in 0..(seconds / dt) as usize {
            let r = suite.sample(&truth, Vec3::ZERO, dt);
            counts[0] += r.accelerometer.is_some() as usize;
            counts[1] += r.gyroscope.is_some() as usize;
            counts[2] += r.magnetometer.is_some() as usize;
            counts[3] += r.barometer.is_some() as usize;
            counts[4] += r.gps.is_some() as usize;
        }
        counts
    }

    #[test]
    fn publish_rates_match_table2a() {
        let c = count_published(5.0);
        // 5 s at 200/200/10/20/10 Hz.
        assert!((c[0] as i64 - 1000).abs() <= 2, "accel {}", c[0]);
        assert!((c[1] as i64 - 1000).abs() <= 2, "gyro {}", c[1]);
        assert!((c[2] as i64 - 50).abs() <= 2, "mag {}", c[2]);
        assert!((c[3] as i64 - 100).abs() <= 2, "baro {}", c[3]);
        assert!((c[4] as i64 - 50).abs() <= 2, "gps {}", c[4]);
    }

    #[test]
    fn resting_imu_reads_gravity_up() {
        let mut suite = SensorSuite::with_defaults(1);
        let truth = RigidBodyState::at_rest();
        let mut sum = Vec3::ZERO;
        let mut n = 0;
        for _ in 0..2000 {
            if let Some(a) = suite.sample(&truth, Vec3::ZERO, 1e-3).accelerometer {
                sum += a;
                n += 1;
            }
        }
        let mean = sum / n as f64;
        // Tolerance covers noise averaging plus the drawn bias (σ=0.05,
        // so 4σ bounds it at 0.2).
        assert!(
            (mean.z - STANDARD_GRAVITY).abs() < 0.25,
            "mean accel {mean}"
        );
        assert!(
            mean.x.abs() < 0.25 && mean.y.abs() < 0.25,
            "mean accel {mean}"
        );
    }

    #[test]
    fn magnetometer_tracks_yaw() {
        let mut suite = SensorSuite::with_defaults(2);
        let mut truth = RigidBodyState::at_rest();
        truth.attitude = drone_math::Quat::from_euler(0.0, 0.0, std::f64::consts::FRAC_PI_2);
        // Wait for a magnetometer sample (10 Hz).
        let mut field = None;
        for _ in 0..200 {
            if let Some(m) = suite.sample(&truth, Vec3::ZERO, 1e-3).magnetometer {
                field = Some(m);
                break;
            }
        }
        // Yawed 90° left, world +X appears along body −Y.
        let m = field.expect("magnetometer published");
        assert!(m.y < -0.8, "field {m}");
    }

    #[test]
    fn gps_noise_magnitude() {
        let mut suite = SensorSuite::with_defaults(3);
        let truth = RigidBodyState::at_altitude(100.0);
        let mut errs = Vec::new();
        for _ in 0..100_000 {
            if let Some(g) = suite.sample(&truth, Vec3::ZERO, 1e-3).gps {
                errs.push((g - truth.position).norm());
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!((0.3..2.5).contains(&mean_err), "gps err {mean_err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = RigidBodyState::at_rest();
        let mut a = SensorSuite::with_defaults(9);
        let mut b = SensorSuite::with_defaults(9);
        for _ in 0..500 {
            assert_eq!(
                a.sample(&truth, Vec3::ZERO, 1e-3),
                b.sample(&truth, Vec3::ZERO, 1e-3)
            );
        }
    }

    #[test]
    fn dropout_silences_channel_for_its_window() {
        let mut suite = SensorSuite::with_defaults(11);
        suite.inject_fault(SensorFault {
            channel: SensorChannel::Gps,
            kind: SensorFaultKind::Dropout,
            start: 0.5,
            duration: 1.0,
        });
        let truth = RigidBodyState::at_altitude(10.0);
        let mut t = 0.0;
        let (mut before, mut during, mut after) = (0, 0, 0);
        for _ in 0..3000 {
            let r = suite.sample(&truth, Vec3::ZERO, 1e-3);
            t += 1e-3;
            if r.gps.is_some() {
                if t < 0.5 {
                    before += 1;
                } else if t < 1.5 {
                    during += 1;
                } else {
                    after += 1;
                }
            }
            // The receiver reports position and Doppler together.
            assert_eq!(r.gps.is_some(), r.gps_velocity.is_some());
        }
        assert!(before > 0, "healthy before the window");
        assert_eq!(during, 0, "silent during the window");
        assert!(after > 0, "recovers after the window");
    }

    #[test]
    fn stuck_value_repeats_last_healthy_sample() {
        let mut suite = SensorSuite::with_defaults(12);
        suite.inject_fault(SensorFault {
            channel: SensorChannel::Barometer,
            kind: SensorFaultKind::StuckValue,
            start: 1.0,
            duration: f64::INFINITY,
        });
        let truth = RigidBodyState::at_altitude(20.0);
        let mut last_healthy = None;
        let mut stuck_values = Vec::new();
        let mut t = 0.0;
        for _ in 0..3000 {
            let r = suite.sample(&truth, Vec3::ZERO, 1e-3);
            t += 1e-3;
            if let Some(b) = r.barometer {
                if t < 1.0 {
                    last_healthy = Some(b);
                } else {
                    stuck_values.push(b);
                }
            }
        }
        let frozen = last_healthy.expect("baro published before the fault");
        assert!(!stuck_values.is_empty(), "stuck sensor still publishes");
        for v in stuck_values {
            assert_eq!(
                v, frozen,
                "every faulted sample repeats the pre-fault value"
            );
        }
    }

    #[test]
    fn bias_step_shifts_the_mean() {
        let truth = RigidBodyState::at_altitude(50.0);
        let mean_baro = |fault: Option<SensorFault>| {
            let mut suite = SensorSuite::with_defaults(13);
            if let Some(f) = fault {
                suite.inject_fault(f);
            }
            let (mut sum, mut n) = (0.0, 0);
            for _ in 0..5000 {
                if let Some(b) = suite.sample(&truth, Vec3::ZERO, 1e-3).barometer {
                    sum += b;
                    n += 1;
                }
            }
            sum / n as f64
        };
        let clean = mean_baro(None);
        let biased = mean_baro(Some(SensorFault {
            channel: SensorChannel::Barometer,
            kind: SensorFaultKind::BiasStep(7.5),
            start: 0.0,
            duration: f64::INFINITY,
        }));
        assert!(
            (biased - clean - 7.5).abs() < 0.1,
            "clean {clean}, biased {biased}"
        );
    }

    #[test]
    fn noise_burst_widens_the_spread() {
        let truth = RigidBodyState::at_altitude(5.0);
        let spread = |burst: Option<f64>| {
            let mut suite = SensorSuite::with_defaults(14);
            if let Some(std) = burst {
                suite.inject_fault(SensorFault {
                    channel: SensorChannel::Gps,
                    kind: SensorFaultKind::NoiseBurst(std),
                    start: 0.0,
                    duration: f64::INFINITY,
                });
            }
            let mut errs = Vec::new();
            for _ in 0..20_000 {
                if let Some(g) = suite.sample(&truth, Vec3::ZERO, 1e-3).gps {
                    errs.push((g - truth.position).norm());
                }
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        assert!(spread(Some(8.0)) > spread(None) * 3.0);
    }

    #[test]
    fn inactive_faults_leave_the_stream_untouched() {
        // A fault scheduled in the future must not perturb the RNG
        // stream before (or after) its window.
        let truth = RigidBodyState::at_rest();
        let mut clean = SensorSuite::with_defaults(15);
        let mut armed = SensorSuite::with_defaults(15);
        armed.inject_fault(SensorFault {
            channel: SensorChannel::Accelerometer,
            kind: SensorFaultKind::NoiseBurst(5.0),
            start: 0.2,
            duration: 0.1,
        });
        let mut t = 0.0;
        for _ in 0..600 {
            let a = clean.sample(&truth, Vec3::ZERO, 1e-3);
            let b = armed.sample(&truth, Vec3::ZERO, 1e-3);
            t += 1e-3;
            if !(0.2 - 1e-9..0.3 + 2e-3).contains(&t) {
                assert_eq!(a, b, "streams diverge outside the fault window at t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sensor rate must be positive")]
    fn zero_rate_panics() {
        let bad = ChannelSpec {
            rate_hz: 0.0,
            noise_std: 0.0,
            bias_scale: 0.0,
        };
        let ok = ChannelSpec {
            rate_hz: 10.0,
            noise_std: 0.0,
            bias_scale: 0.0,
        };
        let _ = SensorSuite::new(bad, ok, ok, ok, ok, 0);
    }
}
