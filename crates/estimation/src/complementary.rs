//! Attitude complementary filter.
//!
//! High-pass the gyroscope (integrate body rates), low-pass the
//! accelerometer's gravity direction and the magnetometer's heading. This
//! is the light-weight alternative to a full attitude EKF and one of the
//! ablation points called out in DESIGN.md: it costs a handful of
//! arithmetic operations per IMU sample — well within the paper's
//! STM32-class inner-loop budget.

use drone_math::{Quat, Vec3};
use serde::{Deserialize, Serialize};

/// Gyro-integrating attitude filter with accel/mag correction.
///
/// # Example
///
/// ```
/// use drone_estimation::ComplementaryFilter;
/// use drone_math::Vec3;
/// let mut f = ComplementaryFilter::new(0.04, 0.01);
/// // Rest: accelerometer reads +g on body z; attitude stays identity.
/// for _ in 0..100 {
///     f.update(Vec3::ZERO, Some(Vec3::Z * 9.81), None, 0.005);
/// }
/// assert!(f.attitude().angle_to(drone_math::Quat::IDENTITY) < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplementaryFilter {
    attitude: Quat,
    accel_gain: f64,
    mag_gain: f64,
}

impl ComplementaryFilter {
    /// Creates a filter with the given correction gains (per update,
    /// dimensionless fractions of the measured error; typical 0.01–0.1).
    ///
    /// # Panics
    ///
    /// Panics if gains are outside `[0, 1]`.
    pub fn new(accel_gain: f64, mag_gain: f64) -> ComplementaryFilter {
        assert!(
            (0.0..=1.0).contains(&accel_gain),
            "accel gain must be in [0,1]"
        );
        assert!((0.0..=1.0).contains(&mag_gain), "mag gain must be in [0,1]");
        ComplementaryFilter {
            attitude: Quat::IDENTITY,
            accel_gain,
            mag_gain,
        }
    }

    /// Current attitude estimate (body→world).
    pub fn attitude(&self) -> Quat {
        self.attitude
    }

    /// Forces the attitude estimate (initialization).
    pub fn set_attitude(&mut self, q: Quat) {
        self.attitude = q.normalized();
    }

    /// Advances the filter: always integrates `gyro` (body rad/s); when
    /// present, tilts toward the accelerometer's gravity direction and
    /// yaws toward the magnetometer's world-X heading.
    pub fn update(&mut self, gyro: Vec3, accel: Option<Vec3>, mag: Option<Vec3>, dt: f64) {
        self.attitude = self.attitude.integrate(gyro, dt);

        if let Some(a) = accel {
            // The accelerometer only measures gravity when the vehicle is
            // not accelerating: gate the correction on ‖f‖ ≈ g, otherwise
            // hard maneuvers (where specific force = thrust direction)
            // would drag the estimate toward "level" and destabilize the
            // cascade.
            let g = drone_components::units::STANDARD_GRAVITY;
            let norm = a.norm();
            // Quasi-static gating: (a) 5 % magnitude band — even a steady
            // 20° cruise tilt (‖f‖ = g/cos ≈ 1.06 g) must NOT be mistaken
            // for gravity; (b) low rotation rate — during maneuvers the
            // specific force points along body Z (thrust), and letting it
            // correct would walk the estimate toward "level" while the
            // true tilt runs away.
            if (norm - g).abs() < 0.05 * g && gyro.norm() < 0.3 {
                if let Some(meas_up_body) = a.normalized() {
                    // Where the filter currently thinks "up" is, in the
                    // body frame; the accelerometer says it is along `a`.
                    let est_up_body = self.attitude.rotate_inverse(Vec3::Z);
                    // Rotate the estimate so its "up" falls onto the
                    // measured "up": the small-angle axis is meas × est.
                    let correction = meas_up_body.cross(est_up_body) * self.accel_gain;
                    self.attitude = self.attitude.integrate(correction, 1.0);
                }
            }
        }
        if let Some(m) = mag {
            if let Some(meas_north_body) = m.normalized() {
                let est_north_body = self.attitude.rotate_inverse(Vec3::X);
                // Only the yaw component of the disagreement.
                let full = meas_north_body.cross(est_north_body);
                let yaw_axis_body = self.attitude.rotate_inverse(Vec3::Z);
                let correction = yaw_axis_body * full.dot(yaw_axis_body) * self.mag_gain;
                self.attitude = self.attitude.integrate(correction, 1.0);
            }
        }
    }
}

impl Default for ComplementaryFilter {
    /// Accel gain 0.005 at ~200 Hz (≈1 rad/s maximum pull — far above
    /// the ~0.002 rad/s gyro bias it must cancel, well below controller
    /// bandwidth), mag gain 0.05 at ~10 Hz.
    fn default() -> Self {
        ComplementaryFilter::new(0.005, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Pcg32;
    use std::f64::consts::FRAC_PI_2;

    /// Simulate the filter against a truth attitude with a noisy IMU.
    fn run_against_truth(truth: Quat, seconds: f64, gyro_bias: Vec3) -> Quat {
        let mut f = ComplementaryFilter::default();
        let mut rng = Pcg32::seed_from(5);
        let dt = 0.005; // 200 Hz IMU
        for i in 0..(seconds / dt) as usize {
            let accel_body = truth.rotate_inverse(Vec3::Z * 9.81);
            let noisy_accel = accel_body
                + Vec3::new(
                    rng.normal_with(0.0, 0.05),
                    rng.normal_with(0.0, 0.05),
                    rng.normal_with(0.0, 0.05),
                );
            let mag_body = truth.rotate_inverse(Vec3::X);
            let mag = if i % 20 == 0 { Some(mag_body) } else { None };
            f.update(gyro_bias, Some(noisy_accel), mag, dt);
        }
        f.attitude()
    }

    #[test]
    fn converges_to_static_attitude() {
        let truth = Quat::from_euler(0.3, -0.2, 0.9);
        let est = run_against_truth(truth, 20.0, Vec3::ZERO);
        assert!(est.angle_to(truth) < 0.05, "error {}", est.angle_to(truth));
    }

    #[test]
    fn rejects_small_gyro_bias() {
        // Pure gyro integration would drift without bound; the accel/mag
        // corrections must hold the estimate near truth.
        let truth = Quat::IDENTITY;
        let est = run_against_truth(truth, 30.0, Vec3::new(0.01, -0.01, 0.005));
        assert!(est.angle_to(truth) < 0.1, "drifted {}", est.angle_to(truth));
    }

    #[test]
    fn tracks_rotation_through_gyro() {
        let mut f = ComplementaryFilter::new(0.0, 0.0); // gyro only
        let rate = Vec3::Z * FRAC_PI_2; // 90°/s yaw
        for _ in 0..1000 {
            f.update(rate, None, None, 1e-3);
        }
        let expect = Quat::from_euler(0.0, 0.0, FRAC_PI_2);
        assert!(f.attitude().angle_to(expect) < 1e-6);
    }

    #[test]
    fn accel_correction_fixes_tilt_error_only() {
        let mut f = ComplementaryFilter::new(0.1, 0.0);
        // Seed a 20° roll error while truth is level.
        f.set_attitude(Quat::from_euler(0.35, 0.0, 0.0));
        for _ in 0..2000 {
            f.update(Vec3::ZERO, Some(Vec3::Z * 9.81), None, 0.005);
        }
        let (roll, pitch, _) = f.attitude().to_euler();
        assert!(
            roll.abs() < 0.02 && pitch.abs() < 0.02,
            "tilt remains {roll},{pitch}"
        );
    }

    #[test]
    fn mag_correction_fixes_yaw_error() {
        let mut f = ComplementaryFilter::new(0.0, 0.1);
        f.set_attitude(Quat::from_euler(0.0, 0.0, 0.5));
        for _ in 0..2000 {
            f.update(Vec3::ZERO, None, Some(Vec3::X), 0.005);
        }
        let (_, _, yaw) = f.attitude().to_euler();
        assert!(yaw.abs() < 0.02, "yaw remains {yaw}");
    }

    #[test]
    fn ignores_zero_accel() {
        let mut f = ComplementaryFilter::default();
        f.update(Vec3::ZERO, Some(Vec3::ZERO), Some(Vec3::ZERO), 0.005);
        assert!(f.attitude().angle_to(Quat::IDENTITY) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "accel gain must be in [0,1]")]
    fn invalid_gain_panics() {
        let _ = ComplementaryFilter::new(2.0, 0.0);
    }
}
