//! SLAM offload analysis — Figure 17 aggregation and Table 5.
//!
//! Combines three ingredients built elsewhere in the workspace:
//! the measured per-stage SLAM profile ([`drone_slam::StageProfile`]),
//! the platform models ([`drone_platform::model::Platform`]), and the
//! flight-time model (this crate) — then answers the paper's question:
//! *which platform should run SLAM on a drone?*

use drone_components::units::{Grams, Minutes, Watts};
use drone_platform::model::Platform;
use drone_slam::StageProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Speedup of a platform over the RPi baseline on a measured profile.
pub fn platform_speedup(platform: &Platform, profile: &StageProfile) -> f64 {
    let (feature, local, global) = profile.fractions();
    platform.overall_speedup(feature, local, global)
}

/// A drone class for the Table 5 gained-flight-time rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroneClass {
    /// Class label.
    pub name: &'static str,
    /// Total average flight power, W.
    pub total_power: Watts,
    /// Take-off weight, g.
    pub weight: Grams,
    /// Baseline flight time, min (Table 5 footnote: 15 min).
    pub baseline_minutes: f64,
}

impl DroneClass {
    /// The paper's "small drones" (Mambo/Spark class: ~10–15 W total).
    pub fn small() -> DroneClass {
        DroneClass {
            name: "small",
            total_power: Watts(12.0),
            weight: Grams(400.0),
            baseline_minutes: 15.0,
        }
    }

    /// The paper's "large drones" (the 450 mm class at ~130–140 W).
    pub fn large() -> DroneClass {
        DroneClass {
            name: "large",
            total_power: Watts(140.0),
            weight: Grams(2000.0),
            baseline_minutes: 15.0,
        }
    }
}

/// One Table 5 row, computed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadRow {
    /// Platform name.
    pub platform: String,
    /// Speedup over RPi on the measured profile.
    pub slam_speedup: f64,
    /// Power overhead vs the RPi baseline, W.
    pub power_overhead_w: f64,
    /// Weight overhead vs the RPi baseline, g.
    pub weight_overhead_g: f64,
    /// Gained flight minutes on the small-drone class.
    pub gained_minutes_small: f64,
    /// Gained flight minutes on the large-drone class.
    pub gained_minutes_large: f64,
}

impl fmt::Display for OffloadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<5} {:>7.2}x {:>+8.2} W {:>+6.0} g {:>+6.1} min {:>+6.1} min",
            self.platform,
            self.slam_speedup,
            self.power_overhead_w,
            self.weight_overhead_g,
            self.gained_minutes_small,
            self.gained_minutes_large
        )
    }
}

/// Gained flight time when swapping the RPi for `platform` on a drone
/// class. Follows the paper's Table 5 arithmetic — the compute power
/// delta against a fixed total draw (`ΔT ≈ T·P/(P+ΔP) − T`); the weight
/// overhead is reported as its own column, exactly as the paper's table
/// does, rather than folded into the gain.
pub fn gained_minutes(platform: &Platform, class: &DroneClass) -> Minutes {
    let d_power = platform.power_overhead_vs_rpi().0;
    let new_total = (class.total_power.0 + d_power).max(0.5);
    let new_minutes = class.baseline_minutes * class.total_power.0 / new_total;
    Minutes(new_minutes - class.baseline_minutes)
}

/// Computes the full Table 5 from a measured SLAM profile.
pub fn table5(profile: &StageProfile) -> Vec<OffloadRow> {
    let small = DroneClass::small();
    let large = DroneClass::large();
    Platform::table5_lineup()
        .iter()
        .map(|p| OffloadRow {
            platform: p.name.clone(),
            slam_speedup: platform_speedup(p, profile),
            power_overhead_w: p.power_overhead_vs_rpi().0,
            weight_overhead_g: p.weight_overhead_vs_rpi().0,
            gained_minutes_small: gained_minutes(p, &small).0,
            gained_minutes_large: gained_minutes(p, &large).0,
        })
        .collect()
}

/// The winner of the cost/benefit tradeoff (paper conclusion: FPGA) —
/// the platform with the best gained-time among those not requiring
/// chip fabrication.
pub fn most_cost_effective(rows: &[OffloadRow]) -> Option<&OffloadRow> {
    rows.iter()
        .filter(|r| {
            let lineup = Platform::table5_lineup();
            lineup
                .iter()
                .find(|p| p.name == r.platform)
                .is_some_and(|p| p.fabrication_cost < drone_platform::model::CostLevel::High)
        })
        .max_by(|a, b| {
            a.gained_minutes_small
                .partial_cmp(&b.gained_minutes_small)
                .expect("finite gains")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured RPi profile shape: ~10 % feature, ~90 % BA.
    fn paper_profile() -> StageProfile {
        StageProfile {
            feature_matching_s: 10.0,
            local_ba_s: 45.0,
            global_ba_s: 45.0,
        }
    }

    #[test]
    fn speedups_match_table5() {
        let profile = paper_profile();
        let rows = table5(&profile);
        let get = |name: &str| rows.iter().find(|r| r.platform == name).unwrap();
        assert!((get("RPi").slam_speedup - 1.0).abs() < 1e-9);
        assert!(
            (get("TX2").slam_speedup - 2.16).abs() < 0.3,
            "{}",
            get("TX2").slam_speedup
        );
        assert!(
            (get("FPGA").slam_speedup - 30.7).abs() < 3.5,
            "{}",
            get("FPGA").slam_speedup
        );
        assert!(
            (get("ASIC").slam_speedup - 23.5).abs() < 3.5,
            "{}",
            get("ASIC").slam_speedup
        );
    }

    #[test]
    fn gained_minutes_signs_match_table5() {
        let rows = table5(&paper_profile());
        let get = |name: &str| rows.iter().find(|r| r.platform == name).unwrap();
        // TX2 costs flight time on both classes; FPGA and ASIC gain.
        assert!(get("TX2").gained_minutes_small < -1.0);
        assert!(get("TX2").gained_minutes_large < 0.0);
        assert!(get("FPGA").gained_minutes_small > 1.0);
        assert!(get("FPGA").gained_minutes_large > 0.0);
        assert!(get("ASIC").gained_minutes_small > 1.0);
        assert!((get("RPi").gained_minutes_small).abs() < 1e-9);
    }

    #[test]
    fn fpga_gains_2_to_3_minutes_small() {
        // Paper: "+2–3 minutes of additional flight time" for small
        // drones on FPGA.
        let rows = table5(&paper_profile());
        let fpga = rows.iter().find(|r| r.platform == "FPGA").unwrap();
        assert!(
            (1.5..3.5).contains(&fpga.gained_minutes_small),
            "FPGA small gain {}",
            fpga.gained_minutes_small
        );
        // Large drones gain ~1 minute.
        assert!(
            (0.1..1.6).contains(&fpga.gained_minutes_large),
            "FPGA large gain {}",
            fpga.gained_minutes_large
        );
    }

    #[test]
    fn asic_beats_fpga_by_seconds_only() {
        // Paper: fabricating an ASIC "earns us only a few seconds" over
        // the FPGA.
        let rows = table5(&paper_profile());
        let fpga = rows.iter().find(|r| r.platform == "FPGA").unwrap();
        let asic = rows.iter().find(|r| r.platform == "ASIC").unwrap();
        let delta = asic.gained_minutes_small - fpga.gained_minutes_small;
        assert!((0.0..0.8).contains(&delta), "ASIC-FPGA delta {delta} min");
    }

    #[test]
    fn fpga_is_most_cost_effective() {
        // Paper conclusion: FPGA wins once fabrication cost is counted.
        let rows = table5(&paper_profile());
        let winner = most_cost_effective(&rows).expect("a winner exists");
        assert_eq!(winner.platform, "FPGA");
    }

    #[test]
    fn works_on_a_real_pipeline_profile() {
        // End-to-end: run the actual SLAM pipeline and feed its profile.
        let dataset = drone_slam::euroc::Sequence::V101.generate_with_frames(80);
        let result = drone_slam::Pipeline::new(drone_slam::PipelineConfig::default()).run(&dataset);
        let rows = table5(&result.profile);
        let fpga = rows.iter().find(|r| r.platform == "FPGA").unwrap();
        assert!(
            fpga.slam_speedup > 10.0,
            "FPGA speedup {}",
            fpga.slam_speedup
        );
    }
}
