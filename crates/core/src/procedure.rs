//! The Figure 12 procedure as an executable API: "How to accurately
//! quantify the benefits?" — from application requirements to total and
//! compute power, flight time, and the gain from an optimization.
//!
//! Each call of [`Procedure::run`] walks the figure's boxes in order and
//! records the intermediate results, so the output doubles as the
//! paper's worked example.

use crate::design::{DesignError, DesignSpec, SizedDrone};
use crate::power::{FlyingLoad, PowerModel};
use drone_components::battery::CellCount;
use drone_components::units::{Grams, MilliampHours, Minutes, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Application requirements, as the top of Figure 12 frames them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Frame wheelbase to start from (the figure: "start with a small
    /// frame"), mm.
    pub wheelbase_mm: f64,
    /// Battery configuration.
    pub cells: CellCount,
    /// Extra sensors the application needs (weight, battery power).
    pub sensors: (Grams, Watts),
    /// Extra compute the application needs (weight, power).
    pub compute: (Grams, Watts),
    /// Extra payload, g.
    pub payload: Grams,
    /// Minimum required flight time at hover, min.
    pub required_minutes: f64,
}

impl Requirements {
    /// A mapping-drone requirement set: mid-size frame, RPi-class
    /// compute, camera payload, 15 minutes on station.
    pub fn mapping_drone() -> Requirements {
        Requirements {
            wheelbase_mm: 450.0,
            cells: CellCount::S3,
            sensors: (Grams(45.0), Watts(1.5)),
            compute: (Grams(73.0), Watts(5.0)),
            payload: Grams(100.0),
            required_minutes: 15.0,
        }
    }
}

/// One step of the executed procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Figure 12 box label.
    pub label: String,
    /// What was computed.
    pub result: String,
}

/// The full procedure outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureReport {
    /// Executed steps in order.
    pub steps: Vec<Step>,
    /// The selected design.
    pub drone: SizedDrone,
    /// Hover flight time, min.
    pub flight_time: Minutes,
    /// Computation share of total power at hover.
    pub compute_share: f64,
    /// Flight time gained by the candidate optimization, min.
    pub gained: Minutes,
}

impl fmt::Display for ProcedureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12 procedure:")?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {}. {:<28} {}", i + 1, step.label, step.result)?;
        }
        Ok(())
    }
}

/// Executes Figure 12 for a requirement set and a candidate compute
/// optimization (watts saved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    requirements: Requirements,
    optimization_savings: Watts,
}

impl Procedure {
    /// Creates the procedure.
    pub fn new(requirements: Requirements, optimization_savings: Watts) -> Procedure {
        Procedure {
            requirements,
            optimization_savings,
        }
    }

    /// Runs the procedure: sweeps battery capacity until the flight-time
    /// requirement is met (growing the pack like the figure's "select a
    /// battery" loop), then quantifies the compute share and the
    /// optimization's gained minutes.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] when no battery in the 1–8 Ah sweep meets
    /// the requirement.
    pub fn run(&self) -> Result<ProcedureReport, DesignError> {
        let r = &self.requirements;
        let model = PowerModel::paper_defaults();
        let mut steps = Vec::new();
        steps.push(Step {
            label: "application needs".into(),
            result: format!(
                "{:.0} mm frame, sensors {}/{}, compute {}/{}, payload {}",
                r.wheelbase_mm, r.sensors.0, r.sensors.1, r.compute.0, r.compute.1, r.payload
            ),
        });

        // "Select a battery" loop: smallest capacity meeting the
        // requirement.
        let mut chosen: Option<(SizedDrone, Minutes)> = None;
        for step_mah in (1000..=8000).step_by(500) {
            let spec = DesignSpec::new(r.wheelbase_mm, r.cells, MilliampHours(f64::from(step_mah)))
                .with_compute(r.compute.0, r.compute.1)
                .with_sensors(r.sensors.0, r.sensors.1)
                .with_payload(r.payload);
            let Ok(drone) = spec.size() else { continue };
            let ft = model.flight_time(&drone, FlyingLoad::Hover);
            if ft.0 >= r.required_minutes {
                chosen = Some((drone, ft));
                break;
            }
        }
        let (drone, flight_time) = chosen.ok_or(DesignError::SizingDiverged)?;
        steps.push(Step {
            label: "estimate weight (Eq. 1)".into(),
            result: format!(
                "{} total at TWR {:.2}",
                drone.total_weight,
                drone.thrust_to_weight()
            ),
        });
        steps.push(Step {
            label: "estimate lift power (Eq. 2-3)".into(),
            result: format!("{}", model.average_power(&drone, FlyingLoad::Hover)),
        });
        steps.push(Step {
            label: "battery & capacity (Eq. 4)".into(),
            result: format!(
                "{} -> usable {}",
                drone.battery,
                model.usable_energy(&drone)
            ),
        });
        steps.push(Step {
            label: "flight time (Eq. 5)".into(),
            result: format!("{flight_time} (required {:.0} min)", r.required_minutes),
        });
        let compute_share = model.compute_share(&drone, FlyingLoad::Hover);
        steps.push(Step {
            label: "% compute power (Eq. 6)".into(),
            result: format!("{:.1}%", compute_share * 100.0),
        });
        let gained = model.gained_flight_time(&drone, FlyingLoad::Hover, self.optimization_savings);
        steps.push(Step {
            label: "gained flight time (Eq. 7)".into(),
            result: format!("saving {} buys {gained}", self.optimization_savings),
        });

        Ok(ProcedureReport {
            steps,
            drone,
            flight_time,
            compute_share,
            gained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_drone_procedure_completes() {
        let report = Procedure::new(Requirements::mapping_drone(), Watts(4.5))
            .run()
            .expect("a feasible battery exists");
        assert_eq!(report.steps.len(), 7);
        assert!(report.flight_time.0 >= 15.0);
        assert!(report.gained.0 > 0.0);
        assert!((0.0..0.3).contains(&report.compute_share));
        let text = report.to_string();
        assert!(text.contains("Eq. 7"), "{text}");
    }

    #[test]
    fn battery_selection_picks_the_smallest_sufficient_pack() {
        let mut relaxed = Requirements::mapping_drone();
        relaxed.required_minutes = 5.0;
        let small = Procedure::new(relaxed, Watts(1.0)).run().unwrap();
        let mut strict = Requirements::mapping_drone();
        strict.required_minutes = 20.0;
        let large = Procedure::new(strict, Watts(1.0)).run().unwrap();
        assert!(
            large.drone.battery.capacity.0 > small.drone.battery.capacity.0,
            "stricter endurance should need a bigger pack: {} vs {}",
            large.drone.battery.capacity.0,
            small.drone.battery.capacity.0
        );
    }

    #[test]
    fn impossible_requirement_errors() {
        let mut req = Requirements::mapping_drone();
        req.required_minutes = 500.0;
        assert!(Procedure::new(req, Watts(1.0)).run().is_err());
    }

    #[test]
    fn heavier_payload_shortens_flight() {
        let base = Procedure::new(Requirements::mapping_drone(), Watts(1.0))
            .run()
            .unwrap();
        let mut heavy_req = Requirements::mapping_drone();
        heavy_req.payload = Grams(600.0);
        heavy_req.required_minutes = 5.0; // keep it feasible
        let heavy = Procedure::new(heavy_req, Watts(1.0)).run().unwrap();
        // Same capacity would fly shorter; the loop may pick a bigger
        // pack instead — either way the heavy build draws more power.
        let model = PowerModel::paper_defaults();
        let p_base = model
            .average_power(&base.drone, FlyingLoad::Hover)
            .total()
            .0;
        let p_heavy = model
            .average_power(&heavy.drone, FlyingLoad::Hover)
            .total()
            .0;
        assert!(p_heavy > p_base);
    }
}
