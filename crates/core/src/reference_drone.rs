//! The paper's own open-source 450 mm drone (§4, Figure 14).
//!
//! A concrete reference point inside the design space: Navio2 + RPi on a
//! Crazepony F450-class frame, 3000 mAh 3S pack, MT2213-935Kv motors.
//! The module reproduces the Figure 14 weight breakdown and checks it
//! against the general sizing model.

use crate::design::{DesignSpec, SizedDrone};
use drone_components::battery::CellCount;
use drone_components::paper::our_drone_weight_breakdown;
use drone_components::units::{Grams, MilliampHours, Watts};
use serde::{Deserialize, Serialize};

/// Figure 14, as shares of total weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightShare {
    /// Component label.
    pub component: String,
    /// Weight, g.
    pub grams: f64,
    /// Share of total, `0..=1`.
    pub share: f64,
}

/// The published Figure 14 breakdown with computed shares.
pub fn figure14_shares() -> Vec<WeightShare> {
    let rows = our_drone_weight_breakdown();
    let total: f64 = rows.iter().map(|(_, w)| w.0).sum();
    rows.into_iter()
        .map(|(component, w)| WeightShare {
            component: component.to_owned(),
            grams: w.0,
            share: w.0 / total,
        })
        .collect()
}

/// Total weight of the paper's drone, g.
pub fn paper_drone_total() -> Grams {
    Grams(our_drone_weight_breakdown().iter().map(|(_, w)| w.0).sum())
}

/// Sizes the paper's drone through the general model: same frame class,
/// battery, and avionics payload (RPi 50 g / Navio2 23 g plus GPS, RC,
/// telemetry, power module, PPM ≈ 106 g of sensors/accessories).
pub fn model_papers_drone() -> SizedDrone {
    DesignSpec::new(450.0, CellCount::S3, MilliampHours(3000.0))
        .with_compute(Grams(73.0), Watts(5.25)) // RPi + Navio2
        .with_sensors(Grams(106.0), Watts(1.5)) // GPS, RC, telemetry, PM, PPM
        .size()
        .expect("the paper's own drone must be feasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_shares_match_paper_percentages() {
        let shares = figure14_shares();
        let get = |name: &str| shares.iter().find(|s| s.component == name).unwrap();
        // Paper: frame 25 %, battery 23 %, motors 21 %, ESC 10 %.
        assert!(
            (get("Frame").share - 0.25).abs() < 0.02,
            "{}",
            get("Frame").share
        );
        assert!(
            (get("Battery").share - 0.23).abs() < 0.02,
            "{}",
            get("Battery").share
        );
        assert!(
            (get("Motors").share - 0.21).abs() < 0.02,
            "{}",
            get("Motors").share
        );
        assert!(
            (get("ESC").share - 0.10).abs() < 0.02,
            "{}",
            get("ESC").share
        );
    }

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = figure14_shares().iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn model_reproduces_the_papers_build() {
        // The generic sizing model should land within ~20 % of the real
        // 1071 g build given the same major inputs.
        let modeled = model_papers_drone();
        let real = paper_drone_total();
        let rel = (modeled.total_weight.0 - real.0).abs() / real.0;
        assert!(
            rel < 0.25,
            "model {} vs real {} ({rel:.2})",
            modeled.total_weight,
            real
        );
    }

    #[test]
    fn model_motor_class_matches() {
        // MT2213-935Kv class on 3S.
        let modeled = model_papers_drone();
        assert!(
            (500.0..1600.0).contains(&modeled.motor.kv_rpm_per_volt),
            "Kv {}",
            modeled.motor.kv_rpm_per_volt
        );
        // 30 A ESC class in the build guide; model should demand less.
        assert!(
            modeled.max_motor_current().0 < 30.0,
            "{}",
            modeled.max_motor_current()
        );
    }

    #[test]
    fn payload_capacity_positive() {
        // §4: the drone carries 200 g of additional payload. Verify a
        // 200 g payload keeps the design feasible at TWR ≥ 2.
        let with_payload = DesignSpec::new(450.0, CellCount::S3, MilliampHours(3000.0))
            .with_compute(Grams(73.0), Watts(5.25))
            .with_sensors(Grams(106.0), Watts(1.5))
            .with_payload(Grams(200.0))
            .size()
            .expect("payload-carrying design feasible");
        assert!(with_payload.thrust_to_weight() >= 1.95);
    }
}
