//! The shared evaluation kernel: one design point in, one figure of
//! merit set out.
//!
//! Everything above the sizing equations — the Figure 10 sweeps, the
//! `drone-explorer` engine, the `dse_query` example — funnels through
//! [`evaluate`], so a design point means exactly the same thing to the
//! serial paper reproduction and to the parallel exploration engine.
//! The function is pure: no global state, no clocks, no allocator
//! tricks, which is what makes memoization and deterministic parallel
//! fan-out possible one layer up.

use crate::design::{DesignError, DesignSpec};
use crate::power::{FlyingLoad, PowerModel};
use drone_components::battery::CellCount;
use drone_components::units::{Grams, MilliampHours, Watts};
use drone_telemetry::trace::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One design point: the six coordinates the paper's Equations 1–7 take
/// as free variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignQuery {
    /// Frame wheelbase, mm.
    pub wheelbase_mm: f64,
    /// Battery cell configuration.
    pub cells: CellCount,
    /// Battery capacity, mAh.
    pub capacity_mah: f64,
    /// On-board compute power, W (weight follows the Table 4 trend).
    pub compute_power_w: f64,
    /// Target thrust-to-weight ratio.
    pub twr: f64,
    /// Dead payload, g.
    pub payload_g: f64,
}

impl DesignQuery {
    /// A point with the sweep defaults: a 3 W chip, the paper's TWR,
    /// no payload.
    pub fn new(wheelbase_mm: f64, cells: CellCount, capacity_mah: f64) -> DesignQuery {
        DesignQuery {
            wheelbase_mm,
            cells,
            capacity_mah,
            compute_power_w: 3.0,
            twr: drone_components::paper::PAPER_TWR,
            payload_g: 0.0,
        }
    }

    /// Sets the compute board power.
    pub fn with_compute_power(mut self, watts: f64) -> DesignQuery {
        self.compute_power_w = watts;
        self
    }

    /// Sets the thrust-to-weight target.
    pub fn with_twr(mut self, twr: f64) -> DesignQuery {
        self.twr = twr;
        self
    }

    /// Sets the dead payload.
    pub fn with_payload(mut self, grams: f64) -> DesignQuery {
        self.payload_g = grams;
        self
    }

    /// The [`DesignSpec`] this point sizes through.
    pub fn to_spec(&self) -> DesignSpec {
        DesignSpec::new(
            self.wheelbase_mm,
            self.cells,
            MilliampHours(self.capacity_mah),
        )
        .with_compute_power(Watts(self.compute_power_w))
        .with_twr(self.twr)
        .with_payload(Grams(self.payload_g))
    }
}

impl fmt::Display for DesignQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mm / {} / {:.0} mAh / {:.0} W compute / TWR {:.2} / {:.0} g payload",
            self.wheelbase_mm,
            self.cells,
            self.capacity_mah,
            self.compute_power_w,
            self.twr,
            self.payload_g
        )
    }
}

/// Everything Equations 1–7 say about one feasible design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEval {
    /// The evaluated point.
    pub query: DesignQuery,
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Average hover power, W.
    pub hover_power_w: f64,
    /// Average maneuvering power, W.
    pub maneuver_power_w: f64,
    /// Hover flight time, min.
    pub flight_time_min: f64,
    /// Computation share of total power at hover.
    pub compute_share_hover: f64,
    /// Computation share of total power while maneuvering.
    pub compute_share_maneuver: f64,
}

/// The exploration objectives, in [`DesignEval::objectives`] order.
pub const OBJECTIVE_SENSES: [drone_math::Sense; 3] = [
    drone_math::Sense::Maximize, // flight time
    drone_math::Sense::Minimize, // take-off weight
    drone_math::Sense::Minimize, // compute share at hover
];

impl DesignEval {
    /// The objective vector `(flight time, weight, compute share)` the
    /// Pareto frontier ranks, matching [`OBJECTIVE_SENSES`].
    pub fn objectives(&self) -> [f64; 3] {
        [
            self.flight_time_min,
            self.weight_g,
            self.compute_share_hover,
        ]
    }
}

/// Evaluates one design point with the paper's power model: sizes the
/// drone (Eq. 1–2) and derives power, flight time and compute share
/// (Eq. 3–7).
///
/// # Errors
///
/// Returns [`DesignError`] when the point cannot fly (sizing diverges,
/// the battery cannot discharge fast enough, or a parameter is out of
/// the modelled range).
pub fn evaluate(query: &DesignQuery) -> Result<DesignEval, DesignError> {
    evaluate_with(&PowerModel::paper_defaults(), query)
}

/// [`evaluate`], recording the kernel's two stages — the sizing
/// fixed-point (`eval.size`) and the power/flight-time derivation
/// (`eval.power`) — as leaf spans under `parent` when tracing is on.
/// With `parent = None` this *is* [`evaluate`]: the result is
/// identical and nothing is recorded.
pub fn evaluate_traced(
    query: &DesignQuery,
    parent: Option<&Span>,
) -> Result<DesignEval, DesignError> {
    evaluate_with_traced(&PowerModel::paper_defaults(), query, parent)
}

/// [`evaluate`] with an explicit power model (ablation studies vary the
/// efficiency and drain-limit constants).
pub fn evaluate_with(model: &PowerModel, query: &DesignQuery) -> Result<DesignEval, DesignError> {
    evaluate_with_traced(model, query, None)
}

/// [`evaluate_with`] with optional leaf-span tracing. The spans carry
/// fixed orders (`eval.size` = 0, `eval.power` = 1), so their ids are a
/// pure function of the trace id — identical at any thread count.
pub fn evaluate_with_traced(
    model: &PowerModel,
    query: &DesignQuery,
    parent: Option<&Span>,
) -> Result<DesignEval, DesignError> {
    let sizing = {
        let mut span = parent.map(|p| p.child("eval.size", 0));
        let sizing = query.to_spec().size();
        if let Some(span) = span.as_mut() {
            span.tag("feasible", sizing.is_ok());
        }
        sizing
    };
    let drone = sizing?;
    let _power_span = parent.map(|p| p.child("eval.power", 1));
    let hover = model.average_power(&drone, FlyingLoad::Hover);
    let maneuver = model.average_power(&drone, FlyingLoad::Maneuver);
    Ok(DesignEval {
        query: query.clone(),
        weight_g: drone.total_weight.0,
        hover_power_w: hover.total().0,
        maneuver_power_w: maneuver.total().0,
        flight_time_min: model.flight_time(&drone, FlyingLoad::Hover).0,
        compute_share_hover: model.compute_share(&drone, FlyingLoad::Hover),
        compute_share_maneuver: model.compute_share(&drone, FlyingLoad::Maneuver),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SizedDrone;

    fn q450() -> DesignQuery {
        DesignQuery::new(450.0, CellCount::S3, 4000.0)
    }

    #[test]
    fn evaluate_matches_the_manual_pipeline() {
        // The kernel must produce exactly what the pre-refactor sweep
        // computed by hand: spec → size → power model.
        let eval = evaluate(&q450()).expect("feasible");
        let drone: SizedDrone = q450().to_spec().size().unwrap();
        let model = PowerModel::paper_defaults();
        assert_eq!(eval.weight_g, drone.total_weight.0);
        assert_eq!(
            eval.hover_power_w,
            model.average_power(&drone, FlyingLoad::Hover).total().0
        );
        assert_eq!(
            eval.flight_time_min,
            model.flight_time(&drone, FlyingLoad::Hover).0
        );
        assert_eq!(
            eval.compute_share_hover,
            model.compute_share(&drone, FlyingLoad::Hover)
        );
    }

    #[test]
    fn evaluate_is_pure() {
        let a = evaluate(&q450()).unwrap();
        let b = evaluate(&q450()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_evaluate_matches_untraced_and_records_leaves() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let builder = TraceBuilder::new(derive_trace_id(1, 1), Clock::sim());
        let traced = {
            let root = builder.root("test");
            evaluate_traced(&q450(), Some(&root)).unwrap()
        };
        assert_eq!(traced, evaluate(&q450()).unwrap());
        let trace = builder.finish();
        assert_eq!(trace.count_named("eval.size"), 1);
        assert_eq!(trace.count_named("eval.power"), 1);
        assert_eq!(trace.count_tagged("feasible", "true"), 0); // bool tag, not str
        assert_eq!(trace.open_at_finish, 0);
    }

    #[test]
    fn traced_evaluate_of_infeasible_point_skips_power_stage() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let builder = TraceBuilder::new(derive_trace_id(1, 2), Clock::sim());
        {
            let root = builder.root("test");
            let q = DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(800.0);
            assert!(evaluate_traced(&q, Some(&root)).is_err());
        }
        let trace = builder.finish();
        assert_eq!(trace.count_named("eval.size"), 1);
        assert_eq!(trace.count_named("eval.power"), 0);
    }

    #[test]
    fn builders_reach_the_spec() {
        let q = q450()
            .with_compute_power(20.0)
            .with_twr(3.0)
            .with_payload(250.0);
        let spec = q.to_spec();
        assert_eq!(spec.compute_power.0, 20.0);
        assert_eq!(spec.twr, 3.0);
        assert_eq!(spec.payload_weight.0, 250.0);
        // Table 4 trend: 10 g carrier + 4 g/W.
        assert_eq!(spec.compute_weight.0, 90.0);
    }

    #[test]
    fn infeasible_points_report_errors() {
        let q = DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(800.0);
        assert!(evaluate(&q).is_err());
        let q = q450().with_twr(0.2);
        assert!(matches!(
            evaluate(&q),
            Err(DesignError::InvalidParameter(_))
        ));
    }

    #[test]
    fn objectives_follow_the_senses() {
        let eval = evaluate(&q450()).unwrap();
        let objs = eval.objectives();
        assert_eq!(objs[0], eval.flight_time_min);
        assert_eq!(objs[1], eval.weight_g);
        assert_eq!(objs[2], eval.compute_share_hover);
        assert_eq!(OBJECTIVE_SENSES[0], drone_math::Sense::Maximize);
    }
}
